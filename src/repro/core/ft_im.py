"""Fault-tolerant algorithm IM — rule IM-2 over Marzullo's intersection.

Algorithm IM fails open (Section 4, Figure 3): one incorrect reply empties
the round's intersection or drags it off the true time.  The companion
thesis [Marzullo 83] already holds the repair — intersect *tolerating* up
to ``f`` faulty sources — and the repo implements it in
:mod:`repro.core.marzullo`; this module finally feeds the server-side sync
loop with it.

:class:`FTIMPolicy` keeps rule IM-2's reply transformation untouched and
replaces only the combination step:

1. transform every reply (and optionally the local interval) exactly as
   :class:`~repro.core.im.IMPolicy` does;
2. with ``n`` transformed sources and a per-round fault budget ``f``
   (a fixed int or an adaptive controller exposing ``current(n)``), try
   :func:`~repro.core.marzullo.intersect_tolerating` for decreasing
   ``f`` — capped at ``(n - 1) // 2`` so ``2f < n`` always holds and the
   accepted region is covered by ``n - f > n/2`` sources: the policy can
   never reset onto a *minority* intersection;
3. if every tolerant attempt fails, fall back to plain IM-2's
   all-sources consistency check (which is then necessarily inconsistent
   and hands the round to the Section 3 recovery machinery with IM's
   usual conflicting-pair attribution);
4. on success, classify the sources into truechimers and falsetickers —
   :func:`~repro.core.marzullo.ntp_select`'s midpoint test plus the hard
   evidence of not overlapping the accepted region — and report them in
   the :class:`FTRoundOutcome` so the server layer can feed reputation,
   health scores and the consistency census.

The thesis guarantee carries over: with at most ``f`` incorrect sources
and ``2f < n``, the accepted region contains the true time, so the reset
preserves Theorem 1 correctness even while liars are present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .im import IMPolicy, TransformedReply
from .intervals import TimeInterval
from .marzullo import intersect_tolerating, ntp_select
from .sync import LocalState, Reply, RoundOutcome


@dataclass(frozen=True)
class FTRoundOutcome(RoundOutcome):
    """A :class:`~repro.core.sync.RoundOutcome` with tolerance diagnostics.

    Attributes:
        mode: ``"tolerant"`` when a fault-tolerant intersection was
            accepted, ``"plain"`` when the round fell back to plain IM-2
            (including budget-0 and too-few-sources rounds).
        fault_budget: The budget requested for this round (already capped
            at ``(n - 1) // 2``).
        faults_used: The ``f`` that produced the accepted intersection
            (0 for plain rounds).
        overlap: How many sources cover the accepted region (0 for plain
            inconsistent rounds).
        n_sources: Total sources considered (replies plus the local
            interval when ``include_self``).
        truechimers: Neighbour names judged correct this round (never
            includes the local ``"self"`` source).
        falsetickers: Neighbour names judged incorrect this round.
    """

    mode: str = "plain"
    fault_budget: int = 0
    faults_used: int = 0
    overlap: int = 0
    n_sources: int = 0
    truechimers: tuple[str, ...] = ()
    falsetickers: tuple[str, ...] = ()


class FTIMPolicy(IMPolicy):
    """Rule IM-2 with Marzullo's ``f``-fault-tolerant intersection.

    Args:
        fault_budget: Maximum sources allowed to be faulty per round.
            Either a non-negative int or an object exposing
            ``current(n_sources) -> int`` (the adaptive
            :class:`~repro.byzantine.budget.FaultBudgetController`).
            Budget 0 makes the policy behave exactly like plain IM.
        **im_kwargs: Forwarded to :class:`~repro.core.im.IMPolicy`
            (``include_self``, ``widen_both_edges``, ``reset_to``,
            ``allow_point_intersection``).
    """

    name = "FT-IM"
    incremental = False

    def __init__(self, *, fault_budget=1, **im_kwargs) -> None:
        super().__init__(**im_kwargs)
        if isinstance(fault_budget, int) and fault_budget < 0:
            raise ValueError(
                f"fault_budget must be non-negative, got {fault_budget}"
            )
        self.fault_budget = fault_budget

    # -------------------------------------------------------------- budget

    def budget_for(self, n_sources: int) -> int:
        """Resolve the per-round budget, capped so ``2f < n`` holds."""
        budget = self.fault_budget
        current = getattr(budget, "current", None)
        if callable(current):
            requested = int(current(n_sources))
        else:
            requested = int(budget)
        return max(0, min(requested, (n_sources - 1) // 2))

    # ---------------------------------------------------------------- FT-IM

    def on_round_complete(
        self, state: LocalState, replies: Sequence[Reply]
    ) -> FTRoundOutcome:
        if not replies and not self.include_self:
            return FTRoundOutcome(consistent=True, mode="plain")
        transformed = [self.transform(state, reply) for reply in replies]
        if self.include_self:
            transformed.append(
                TransformedReply("self", -state.error, state.error)
            )
        names = [entry.server for entry in transformed]
        intervals = [
            TimeInterval(entry.trailing, entry.leading) for entry in transformed
        ]
        n = len(intervals)
        budget = self.budget_for(n)
        for faults in range(budget, 0, -1):
            result = intersect_tolerating(intervals, faults)
            if result is None:
                continue
            return self._tolerant_outcome(
                state, names, intervals, result.interval, result.count,
                faults, budget,
            )
        # No tolerant intersection within budget (or budget 0): plain
        # IM-2's all-sources test.  When any tolerant attempt failed the
        # full intersection is necessarily empty too, so this reports the
        # inconsistency with IM's usual conflicting-pair attribution and
        # lets Section 3 recovery take over — never a minority reset.
        plain = super().on_round_complete(state, replies)
        return FTRoundOutcome(
            consistent=plain.consistent,
            decision=plain.decision,
            conflicting=plain.conflicting,
            mode="plain",
            fault_budget=budget,
            n_sources=n,
        )

    # -------------------------------------------------------- classification

    def _tolerant_outcome(
        self,
        state: LocalState,
        names: Sequence[str],
        intervals: Sequence[TimeInterval],
        chosen: TimeInterval,
        overlap: int,
        faults: int,
        budget: int,
    ) -> FTRoundOutcome:
        n = len(intervals)
        # Hard falsetickers: sources that provably cannot contain the true
        # time if the accepted (majority-covered) region does.
        false_set = {
            index
            for index in range(n)
            if not intervals[index].intersects(chosen)
        }
        # Soft falsetickers: RFC-5905's midpoint test — a source whose
        # centre falls outside the majority selection is suspect even when
        # its (wide) interval still overlaps it.
        selection = ntp_select(intervals)
        if selection is not None:
            false_set.update(selection.falsetickers)
        truechimers = tuple(
            names[index]
            for index in range(n)
            if index not in false_set and names[index] != "self"
        )
        falsetickers = tuple(
            names[index] for index in sorted(false_set) if names[index] != "self"
        )
        containing = [
            index
            for index in range(n)
            if intervals[index].lo <= chosen.lo and intervals[index].hi >= chosen.hi
        ]
        # Attribute the reset to the sources defining the accepted edges,
        # exactly as plain IM's "S2∩S3" tracing does.
        a_index = max(containing, key=lambda index: intervals[index].lo)
        b_index = min(containing, key=lambda index: intervals[index].hi)
        source = (
            names[a_index]
            if a_index == b_index
            else f"{names[a_index]}∩{names[b_index]}"
        )
        decision = self._decision(state, chosen.lo, chosen.hi, source)
        return FTRoundOutcome(
            consistent=True,
            decision=decision,
            mode="tolerant",
            fault_budget=budget,
            faults_used=faults,
            overlap=overlap,
            n_sources=n,
            truechimers=truechimers,
            falsetickers=falsetickers,
        )
