"""Synchronization-function framework.

Section 1.2 characterises clock synchronization as every process ``i``
independently computing

    C_i(t) <- F(C_{i1}(t), ..., C_{ik}(t))

over data collected from its neighbours, and reduces the design space to
the choice of the *synchronization function* ``F``.  This module pins down
the interfaces: what a server knows locally (:class:`LocalState`), what a
neighbour's reply carries (:class:`Reply`), and what a synchronization
policy may decide (:class:`ResetDecision`).

Two evaluation shapes exist in the paper:

* **incremental** — algorithm MM examines replies one at a time as they
  arrive and may reset on any of them (rule MM-2 is a per-reply predicate);
* **batch** — algorithm IM transforms *all* replies of a round and resets
  once, to the midpoint of the intersection (rule IM-2).

:class:`SynchronizationPolicy` supports both: the server feeds each reply to
:meth:`~SynchronizationPolicy.on_reply` and, when the round's replies have
all arrived (or timed out), calls
:meth:`~SynchronizationPolicy.on_round_complete`.  Policies implement
whichever hooks they need; the baselines (max / median / mean / first-reply)
are batch policies too.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from .intervals import TimeInterval


@dataclass(frozen=True)
class LocalState:
    """A server's own view at the instant it evaluates a reply or a round.

    Attributes:
        clock_value: ``C_i`` — the local clock reading now.
        error: ``E_i`` — the local maximum error now (rule MM-1's
            ``ε_i + (C_i - r_i)·δ_i``).
        delta: ``δ_i`` — the claimed maximum drift rate used to inflate
            round-trip terms.
    """

    clock_value: float
    error: float
    delta: float

    @property
    def interval(self) -> TimeInterval:
        """The local interval ``[C_i - E_i, C_i + E_i]``."""
        return TimeInterval.from_center_error(self.clock_value, self.error)


@dataclass(frozen=True)
class Reply:
    """A neighbour's answer to a time request, as seen by the requester.

    Attributes:
        server: Name of the responding server ``S_j``.
        clock_value: ``C_j`` as carried in the reply.
        error: ``E_j`` as carried in the reply.
        rtt_local: ``ξ^i_j`` — the round-trip delay *measured on the local
            clock* ``C_i`` between sending the request and receiving this
            reply.  Rule MM-2 and rule IM-2 both inflate it by
            ``(1 + δ_i)`` to convert a local-clock duration into a bound on
            real elapsed time.
        is_self: True for the requester's own interval injected as a
            candidate (the self-reply device used in the Theorem 2 proof).
    """

    server: str
    clock_value: float
    error: float
    rtt_local: float
    is_self: bool = False

    @property
    def interval(self) -> TimeInterval:
        """The raw reply interval ``[C_j - E_j, C_j + E_j]`` (no rtt term)."""
        return TimeInterval.from_center_error(self.clock_value, self.error)

    def inflated_error(self, delta_local: float) -> float:
        """``E_j + (1 + δ_i)·ξ^i_j`` — the error after adopting this reply."""
        return self.error + (1.0 + delta_local) * self.rtt_local

    def transit_interval(self, delta_local: float) -> TimeInterval:
        """The reply interval aged to the receipt instant.

        The reply was generated somewhere inside the round trip, so at
        receipt the true time can exceed the reply's leading edge by up to
        the full round trip — hence ``[C_j - E_j,
        C_j + E_j + (1 + δ_i)·ξ^i_j]`` (exactly rule IM-2's transformation).
        Consistency between the local state and a *reply* must be judged on
        this interval: using the raw interval produces false inconsistency
        alarms against a fast local clock.
        """
        return TimeInterval(
            self.clock_value - self.error,
            self.clock_value
            + self.error
            + (1.0 + delta_local) * self.rtt_local,
        )


@dataclass(frozen=True)
class ResetDecision:
    """What a policy tells the server to do to its clock.

    Attributes:
        clock_value: New value for ``C_i`` (the server sets its clock so
            that it reads this at the decision instant).
        inherited_error: New ``ε_i``.  The server also sets
            ``r_i <- clock_value`` so the age term restarts from zero.
        source: Name(s) of the server(s) the new value derives from, for
            tracing ("S3" for MM; "S2∩S3" style for IM).
    """

    clock_value: float
    inherited_error: float
    source: str = ""


@dataclass(frozen=True)
class ReplyOutcome:
    """Result of evaluating a single reply.

    Attributes:
        consistent: Whether the reply interval intersects the local one
            (inconsistent replies are ignored by MM-2 but surfaced here so
            the recovery machinery of Section 3 can react).
        decision: A reset to apply now, or None.
    """

    consistent: bool
    decision: Optional[ResetDecision] = None


@dataclass(frozen=True)
class RoundOutcome:
    """Result of evaluating a completed round of replies.

    Attributes:
        consistent: Whether the round found the service consistent.  For IM
            this is rule IM-2's ``b > a`` test on the global intersection;
            an inconsistent round triggers the Section 3 recovery machinery.
        decision: A reset to apply, or None.
        conflicting: Names of the servers implicated in an inconsistency
            (for IM, the pair whose transformed edges cross), so recovery
            can exclude them when choosing an arbiter.
    """

    consistent: bool
    decision: Optional[ResetDecision] = None
    conflicting: tuple[str, ...] = ()


class SynchronizationPolicy(abc.ABC):
    """Strategy interface for the synchronization function ``F``.

    A policy is stateless with respect to the server (all needed inputs
    arrive via :class:`LocalState` and :class:`Reply`), so one policy
    instance may be shared by many servers.
    """

    #: Human-readable short name used in traces and benchmark tables.
    name: str = "base"

    #: Whether the server should evaluate replies as they arrive
    #: (incremental, MM-style).  If False, only the round hook is used.
    incremental: bool = False

    def on_reply(self, state: LocalState, reply: Reply) -> ReplyOutcome:
        """Evaluate one reply as it arrives.

        Default: classify consistency, never reset (batch policies).
        """
        consistent = state.interval.intersects(reply.interval)
        return ReplyOutcome(consistent=consistent)

    def on_round_complete(
        self, state: LocalState, replies: Sequence[Reply]
    ) -> RoundOutcome:
        """Evaluate a completed round of replies.  Default: no reset."""
        return RoundOutcome(consistent=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
