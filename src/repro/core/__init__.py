"""The paper's core contribution: interval clocks and synchronization functions.

Exports the interval algebra, algorithms MM and IM, the fault-tolerant
Marzullo/NTP intersection, theorem-bound calculators, the inconsistency
recovery strategies, and the rate-domain (consonance) machinery.
"""

from .bounds import (
    ServiceParameters,
    lemma1_error_growth,
    theorem2_error_bound,
    theorem3_asynchronism_bound,
    theorem7_asynchronism_bound,
)
from .consonance import (
    RateEstimate,
    RateEstimator,
    RateInterval,
    RateObservation,
    consonant,
    dissonant_servers,
    rate_im_step,
    rate_mm_step,
)
from .ft_im import FTIMPolicy, FTRoundOutcome
from .im import IMPolicy, TransformedReply
from .intervals import (
    TimeInterval,
    consistency,
    intersect_all,
    pairwise_consistent,
    smallest,
)
from .marzullo import (
    MarzulloResult,
    SelectionResult,
    intersect_tolerating,
    marzullo,
    ntp_select,
)
from .mm import MMPolicy
from .recovery import (
    NullRecovery,
    RecoveryStats,
    RecoveryStrategy,
    ThirdServerRecovery,
)
from .sync import (
    LocalState,
    Reply,
    ReplyOutcome,
    ResetDecision,
    RoundOutcome,
    SynchronizationPolicy,
)

__all__ = [
    "FTIMPolicy",
    "FTRoundOutcome",
    "IMPolicy",
    "LocalState",
    "MMPolicy",
    "MarzulloResult",
    "NullRecovery",
    "RateEstimate",
    "RateEstimator",
    "RateInterval",
    "RateObservation",
    "RecoveryStats",
    "RecoveryStrategy",
    "Reply",
    "ReplyOutcome",
    "ResetDecision",
    "RoundOutcome",
    "SelectionResult",
    "ServiceParameters",
    "SynchronizationPolicy",
    "ThirdServerRecovery",
    "TimeInterval",
    "TransformedReply",
    "consistency",
    "consonant",
    "dissonant_servers",
    "intersect_all",
    "intersect_tolerating",
    "lemma1_error_growth",
    "marzullo",
    "ntp_select",
    "pairwise_consistent",
    "rate_im_step",
    "rate_mm_step",
    "smallest",
    "theorem2_error_bound",
    "theorem3_asynchronism_bound",
    "theorem7_asynchronism_bound",
]
