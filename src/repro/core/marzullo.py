"""Marzullo's fault-tolerant interval intersection, and the NTP variant.

Algorithm IM (Section 4) intersects *all* reply intervals, which fails as
soon as one server is incorrect (the intersection goes empty, or worse,
excludes the true time — Figure 3).  The companion thesis [Marzullo 83]
generalises the intersection to tolerate faulty sources, and that
generalisation — universally known as *Marzullo's algorithm* — became the
core of NTP's clock-select.  This module implements:

* :func:`marzullo` — given ``n`` intervals, the (first, smallest) interval
  contained in the **maximum** number of source intervals, found with the
  classic endpoint sweep in ``O(n log n)``.
* :func:`intersect_tolerating` — the ``f``-fault-tolerant intersection: the
  sweep result if at least ``n - f`` sources overlap it, else None.
* :func:`ntp_select` — the RFC-5905-style refinement that additionally
  requires the majority's *midpoints* to fall inside the selected
  intersection, classifying sources into truechimers and falsetickers.

Guarantee (the thesis's): if at most ``f`` of ``n`` intervals are incorrect
and ``2f < n``, the true time lies in the interval returned by
``intersect_tolerating(intervals, f)`` whenever it returns one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .intervals import TimeInterval


@dataclass(frozen=True)
class MarzulloResult:
    """Result of the endpoint sweep.

    Attributes:
        interval: The first smallest sub-interval covered by ``count``
            source intervals.
        count: The maximum number of source intervals sharing a point.
    """

    interval: TimeInterval
    count: int


def marzullo(intervals: Sequence[TimeInterval]) -> MarzulloResult:
    """Endpoint-sweep intersection: best-overlapped sub-interval.

    Args:
        intervals: One interval per source; order is irrelevant except that
            among equally-overlapped regions the leftmost is returned.

    Returns:
        The maximally-overlapped region and its overlap count.

    Raises:
        ValueError: On empty input.

    Complexity: ``O(n log n)`` time, ``O(n)`` space.
    """
    if not intervals:
        raise ValueError("marzullo() of empty interval sequence")
    # Type 0 marks a trailing edge (interval opens), type 1 a leading edge
    # (interval closes).  Sorting opens before closes at equal offsets makes
    # touching intervals count as overlapping, matching the paper's
    # ``<=``-based consistency.
    events: List[tuple[float, int]] = []
    for interval in intervals:
        events.append((interval.lo, 0))
        events.append((interval.hi, 1))
    events.sort()

    best = 0
    count = 0
    best_lo = events[0][0]
    best_hi = events[0][0]
    for index, (offset, kind) in enumerate(events):
        if kind == 0:
            count += 1
            if count > best:
                best = count
                best_lo = offset
                # The best region extends to the next event; if that event
                # opens yet another interval this assignment is superseded
                # on the next iteration.
                best_hi = events[index + 1][0]
        else:
            count -= 1
    return MarzulloResult(TimeInterval(best_lo, best_hi), best)


def intersect_tolerating(
    intervals: Sequence[TimeInterval], faults: int
) -> Optional[MarzulloResult]:
    """The ``f``-fault-tolerant intersection.

    Args:
        intervals: One interval per source.
        faults: Maximum number of sources allowed to be incorrect.

    Returns:
        The sweep result if at least ``len(intervals) - faults`` sources
        overlap it; otherwise None (too many sources disagree for the
        requested tolerance).

    Raises:
        ValueError: If ``faults`` is negative or the input is empty.
    """
    if faults < 0:
        raise ValueError(f"faults must be non-negative, got {faults}")
    result = marzullo(intervals)
    if result.count >= len(intervals) - faults:
        return result
    return None


@dataclass(frozen=True)
class SelectionResult:
    """Result of the NTP-style selection.

    Attributes:
        interval: The selected correctness interval.
        truechimers: Indices of sources judged correct (interval overlaps
            the selection and midpoint lies inside it).
        falsetickers: Indices of the remaining sources.
    """

    interval: TimeInterval
    truechimers: tuple[int, ...]
    falsetickers: tuple[int, ...]


def ntp_select(intervals: Sequence[TimeInterval]) -> Optional[SelectionResult]:
    """RFC-5905-style clock selection over correctness intervals.

    For increasing assumed falseticker counts ``f`` (while ``2f < n``), scan
    for the tightest ``[low .. high]`` such that at least ``n - f``
    intervals' trailing edges are at or below ``low`` reached in ascending
    order, and symmetrically for ``high``; accept once no more than ``f``
    midpoints fall outside ``[low .. high]``.

    Returns:
        The selection and the truechimer/falseticker split, or None when no
        majority agreement exists (more than half the sources disagree).
    """
    n = len(intervals)
    if n == 0:
        return None
    # Build the endpoint lists once.  Each source contributes its trailing
    # edge, midpoint, and leading edge.
    ascending = sorted(
        (interval.lo, -1, index) for index, interval in enumerate(intervals)
    )
    descending = sorted(
        ((interval.hi, +1, index) for index, interval in enumerate(intervals)),
        reverse=True,
    )
    midpoints = [interval.center for interval in intervals]

    allow = 0
    while 2 * allow < n:
        need = n - allow
        low: Optional[float] = None
        high: Optional[float] = None
        chime = 0
        for offset, _kind, _index in ascending:
            chime += 1
            if chime >= need:
                low = offset
                break
        chime = 0
        for offset, _kind, _index in descending:
            chime += 1
            if chime >= need:
                high = offset
                break
        if low is not None and high is not None and low <= high:
            outside = [
                index
                for index, mid in enumerate(midpoints)
                if not (low <= mid <= high)
            ]
            if len(outside) <= allow:
                selected = TimeInterval(low, high)
                false_set = set(outside)
                # A truechimer must also actually overlap the selection.
                for index, interval in enumerate(intervals):
                    if index not in false_set and not interval.intersects(selected):
                        false_set.add(index)
                if 2 * len(false_set) < n:
                    true_idx = tuple(
                        index for index in range(n) if index not in false_set
                    )
                    false_idx = tuple(sorted(false_set))
                    return SelectionResult(selected, true_idx, false_idx)
        allow += 1
    return None
