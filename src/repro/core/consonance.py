"""Consonance: the interval machinery applied to clock *rates* (Section 5).

Two clocks are *consonant* at ``t0`` if their rate of separation is within
the sum of their maximum drift rates::

    | d/dt (C_i(t) - C_j(t)) |  <=  δ_i + δ_j

The paper sketches (deferring details to [Marzullo 83]) that a *rate
interval* equivalent to the time interval can be defined from this
predicate, and algorithms MM and IM applied to maintain a consonant set of
δ's just as they maintain a consistent set of times.  This module builds
that machinery:

* :class:`RateObservation` / :class:`RateEstimator` — estimate the pairwise
  separation rate of two clocks from repeated offset measurements (least
  squares over a sliding window, with an uncertainty that accounts for the
  ±ξ reading error of each offset sample).
* :func:`consonant` — the predicate above.
* :class:`RateInterval` — a clock's rate as an interval
  ``[rate - bound, rate + bound]`` (``rate`` relative to the standard), with
  the same intersection algebra as time intervals; :func:`rate_im_step` and
  :func:`rate_mm_step` apply IM-2/MM-2 in the rate domain.

The practical use (demonstrated in ``experiments.partition`` and the
``consonance`` example) is diagnosing *why* a service went inconsistent:
a server whose observed separation rate against many peers exceeds the
claimed bounds is the one with an invalid δ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Optional, Sequence

import collections

import numpy as np

from .intervals import TimeInterval


def consonant(separation_rate: float, delta_i: float, delta_j: float) -> bool:
    """Whether a measured separation rate is explainable by the claimed δ's."""
    return abs(separation_rate) <= delta_i + delta_j


@dataclass(frozen=True)
class RateObservation:
    """One offset sample between two clocks.

    Attributes:
        local_time: The observer's clock reading at the sample.
        offset: Measured ``C_j - C_i`` (centre of the remote interval minus
            local clock), subject to ±``reading_error``.
        reading_error: Bound on the measurement error of ``offset`` (at
            most ``E_i + E_j + ξ`` for an interval exchange — callers pass
            what they know).
    """

    local_time: float
    offset: float
    reading_error: float


@dataclass(frozen=True)
class RateEstimate:
    """A separation-rate estimate with two uncertainty figures.

    Attributes:
        rate: Estimated ``d(C_j - C_i)/dt`` (dimensionless, seconds per
            second).
        uncertainty: *Worst-case* bound on the estimate's error, derived
            from the endpoints' reading errors over the observation span —
            the paper-style hard bound (correct but very conservative,
            because a reading error of ±E is mostly a slowly-varying bias,
            not per-sample noise).
        stderr: *Statistical* standard error of the least-squares slope,
            from the fit residuals.  Small when the offsets actually lie on
            a line (a steadily drifting neighbour), large when they jump
            around (a neighbour being stepped by resets).  Diagnostics use
            this; proofs would use ``uncertainty``.
        span: Elapsed local time between first and last observation used.
        samples: Number of observations used.
    """

    rate: float
    uncertainty: float
    stderr: float
    span: float
    samples: int

    @property
    def interval(self) -> TimeInterval:
        """The rate as an interval ``[rate - uncertainty, rate + uncertainty]``."""
        return TimeInterval.from_center_error(self.rate, self.uncertainty)

    @property
    def noise(self) -> float:
        """The diagnostic confidence margin: ``min(uncertainty, 3·stderr)``.

        Never larger than the hard bound, but exploits linearity of the
        sample path when present.
        """
        return min(self.uncertainty, 3.0 * self.stderr)


class RateEstimator:
    """Sliding-window least-squares estimator of a pairwise separation rate.

    Args:
        window: Maximum number of observations retained.
        min_span: Minimum elapsed time between the first and last retained
            observation before an estimate is produced (rate estimates over
            tiny spans are dominated by reading error).

    The uncertainty reported is the *worst-case* slope perturbation from the
    endpoint reading errors, ``(err_first + err_last) / span`` — a hard
    bound in the paper's spirit (maximum error, not a variance).
    """

    def __init__(self, window: int = 32, min_span: float = 1.0) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        if min_span <= 0:
            raise ValueError(f"min_span must be positive, got {min_span}")
        self.window = window
        self.min_span = min_span
        self._obs: Deque[RateObservation] = collections.deque(maxlen=window)

    def add(self, observation: RateObservation) -> None:
        """Append an observation (samples must arrive in local-time order)."""
        if self._obs and observation.local_time < self._obs[-1].local_time:
            raise ValueError(
                "rate observations must be added in non-decreasing local time"
            )
        self._obs.append(observation)

    def __len__(self) -> int:
        return len(self._obs)

    def estimate(self) -> Optional[RateEstimate]:
        """Least-squares slope over the window, or None if under-determined."""
        if len(self._obs) < 2:
            return None
        first = self._obs[0]
        last = self._obs[-1]
        span = last.local_time - first.local_time
        if span < self.min_span:
            return None
        times = np.array([o.local_time for o in self._obs])
        offsets = np.array([o.offset for o in self._obs])
        slope, intercept = np.polyfit(times, offsets, deg=1)
        uncertainty = (first.reading_error + last.reading_error) / span
        # Statistical slope error from the residuals (0 for n = 2, where
        # the fit is exact and carries no redundancy).
        if len(self._obs) > 2:
            residuals = offsets - (slope * times + intercept)
            dof = len(self._obs) - 2
            sxx = float(np.sum((times - times.mean()) ** 2))
            variance = float(np.sum(residuals**2)) / dof / max(sxx, 1e-300)
            stderr = float(np.sqrt(variance))
        else:
            stderr = float(uncertainty)
        return RateEstimate(
            rate=float(slope),
            uncertainty=float(uncertainty),
            stderr=stderr,
            span=float(span),
            samples=len(self._obs),
        )


# ------------------------------------------------------------- rate domain


@dataclass(frozen=True)
class RateInterval:
    """A clock's frequency error relative to the standard, as an interval.

    ``value`` is the believed skew (``dC/dt - 1``) and ``bound`` the maximum
    error of that belief; a correct rate interval contains the clock's true
    skew.  The claimed δ of the paper is simply the rate interval
    ``[-δ, +δ]`` — zero believed skew, bound δ.
    """

    value: float
    bound: float

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise ValueError(f"rate bound must be non-negative, got {self.bound}")

    @property
    def interval(self) -> TimeInterval:
        """As a generic interval for the shared algebra."""
        return TimeInterval.from_center_error(self.value, self.bound)

    @classmethod
    def from_delta(cls, delta: float) -> "RateInterval":
        """The paper's default belief: skew unknown within ``[-δ, +δ]``."""
        return cls(0.0, delta)


def rate_mm_step(
    local: RateInterval, remote: RateInterval, relative_rate: RateEstimate
) -> Optional[RateInterval]:
    """MM-2 in the rate domain.

    The remote clock's skew interval, seen through a measured relative rate,
    becomes a candidate for the local skew: ``remote.value + relative_rate``
    with bound ``remote.bound + relative_rate.uncertainty``... except the
    sign convention: if ``C_j`` separates from ``C_i`` at measured rate
    ``r`` then ``skew_i ≈ skew_j - r``.  Adopt the candidate iff its bound
    improves on the local one (the MM predicate); return the new local rate
    interval, or None if not adopted.
    """
    candidate_bound = remote.bound + relative_rate.uncertainty
    if candidate_bound > local.bound:
        return None
    return RateInterval(remote.value - relative_rate.rate, candidate_bound)


def rate_im_step(
    local: RateInterval, remote: RateInterval, relative_rate: RateEstimate
) -> Optional[RateInterval]:
    """IM-2 in the rate domain: intersect local and transformed remote.

    Returns the intersection midpoint/half-width as the new local rate
    interval, or None if the two rate intervals are *dissonant* (empty
    intersection) — the rate-domain analogue of inconsistency, and the
    paper's suggested diagnostic for invalid δ's.
    """
    transformed = TimeInterval.from_center_error(
        remote.value - relative_rate.rate,
        remote.bound + relative_rate.uncertainty,
    )
    overlap = local.interval.intersection(transformed)
    if overlap is None:
        return None
    return RateInterval(overlap.center, overlap.error)


def dissonant_servers(
    names: Sequence[str],
    deltas: Sequence[float],
    separation_rates: dict[tuple[int, int], float],
) -> list[str]:
    """Identify servers dissonant with a majority of their peers.

    Args:
        names: Server names, index-aligned with ``deltas``.
        deltas: Claimed maximum drift rates.
        separation_rates: Measured ``d(C_j - C_i)/dt`` keyed by index pair
            ``(i, j)`` with ``i < j``.

    Returns:
        Names of servers that are non-consonant with strictly more than half
        of the peers they were measured against — the prime suspects for an
        invalid drift bound.
    """
    counts = {index: [0, 0] for index in range(len(names))}  # [bad, total]
    for (i, j), rate in separation_rates.items():
        ok = consonant(rate, deltas[i], deltas[j])
        for index in (i, j):
            counts[index][1] += 1
            if not ok:
                counts[index][0] += 1
    suspects = []
    for index, (bad, total) in counts.items():
        if total > 0 and bad * 2 > total:
            suspects.append(names[index])
    return suspects
