"""Inconsistency recovery (Section 3).

When a server finds itself inconsistent with a neighbour, at least one of
the two is incorrect — but the server "cannot easily tell which", and
majority voting is unsound because consistency is not transitive.  The
paper's pragmatic rule: assume incorrect servers are rare, so on detecting
an inconsistency, reset *unconditionally* to the value of any third server
(ideally one from elsewhere in the internetwork — the anecdote's server
"obtained the time from a server on some other network").

This module provides the strategy objects a
:class:`~repro.service.server.TimeServer` consults:

* :class:`NullRecovery` — ignore inconsistencies (the raw MM/IM behaviour,
  which lets an incorrect clock wander off; used as the baseline).
* :class:`ThirdServerRecovery` — the paper's rule.  Picks an arbiter that is
  neither the server itself nor the conflicting neighbour, preferring a
  configured set of *remote* servers (other-network arbiters) when
  available.

The known failure mode — with more than one incorrect neighbour the service
partitions into consistency groups (Figure 4) — is reproduced by the
``experiments.partition`` scenario.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np


@dataclass
class RecoveryStats:
    """Counters a recovery strategy maintains for analysis.

    Attributes:
        inconsistencies: Inconsistency events observed.
        recoveries_started: Third-party polls initiated.
        recoveries_completed: Unconditional resets applied.
        recoveries_timed_out: Polls abandoned because the reply never came
            (lost request or reply, a poisoned reply, or the server left
            mid-recovery); balances ``recoveries_started`` so
            ``started == completed + timed_out + in_flight``.
        recoveries_in_flight: Polls currently awaiting a reply —
            incremented by :meth:`RecoveryStrategy.note_started` and
            decremented by exactly one of ``note_completed`` /
            ``note_timed_out``; going negative means an outcome was
            recorded for a recovery that never started.
        no_arbiter: Events where no eligible third server existed.
    """

    inconsistencies: int = 0
    recoveries_started: int = 0
    recoveries_completed: int = 0
    recoveries_timed_out: int = 0
    recoveries_in_flight: int = 0
    no_arbiter: int = 0

    @property
    def balanced(self) -> bool:
        """The accounting invariant every strategy must maintain."""
        return (
            self.recoveries_in_flight >= 0
            and self.recoveries_started
            == self.recoveries_completed
            + self.recoveries_timed_out
            + self.recoveries_in_flight
        )


class RecoveryStrategy(abc.ABC):
    """Decides how a server reacts to finding itself inconsistent."""

    def __init__(self) -> None:
        self.stats = RecoveryStats()

    @abc.abstractmethod
    def choose_arbiter(
        self,
        server_name: str,
        neighbours: Sequence[str],
        conflicting: Iterable[str],
    ) -> Optional[str]:
        """Pick the third server to reset from, or None to skip recovery.

        Args:
            server_name: The recovering server (never a valid arbiter).
            neighbours: Servers reachable from the recovering server.
            conflicting: *Every* server the recovering server has found
                itself inconsistent with in the current or previous poll
                round — not just the reply that triggered this episode.
                (Excluding only the trigger left the second liar of a
                Figure 4 pair eligible as arbiter, which is exactly how
                the partition forms.)  All names here are banned.
        """

    def note_inconsistency(self) -> None:
        """Record that an inconsistency was observed."""
        self.stats.inconsistencies += 1

    def note_started(self) -> None:
        """Record that a recovery poll was sent."""
        self.stats.recoveries_started += 1
        self.stats.recoveries_in_flight += 1

    def note_completed(self) -> None:
        """Record that an unconditional reset was applied."""
        self.stats.recoveries_completed += 1
        self.stats.recoveries_in_flight -= 1

    def note_timed_out(self) -> None:
        """Record that a recovery poll was abandoned without a reply."""
        self.stats.recoveries_timed_out += 1
        self.stats.recoveries_in_flight -= 1


class NullRecovery(RecoveryStrategy):
    """Never recover: inconsistent replies are merely ignored."""

    def choose_arbiter(
        self,
        server_name: str,
        neighbours: Sequence[str],
        conflicting: Iterable[str],
    ) -> Optional[str]:
        return None


@dataclass(frozen=True)
class _ArbiterPools:
    remote: tuple[str, ...]
    local: tuple[str, ...]


class ThirdServerRecovery(RecoveryStrategy):
    """The paper's rule: on inconsistency, reset to any third server.

    Args:
        rng: Random stream for arbiter choice among equals.
        remote_servers: Optional names of servers "on some other network"
            to prefer as arbiters — modelling the anecdote where the
            confused server fetched the time from another network.  They
            need not appear in the neighbour list passed at decision time;
            they are assumed reachable.

    The assumption being encoded: "the probability of a third time server
    also being incorrect is very small".  It breaks — by design — when two
    or more incorrect servers are adjacent (Section 5 / Figure 4).
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        remote_servers: Sequence[str] = (),
    ) -> None:
        super().__init__()
        self._rng = rng
        self._remote = tuple(remote_servers)

    def _pools(
        self,
        server_name: str,
        neighbours: Sequence[str],
        conflicting: Iterable[str],
    ) -> _ArbiterPools:
        banned = set(conflicting) | {server_name}
        remote = tuple(name for name in self._remote if name not in banned)
        local = tuple(
            name
            for name in neighbours
            if name not in banned and name not in remote
        )
        return _ArbiterPools(remote=remote, local=local)

    def choose_arbiter(
        self,
        server_name: str,
        neighbours: Sequence[str],
        conflicting: Iterable[str],
    ) -> Optional[str]:
        pools = self._pools(server_name, neighbours, conflicting)
        pool = pools.remote or pools.local
        if not pool:
            self.stats.no_arbiter += 1
            return None
        if self._rng is None:
            return pool[0]
        return pool[int(self._rng.integers(len(pool)))]
