"""Closed-form bounds from the paper's theorems.

These calculators exist so experiments and tests can check measured
behaviour against the paper's guarantees *as formulas*, not re-derivations:

* Lemma 1 — error growth of an unreset server.
* Theorem 2 — MM error bound relative to the smallest error in the service.
* Theorem 3 — MM asynchronism bound.
* Theorem 7 — IM asynchronism bound.

Every function takes the same symbols the paper uses:

* ``delta`` / ``delta_i`` / ``delta_j`` — claimed maximum drift rates δ.
* ``xi`` — the bound ξ on the nondeterministic message round trip.
* ``tau`` — the polling period τ (each server polls at least every τ s).
* ``e_min`` — ``E_M(t)``, the smallest maximum error in the service at the
  evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass


def _require_nonnegative(**values: float) -> None:
    for name, value in values.items():
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")


def lemma1_error_growth(error_at_t0: float, delta: float, elapsed: float) -> float:
    """Lemma 1: ``E_i(t0 + Δ) = E_i(t0) + δ_i·Δ`` for an unreset server.

    (Equality in the lemma; as a *bound* it also upper-bounds servers that
    reset, per Lemma 2.)
    """
    _require_nonnegative(delta=delta, elapsed=elapsed)
    return error_at_t0 + delta * elapsed


def theorem2_error_bound(e_min: float, xi: float, delta_i: float, tau: float) -> float:
    """Theorem 2: MM keeps ``E_i(t) < E_M(t) + ξ + δ_i(τ + 2ξ)``.

    Args:
        e_min: ``E_M(t)`` — smallest error in the service at ``t``.
        xi: Round-trip delay bound ξ.
        delta_i: The server's claimed drift bound.
        tau: Poll period.
    """
    _require_nonnegative(e_min=e_min, xi=xi, delta_i=delta_i, tau=tau)
    return e_min + xi + delta_i * (tau + 2.0 * xi)


def theorem3_asynchronism_bound(
    e_min: float, xi: float, delta_i: float, delta_j: float, tau: float
) -> float:
    """Theorem 3: MM keeps ``|C_i - C_j| < 2E_M + 2ξ + (δ_i + δ_j)(τ + 2ξ)``."""
    _require_nonnegative(
        e_min=e_min, xi=xi, delta_i=delta_i, delta_j=delta_j, tau=tau
    )
    return 2.0 * e_min + 2.0 * xi + (delta_i + delta_j) * (tau + 2.0 * xi)


def theorem7_asynchronism_bound(
    xi: float, delta_i: float, delta_j: float, tau: float
) -> float:
    """Theorem 7: IM keeps ``|C_i - C_j| <= ξ + (δ_i + δ_j)·τ``.

    Note the bound is independent of the current service error — the
    headline synchronization advantage of IM over MM.
    """
    _require_nonnegative(xi=xi, delta_i=delta_i, delta_j=delta_j, tau=tau)
    return xi + (delta_i + delta_j) * tau


@dataclass(frozen=True)
class ServiceParameters:
    """The paper's global symbols for one simulated service, bundled.

    Attributes:
        xi: Bound on the nondeterministic round-trip delay ξ.
        tau: Poll period τ.
    """

    xi: float
    tau: float

    def __post_init__(self) -> None:
        _require_nonnegative(xi=self.xi, tau=self.tau)

    def mm_error_bound(self, e_min: float, delta_i: float) -> float:
        """Theorem 2 for these service parameters."""
        return theorem2_error_bound(e_min, self.xi, delta_i, self.tau)

    def mm_asynchronism_bound(
        self, e_min: float, delta_i: float, delta_j: float
    ) -> float:
        """Theorem 3 for these service parameters."""
        return theorem3_asynchronism_bound(
            e_min, self.xi, delta_i, delta_j, self.tau
        )

    def im_asynchronism_bound(self, delta_i: float, delta_j: float) -> float:
        """Theorem 7 for these service parameters."""
        return theorem7_asynchronism_bound(self.xi, delta_i, delta_j, self.tau)
