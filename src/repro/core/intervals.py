"""Time-interval algebra.

The paper's key move (Section 2.2) is to have a time server answer not with
a point but with an *interval*: the pair ``<C, E>`` denotes
``[C - E, C + E]``, where ``C`` is the clock reading and ``E`` the server's
bound on its maximum error.  If the server is *correct*, the true time lies
inside the interval.  The *trailing edge* is ``C - E`` and the *leading
edge* is ``C + E`` (the paper's terms, kept throughout this codebase).

Two servers are *consistent* at ``t0`` iff ``|C_i - C_j| <= E_i + E_j``
(Section 2.3) — equivalently, iff their intervals intersect (touching
counts).  A whole service is consistent iff the intersection of all its
intervals is non-empty.

:class:`TimeInterval` is an immutable value type holding the two edges, with
constructors for both the edge form and the centre/error form, and the
algebra the algorithms need: intersection, consistency, containment, hulls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A closed real interval ``[lo, hi]`` of candidate true times.

    Attributes:
        lo: Trailing edge, ``C - E``.
        hi: Leading edge, ``C + E``.

    Instances are immutable and totally ordered by ``(lo, hi)`` so they can
    be sorted deterministically.  ``lo == hi`` (a point) is allowed — it is a
    perfect-knowledge interval, e.g. the time standard itself.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval edges must not be NaN")
        if self.lo > self.hi:
            raise ValueError(
                f"interval trailing edge {self.lo} exceeds leading edge {self.hi}"
            )

    # --------------------------------------------------------- constructors

    @classmethod
    def from_center_error(cls, center: float, error: float) -> "TimeInterval":
        """Build from the paper's ``<C, E>`` pair.

        Raises:
            ValueError: If ``error`` is negative.
        """
        if error < 0:
            raise ValueError(f"maximum error must be non-negative, got {error}")
        return cls(center - error, center + error)

    @classmethod
    def point(cls, value: float) -> "TimeInterval":
        """A zero-width interval: exact knowledge of the time."""
        return cls(value, value)

    # ------------------------------------------------------------ accessors

    @property
    def center(self) -> float:
        """The clock reading ``C`` (midpoint)."""
        return (self.lo + self.hi) / 2.0

    @property
    def error(self) -> float:
        """The maximum error ``E`` (half-width)."""
        return (self.hi - self.lo) / 2.0

    @property
    def width(self) -> float:
        """Full interval length, ``2E``."""
        return self.hi - self.lo

    @property
    def trailing_edge(self) -> float:
        """Paper terminology for :attr:`lo` (``C - E``)."""
        return self.lo

    @property
    def leading_edge(self) -> float:
        """Paper terminology for :attr:`hi` (``C + E``)."""
        return self.hi

    # ------------------------------------------------------------ predicates

    def contains(self, t: float) -> bool:
        """Whether real time ``t`` lies inside (edges inclusive)."""
        return self.lo <= t <= self.hi

    def contains_interval(self, other: "TimeInterval") -> bool:
        """Whether ``other`` is a subset of this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "TimeInterval") -> bool:
        """Whether the two intervals share at least one point.

        This is exactly the paper's *consistency* predicate
        ``|C_i - C_j| <= E_i + E_j``.
        """
        return self.lo <= other.hi and other.lo <= self.hi

    def consistent_with(self, other: "TimeInterval") -> bool:
        """Alias of :meth:`intersects`, in the paper's vocabulary."""
        return self.intersects(other)

    # ------------------------------------------------------------ operations

    def intersection(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """The overlap of the two intervals, or None if they are inconsistent."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return TimeInterval(lo, hi)

    def hull(self, other: "TimeInterval") -> "TimeInterval":
        """The smallest interval containing both."""
        return TimeInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def shifted(self, amount: float) -> "TimeInterval":
        """The interval translated by ``amount``."""
        return TimeInterval(self.lo + amount, self.hi + amount)

    def widened(self, trailing: float = 0.0, leading: float = 0.0) -> "TimeInterval":
        """The interval with its edges pushed outwards.

        Rule IM-2 widens only the leading edge of a reply by the round-trip
        term ``(1 + δ_i)·ξ``; :meth:`widened` expresses that asymmetry.

        Raises:
            ValueError: If a negative widening would invert the interval.
        """
        lo = self.lo - trailing
        hi = self.hi + leading
        if lo > hi:
            raise ValueError(
                f"widening by (trailing={trailing}, leading={leading}) "
                f"inverts {self}"
            )
        return TimeInterval(lo, hi)

    def __str__(self) -> str:
        return f"[{self.lo:.6f} .. {self.hi:.6f}]"


# ------------------------------------------------------------------ helpers


def consistency(c_i: float, e_i: float, c_j: float, e_j: float) -> bool:
    """The paper's consistency predicate on raw ``<C, E>`` pairs.

    ``|C_i - C_j| <= E_i + E_j`` (Section 2.3).
    """
    return abs(c_i - c_j) <= e_i + e_j


def intersect_all(intervals: Iterable[TimeInterval]) -> Optional[TimeInterval]:
    """Intersection of every interval, or None if it is empty.

    The service is *consistent* iff this returns a non-None interval
    (Section 2.3).  For an empty input, returns None (there is no "universe"
    interval to act as identity for time values).
    """
    result: Optional[TimeInterval] = None
    first = True
    for interval in intervals:
        if first:
            result = interval
            first = False
            continue
        assert result is not None
        next_result = result.intersection(interval)
        if next_result is None:
            return None
        result = next_result
    return result


def smallest(intervals: Sequence[TimeInterval]) -> TimeInterval:
    """The interval with the smallest error (width); ties broken by order.

    Raises:
        ValueError: On empty input.
    """
    if not intervals:
        raise ValueError("smallest() of empty interval sequence")
    return min(intervals, key=lambda iv: iv.width)


def pairwise_consistent(intervals: Sequence[TimeInterval]) -> bool:
    """Whether every pair of intervals intersects.

    Note this is *weaker* than service consistency: the paper stresses that
    the consistency relation "is not transitive", and Figure 4 shows a
    service that is pairwise-consistent within groups but globally
    inconsistent.  For 1-D intervals pairwise intersection does imply a
    common point (Helly's theorem in one dimension), so this predicate is
    in fact equivalent to global consistency for intervals — the
    non-transitivity bites between *pairs*, not given all pairs.
    """
    n = len(intervals)
    for i in range(n):
        for j in range(i + 1, n):
            if not intervals[i].intersects(intervals[j]):
                return False
    return True
