"""Algorithm MM — minimization of the maximum error (Section 3).

Rule **MM-1** (how a server answers): server ``S_i`` maintains a clock
``C_i``, the clock value at its last reset ``r_i``, and an inherited error
``ε_i``; at a request received at time ``t`` it responds with ``<C_i(t),
E_i(t)>`` where ``E_i(t) = ε_i + (C_i(t) - r_i)·δ_i``.  (MM-1 lives in the
server, :mod:`repro.service.server`, since it is shared by all policies.)

Rule **MM-2** (how a server synchronizes): every ``τ`` seconds the server
polls its neighbours.  A reply ``<C_j, E_j>`` with local-clock round trip
``ξ^i_j`` is ignored if inconsistent with the local interval.  For a
consistent reply, the server evaluates

    E_j + (1 + δ_i)·ξ^i_j  <=  E_i

and, when the predicate holds, resets: ``ε_i <- E_j + (1 + δ_i)·ξ^i_j``,
``C_i <- C_j``, ``r_i <- C_j``.

The predicate compares the error the server *would* have after adopting the
remote interval (remote error plus the worst-case real-time round trip)
against the error it has now; MM therefore greedily tracks the neighbour
with the smallest maximum error — hence the algorithm's name.

Theorem 1 proves MM preserves correctness when every ``δ_i`` is a valid
bound; Theorems 2 and 3 bound the error and asynchronism.

An ablation flag reproduces a deliberately broken variant (raw ``ξ`` without
the ``(1 + δ_i)`` inflation) used by the benchmark suite to show why the
inflation term is load-bearing for correctness.
"""

from __future__ import annotations

from typing import Sequence

from .sync import (
    LocalState,
    Reply,
    ReplyOutcome,
    ResetDecision,
    RoundOutcome,
    SynchronizationPolicy,
)


class MMPolicy(SynchronizationPolicy):
    """Rule MM-2 as an incremental synchronization policy.

    Args:
        inflate_rtt: When True (the paper's rule), the round-trip term is
            ``(1 + δ_i)·ξ^i_j``; when False, the raw ``ξ^i_j`` is used — an
            ablation that is *not* correctness-preserving for fast local
            clocks.
        strict_improvement: When True, require the predicate with strict
            ``<`` instead of the paper's ``<=``.  Strictness suppresses
            no-op resets between identical intervals; the paper's proofs use
            ``<=`` (the self-reply in Theorem 2's proof relies on it), so
            the default follows the paper.
    """

    name = "MM"
    incremental = True

    def __init__(self, *, inflate_rtt: bool = True, strict_improvement: bool = False):
        self.inflate_rtt = inflate_rtt
        self.strict_improvement = strict_improvement

    # ------------------------------------------------------------------ MM-2

    def adoption_error(self, state: LocalState, reply: Reply) -> float:
        """The error ``S_i`` would inherit by resetting to this reply."""
        factor = (1.0 + state.delta) if self.inflate_rtt else 1.0
        return reply.error + factor * reply.rtt_local

    def accepts(self, state: LocalState, reply: Reply) -> bool:
        """Rule MM-2's predicate on a (consistent) reply."""
        candidate = self.adoption_error(state, reply)
        if self.strict_improvement:
            return candidate < state.error
        return candidate <= state.error

    def on_reply(self, state: LocalState, reply: Reply) -> ReplyOutcome:
        # Consistency is judged on the reply aged to the receipt instant
        # (leading edge widened by the round-trip term); the raw reply
        # interval would raise false alarms against a fast local clock.
        consistent = state.interval.intersects(
            reply.transit_interval(state.delta)
        )
        if not consistent:
            # "Any reply that is inconsistent with S_i is ignored."  The
            # outcome still reports the inconsistency so recovery can react.
            return ReplyOutcome(consistent=False)
        if not self.accepts(state, reply):
            return ReplyOutcome(consistent=True)
        decision = ResetDecision(
            clock_value=reply.clock_value,
            inherited_error=self.adoption_error(state, reply),
            source=reply.server,
        )
        return ReplyOutcome(consistent=True, decision=decision)

    def on_round_complete(
        self, state: LocalState, replies: Sequence[Reply]
    ) -> RoundOutcome:
        # MM acts per reply; the round hook only reports whether anything
        # consistent was heard (all-inconsistent rounds feed recovery).
        any_consistent = any(
            state.interval.intersects(reply.transit_interval(state.delta))
            for reply in replies
        )
        return RoundOutcome(consistent=any_consistent or not replies)
