"""Algorithm IM — intersection as a synchronization function (Section 4).

Rule **IM-1** is identical to MM-1 (how a server reports its interval).

Rule **IM-2**: after polling, transform each reply ``<C_j, E_j>`` with
local-clock round trip ``ξ^i_j`` into an offset interval relative to the
local clock ``C_i``::

    T_j <- C_j - E_j - C_i
    L_j <- C_j + E_j + (1 + δ_i)·ξ^i_j - C_i

The transformed interval's trailing edge needs no round-trip allowance (the
reply was generated *before* it arrived, so the true time at receipt is at
least the reply's trailing edge); only the leading edge must absorb the
possible elapsed round trip — which is why the widening is asymmetric.
The server forms ``a <- max T_j`` and ``b <- min L_j`` over all replies
*and its own interval* ``[-E_i, +E_i]`` (the Theorem 5 proof intersects
with the unchanged local clock).  If ``b > a`` the service is consistent
and the server resets to the midpoint:
``ε_i <- (b - a)/2``, ``C_i <- (a + b)/2 + C_i``, ``r_i <- C_i``.

Theorem 5 proves IM preserves correctness; Theorem 6 that the intersection
is never larger than the smallest reply interval (so IM weakly dominates MM
on a single exchange); Theorem 7 bounds the asynchronism by
``ξ + (δ_i + δ_j)·τ``; and Theorem 8 that the *expected* error growth
vanishes as the number of servers grows.

Ablation flags reproduce design variants discussed in DESIGN.md: widening
both edges (correct but pessimistic), excluding the local interval, and
resetting to the trailing edge instead of the midpoint (correct but
maximally asymmetric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .sync import (
    LocalState,
    Reply,
    ResetDecision,
    RoundOutcome,
    SynchronizationPolicy,
)


@dataclass(frozen=True)
class TransformedReply:
    """A reply after rule IM-2's transformation into local-offset form.

    Attributes:
        server: Responding server's name.
        trailing: ``T_j = C_j - E_j - C_i``.
        leading: ``L_j = C_j + E_j + (1 + δ_i)·ξ^i_j - C_i``.
    """

    server: str
    trailing: float
    leading: float


class IMPolicy(SynchronizationPolicy):
    """Rule IM-2 as a batch synchronization policy.

    Args:
        include_self: Intersect with the local interval ``[-E_i, +E_i]``
            (the paper's Theorem 5 formulation).  Disabling it is an
            ablation: the reset can then *lose* information the local clock
            already had, inflating the error.
        widen_both_edges: Ablation — also subtract ``(1 + δ_i)·ξ^i_j`` from
            the trailing edge.  Still correctness-preserving but strictly
            looser, so the resulting error is larger.
        reset_to: Where in the intersection ``[a .. b]`` to put the clock:
            ``"midpoint"`` (the paper; minimises the new error ``(b-a)/2``)
            or ``"trailing"`` (sets ``C_i <- a + E_new`` equivalent; kept as
            an ablation of the midpoint choice).
        allow_point_intersection: Rule IM-2 tests ``b > a``; with exact
            arithmetic a touching intersection (``b == a``) is still
            consistent by the Section 2.3 definition, so the default accepts
            it.  Set False for the paper's literal strict test.
    """

    name = "IM"
    incremental = False

    def __init__(
        self,
        *,
        include_self: bool = True,
        widen_both_edges: bool = False,
        reset_to: str = "midpoint",
        allow_point_intersection: bool = True,
    ):
        if reset_to not in ("midpoint", "trailing"):
            raise ValueError(f"reset_to must be 'midpoint' or 'trailing', got {reset_to!r}")
        self.include_self = include_self
        self.widen_both_edges = widen_both_edges
        self.reset_to = reset_to
        self.allow_point_intersection = allow_point_intersection

    # ----------------------------------------------------------- transform

    def transform(self, state: LocalState, reply: Reply) -> TransformedReply:
        """Apply rule IM-2's reply transformation."""
        rtt_term = (1.0 + state.delta) * reply.rtt_local
        trailing = reply.clock_value - reply.error - state.clock_value
        if self.widen_both_edges:
            trailing -= rtt_term
        leading = reply.clock_value + reply.error + rtt_term - state.clock_value
        return TransformedReply(reply.server, trailing, leading)

    def intersection(
        self, state: LocalState, replies: Sequence[Reply]
    ) -> tuple[float, float, str]:
        """Compute ``(a, b, source)`` over transformed replies (+ self).

        ``source`` names the servers defining the two edges, e.g.
        ``"S2∩S3"``, for tracing.
        """
        transformed = [self.transform(state, reply) for reply in replies]
        if self.include_self:
            transformed.append(
                TransformedReply("self", -state.error, state.error)
            )
        if not transformed:
            raise ValueError("IM round with no replies and include_self=False")
        a_reply = max(transformed, key=lambda tr: tr.trailing)
        b_reply = min(transformed, key=lambda tr: tr.leading)
        source = (
            a_reply.server
            if a_reply.server == b_reply.server
            else f"{a_reply.server}∩{b_reply.server}"
        )
        return a_reply.trailing, b_reply.leading, source

    # ---------------------------------------------------------------- IM-2

    def on_round_complete(
        self, state: LocalState, replies: Sequence[Reply]
    ) -> RoundOutcome:
        if not replies and not self.include_self:
            return RoundOutcome(consistent=True)
        a, b, source = self.intersection(state, replies)
        consistent = (b >= a) if self.allow_point_intersection else (b > a)
        if not consistent:
            conflicting = tuple(
                name for name in source.split("∩") if name != "self"
            )
            return RoundOutcome(consistent=False, conflicting=conflicting)
        decision = self._decision(state, a, b, source)
        return RoundOutcome(consistent=True, decision=decision)

    def _decision(
        self, state: LocalState, a: float, b: float, source: str
    ) -> Optional[ResetDecision]:
        if self.reset_to == "midpoint":
            # The midpoint minimises the new error: E = (b - a)/2.
            offset = (a + b) / 2.0
            error = (b - a) / 2.0
        else:
            # "trailing" ablation: anchor the clock at the trailing edge.
            # Covering [a .. b] from centre a needs E = b - a — twice the
            # midpoint's error, which is exactly why the paper resets to
            # the midpoint.
            offset = a
            error = b - a
        return ResetDecision(
            clock_value=state.clock_value + offset,
            inherited_error=error,
            source=source,
        )
