"""Server-side Byzantine tolerance: FT-IM rounds, reputation, budgets.

The chaos suite's ``ByzantineReplies`` adversary (PR 1) showed plain
algorithm IM failing open the moment a neighbour lies; the crash-recovery
subsystem (PR 2) showed how durable state and a census repair crashes.
This package composes the two with the thesis's fault-tolerant
intersection:

* :mod:`repro.byzantine.reputation` — per-neighbour truechimer /
  falseticker reputation (EWMA with hysteresis) fed by every round's
  :class:`~repro.core.ft_im.FTRoundOutcome` classification and by reply
  validation failures;
* :mod:`repro.byzantine.budget` — the adaptive per-round fault budget
  ``f``: raised while ``2f < n`` when falsetickers are detected, decayed
  when rounds run clean;
* :mod:`repro.byzantine.server` — :class:`ByzantineTolerantServer`, a
  :class:`~repro.recovery.server.SelfStabilizingServer` that runs
  :class:`~repro.core.ft_im.FTIMPolicy`, demotes persistent falsetickers
  out of its poll set via the hardening health score, excludes them from
  recovery arbitration, and carries reputation through the PR-2
  checkpoint so a warm restart does not re-trust a known liar.
"""

from .budget import FaultBudgetConfig, FaultBudgetController
from .reputation import (
    NeighbourReputation,
    ReputationConfig,
    ReputationTracker,
)
from .server import ByzantineConfig, ByzantineStats, ByzantineTolerantServer

__all__ = [
    "ByzantineConfig",
    "ByzantineStats",
    "ByzantineTolerantServer",
    "FaultBudgetConfig",
    "FaultBudgetController",
    "NeighbourReputation",
    "ReputationConfig",
    "ReputationTracker",
]
