"""The adaptive per-round fault budget ``f``.

A fixed budget is either wasteful (tolerating faults that are not there
costs intersection tightness — Theorem 6's dominance shrinks as ``f``
grows) or insufficient (a second liar appears and the round collapses to
the plain fallback).  The controller follows the evidence:

* **raise** — when a round detects falsetickers beyond the current
  budget, or fails to find any tolerant intersection at all, the budget
  steps up; :meth:`FaultBudgetController.current` caps the effective
  value at ``(n - 1) // 2`` so ``2f < n`` always holds.
* **decay** — after ``decay_after`` consecutive clean rounds (tolerant,
  no falsetickers) the budget steps back down toward ``minimum``.
* **floor** — the owning server pins a temporary floor at the number of
  *known* (classified) falsetickers it is currently polling, so a probe
  round that readmits a benched liar is already budgeted for it.

The value survives a crash: it rides in the PR-2 checkpoint next to the
reputation blob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class FaultBudgetConfig:
    """Tuning knobs for the adaptive budget.

    Attributes:
        initial: Budget at start.
        minimum: Budget never decays below this.
        decay_after: Consecutive clean rounds before one decay step.
    """

    initial: int = 1
    minimum: int = 1
    decay_after: int = 4


@dataclass
class BudgetStats:
    """What the controller did (analysis and tests)."""

    raises: int = 0
    decays: int = 0


class FaultBudgetController:
    """Evidence-driven fault budget, pluggable into ``FTIMPolicy``.

    Exposes ``current(n_sources)`` — the protocol
    :class:`~repro.core.ft_im.FTIMPolicy` accepts as ``fault_budget``.

    Args:
        config: Tuning knobs; defaults to :class:`FaultBudgetConfig`.
    """

    def __init__(self, config: Optional[FaultBudgetConfig] = None) -> None:
        self.config = config if config is not None else FaultBudgetConfig()
        if self.config.minimum < 0 or self.config.initial < self.config.minimum:
            raise ValueError(
                f"need 0 <= minimum <= initial, got {self.config}"
            )
        self.value = self.config.initial
        self.stats = BudgetStats()
        self._clean_streak = 0
        self._floor = 0

    def current(self, n_sources: int) -> int:
        """The budget for a round of ``n_sources``, honouring ``2f < n``."""
        cap = max(0, (n_sources - 1) // 2)
        return min(max(self.value, self._floor), cap)

    def set_floor(self, known_falsetickers: int) -> None:
        """Pin a temporary floor (classified liars in this round's poll)."""
        self._floor = max(0, int(known_falsetickers))

    def note_round(
        self, *, falsetickers: int, tolerated: bool, n_sources: int
    ) -> None:
        """Fold in one completed round's outcome.

        Args:
            falsetickers: Sources the round classified incorrect (0 for a
                plain-fallback round — it classifies nothing).
            tolerated: Whether the round ended consistent (a tolerant
                intersection was accepted, or the plain fallback found
                unanimity).
            n_sources: Sources the round considered.
        """
        cap = max(0, (n_sources - 1) // 2)
        if not tolerated or falsetickers > self.value:
            # Evidence of more liars than budgeted: step up, jumping
            # straight to the observed falseticker count when larger.
            raised = min(max(self.value + 1, falsetickers), max(cap, self.config.minimum))
            if raised > self.value:
                self.value = raised
                self.stats.raises += 1
            self._clean_streak = 0
            return
        if falsetickers > 0:
            self._clean_streak = 0
            return
        self._clean_streak += 1
        if (
            self._clean_streak >= self.config.decay_after
            and self.value > self.config.minimum
        ):
            self.value -= 1
            self.stats.decays += 1
            self._clean_streak = 0
