"""Per-neighbour truechimer/falseticker reputation.

A single lying round proves little — honest servers look like
falsetickers for a round after a bad reset, and a liar may lie subtly
enough to survive one classification.  The tracker therefore smooths
per-round verdicts into an EWMA score per neighbour and classifies with
*hysteresis*: a neighbour becomes a falseticker only when its score falls
below ``falseticker_below`` (after ``min_observations`` verdicts) and is
rehabilitated only when the score climbs back above ``truechimer_above``.
Three kinds of evidence feed the score:

* a round's truechimer classification (score pulled toward 1),
* a round's falseticker classification (score pulled toward 0),
* a reply-validation failure (also toward 0 — a reply so broken it never
  reached the policy is at least as damning as a classified lie).

The tracker serialises to a compact string so
:class:`~repro.recovery.store.Checkpoint` can carry it across a crash:
a warm-restarted server remembers who was lying before it went down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ReputationConfig:
    """Tuning knobs for the reputation tracker.

    Attributes:
        alpha: EWMA gain per observation.
        falseticker_below: Classify as falseticker when the score drops
            below this (with enough observations).
        truechimer_above: Rehabilitate when the score climbs above this —
            the gap to ``falseticker_below`` is the hysteresis band.
        min_observations: Verdicts required before any classification
            (protects a freshly-met neighbour from one unlucky round).
        initial_score: Score a neighbour starts from (trusted).
    """

    alpha: float = 0.35
    falseticker_below: float = 0.35
    truechimer_above: float = 0.6
    min_observations: int = 3
    initial_score: float = 1.0


@dataclass
class NeighbourReputation:
    """Mutable reputation record for one neighbour.

    Attributes:
        score: EWMA of verdicts in ``[0, 1]`` (1 = always truechimer).
        observations: Total verdicts folded in.
        classified_falseticker: Current classification.
        truechimer_rounds: Rounds this neighbour was judged correct.
        falseticker_rounds: Rounds it was judged incorrect.
        validation_failures: Replies rejected before reaching the policy.
    """

    score: float = 1.0
    observations: int = 0
    classified_falseticker: bool = False
    truechimer_rounds: int = 0
    falseticker_rounds: int = 0
    validation_failures: int = 0


class ReputationTracker:
    """EWMA-with-hysteresis reputation over round classifications.

    Args:
        config: Tuning knobs; defaults to :class:`ReputationConfig`.
    """

    def __init__(self, config: Optional[ReputationConfig] = None) -> None:
        self.config = config if config is not None else ReputationConfig()
        self.records: Dict[str, NeighbourReputation] = {}

    def record(self, name: str) -> NeighbourReputation:
        """The (created-on-demand) record for ``name``."""
        if name not in self.records:
            self.records[name] = NeighbourReputation(
                score=self.config.initial_score
            )
        return self.records[name]

    # ------------------------------------------------------------- evidence

    def observe_truechimer(self, name: str) -> bool:
        """Fold in a truechimer verdict; True if classification changed."""
        record = self.record(name)
        record.truechimer_rounds += 1
        return self._update(record, 1.0)

    def observe_falseticker(self, name: str) -> bool:
        """Fold in a falseticker verdict; True if classification changed."""
        record = self.record(name)
        record.falseticker_rounds += 1
        return self._update(record, 0.0)

    def observe_validation_failure(self, name: str) -> bool:
        """Fold in a rejected reply; True if classification changed."""
        record = self.record(name)
        record.validation_failures += 1
        return self._update(record, 0.0)

    def _update(self, record: NeighbourReputation, verdict: float) -> bool:
        alpha = self.config.alpha
        record.score = record.score * (1.0 - alpha) + alpha * verdict
        record.observations += 1
        before = record.classified_falseticker
        if record.observations >= self.config.min_observations:
            if record.score < self.config.falseticker_below:
                record.classified_falseticker = True
            elif record.score > self.config.truechimer_above:
                record.classified_falseticker = False
        return record.classified_falseticker != before

    # -------------------------------------------------------------- queries

    def is_falseticker(self, name: str) -> bool:
        """Whether ``name`` is currently classified a falseticker."""
        record = self.records.get(name)
        return record is not None and record.classified_falseticker

    def falsetickers(self) -> Tuple[str, ...]:
        """Sorted names currently classified falsetickers."""
        return tuple(
            sorted(
                name
                for name, record in self.records.items()
                if record.classified_falseticker
            )
        )

    # -------------------------------------------------- checkpoint plumbing

    def encode(self) -> str:
        """Serialise for the stable-store checkpoint.

        The blob must not contain ``|`` (the checkpoint field separator):
        records are ``;``-joined, fields ``,``-joined.
        """
        return ";".join(
            f"{name},{record.score!r},{record.observations},"
            f"{int(record.classified_falseticker)}"
            for name, record in sorted(self.records.items())
        )

    def restore(self, blob: str) -> None:
        """Inverse of :meth:`encode`; replaces the current records.

        Raises:
            ValueError: On a malformed blob (a corrupted checkpoint that
                still checksummed is caught here, like
                :meth:`~repro.recovery.store.Checkpoint.decode`).
        """
        records: Dict[str, NeighbourReputation] = {}
        if blob:
            for chunk in blob.split(";"):
                parts = chunk.split(",")
                if len(parts) != 4:
                    raise ValueError(f"malformed reputation blob: {blob!r}")
                name, score, observations, flag = parts
                records[name] = NeighbourReputation(
                    score=float(score),
                    observations=int(observations),
                    classified_falseticker=bool(int(flag)),
                )
        self.records = records
