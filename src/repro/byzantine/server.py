"""The Byzantine-tolerant time server.

:class:`ByzantineTolerantServer` is a
:class:`~repro.recovery.server.SelfStabilizingServer` (checkpointing,
census, merge epochs) whose synchronization policy is expected to be an
:class:`~repro.core.ft_im.FTIMPolicy`.  On top of the recovery stack it
adds the full liar-handling loop:

* **Round classification → reputation** — every FT-IM round's
  truechimer/falseticker split feeds the
  :class:`~repro.byzantine.reputation.ReputationTracker`; persistent
  falsetickers are *demoted from the poll set* through the hardening
  subsystem's :class:`~repro.service.hardening.NeighbourHealth` score and
  quarantine machinery (with its starvation guard and cooldown-probing),
  and their census verdicts are overwritten with the classification so
  liars lose recovery-arbiter support service-wide.
* **Reply validation → reputation** — the hardened sanity checks plus
  the rule MM-1 error-physics clamp run on every reply; each rejection
  counts against the sender's reputation.
* **Adaptive fault budget** — when the policy's budget is a
  :class:`~repro.byzantine.budget.FaultBudgetController`, round outcomes
  drive it (raise on detected liars, decay on clean rounds) and the poll
  set pins its floor at the number of classified liars being probed.
* **Recovery exclusion** — :meth:`falseticker_neighbours` feeds the
  stabilizer's arbiter veto, and classified liars widen the conflicting
  set exactly like dissonant neighbours do.
* **Durable reputation** — the reputation blob and budget ride in every
  checkpoint; a warm restart restores them, so a revived server does not
  re-trust a known liar (nor pick one as its rejoin arbiter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.ft_im import FTIMPolicy, FTRoundOutcome
from ..recovery.server import SelfStabilizingServer
from ..recovery.store import Checkpoint
from ..service.hardening import (
    NeighbourHealth,
    QuarantinePolicy,
    quarantine_poll_filter,
    reply_sanity_rejection,
)
from ..service.messages import TimeReply
from ..service.server import _PollRound
from .budget import FaultBudgetController
from .reputation import ReputationConfig, ReputationTracker


@dataclass(frozen=True)
class ByzantineConfig:
    """Knobs for the Byzantine-tolerance layer.

    Attributes:
        reputation: Reputation tracker tuning.
        quarantine: Health/demotion policy — reuses the hardening
            subsystem's machinery; the defaults quarantine a persistent
            liar after roughly three bad rounds and probe it back in
            after ``cooldown`` seconds.
        validate: Run the hardened reply sanity checks.
        max_error: Largest believable ``E_j`` (see
            :class:`~repro.service.hardening.HardeningConfig`).
        plausibility_slack: Plausibility margin (same).
        error_physics: Enforce the rule MM-1 growth clamp.
    """

    reputation: ReputationConfig = field(default_factory=ReputationConfig)
    quarantine: QuarantinePolicy = field(default_factory=QuarantinePolicy)
    validate: bool = True
    max_error: float = 3600.0
    plausibility_slack: float = 0.5
    error_physics: bool = True


@dataclass
class ByzantineStats:
    """Counters the Byzantine layer adds (analysis and tests)."""

    tolerant_rounds: int = 0
    plain_rounds: int = 0
    falseticker_observations: int = 0
    validation_rejections: int = 0
    demotions: int = 0
    starvation_overrides: int = 0


@dataclass(frozen=True)
class DemotionEvent:
    """One neighbour's demotion from the poll set.

    Attributes:
        at: Real time of the demotion.
        neighbour: Who was demoted.
    """

    at: float
    neighbour: str


class ByzantineTolerantServer(SelfStabilizingServer):
    """A self-stabilizing server that tolerates, detects and benches liars.

    Accepts all :class:`~repro.recovery.server.SelfStabilizingServer`
    arguments plus:

    Args:
        byzantine: The tolerance-layer knobs; defaults to
            :class:`ByzantineConfig`'s defaults.

    The synchronization policy should be a per-server
    :class:`~repro.core.ft_im.FTIMPolicy`; when its ``fault_budget`` is a
    :class:`~repro.byzantine.budget.FaultBudgetController` the server
    adopts and drives it.  Any other batch policy still works — the
    server then only gets validation-based (not classification-based)
    reputation evidence.
    """

    def __init__(
        self,
        *args,
        byzantine: Optional[ByzantineConfig] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.byzantine = byzantine if byzantine is not None else ByzantineConfig()
        self.reputation = ReputationTracker(self.byzantine.reputation)
        self.byzantine_stats = ByzantineStats()
        self.health: Dict[str, NeighbourHealth] = {}
        self.demotion_log: List[DemotionEvent] = []
        controller = None
        if isinstance(self.policy, FTIMPolicy) and isinstance(
            self.policy.fault_budget, FaultBudgetController
        ):
            controller = self.policy.fault_budget
        self.budget_controller = controller

    # --------------------------------------------------------------- health

    def _health(self, name: str) -> NeighbourHealth:
        if name not in self.health:
            self.health[name] = NeighbourHealth()
        return self.health[name]

    def quarantined_peers(self) -> List[str]:
        """Neighbours currently demoted from the poll set."""
        return sorted(
            name
            for name, record in self.health.items()
            if record.is_quarantined(self.now)
        )

    def _note_demotion(self, name: str) -> None:
        self.byzantine_stats.demotions += 1
        self.demotion_log.append(DemotionEvent(at=self.now, neighbour=name))
        self._trace("demote", server=name)
        self.telemetry.demotion(self.now, name)

    def falseticker_neighbours(self) -> tuple[str, ...]:
        return self.reputation.falsetickers()

    # ------------------------------------------------------- poll targeting

    def _poll_targets(self) -> list[str]:
        neighbours = super()._poll_targets()
        active, readmitted = quarantine_poll_filter(
            neighbours, self._health, self.now, self.byzantine.quarantine
        )
        self.byzantine_stats.starvation_overrides += len(readmitted)
        if self.budget_controller is not None:
            # Classified liars still being polled (probation probes or
            # pre-demotion rounds) are *known* faults: budget for them
            # before the round even runs.
            known = sum(
                1 for name in active if self.reputation.is_falseticker(name)
            )
            self.budget_controller.set_floor(known)
        return active

    # ----------------------------------------------------------- validation

    def _validate_reply(self, reply: TimeReply) -> Optional[str]:
        cfg = self.byzantine
        reason: Optional[str] = None
        if cfg.validate:
            value, error = self.report()
            reason = reply_sanity_rejection(
                reply,
                local_value=value,
                local_error=error,
                delta=self.delta,
                xi=self.network.xi,
                max_error=cfg.max_error,
                plausibility_slack=cfg.plausibility_slack,
            )
        if reason is None and cfg.error_physics:
            reason = self._error_physics_rejection(reply)
        if reason is not None:
            self.byzantine_stats.validation_rejections += 1
            self.reputation.observe_validation_failure(reply.server)
            if self._health(reply.server).record_invalid(
                self.now, cfg.quarantine
            ):
                self._note_demotion(reply.server)
        return reason

    # ------------------------------------------------------- round feedback

    def _on_round_closed(self, round_: _PollRound) -> None:
        super()._on_round_closed(round_)
        quarantine = self.byzantine.quarantine
        for name in sorted(round_.outstanding | round_.unsent):
            if self._health(name).record_timeout(self.now, quarantine):
                self._note_demotion(name)

    def _on_round_outcome(self, outcome) -> None:
        super()._on_round_outcome(outcome)
        if not isinstance(outcome, FTRoundOutcome):
            return
        if outcome.mode == "tolerant":
            self.byzantine_stats.tolerant_rounds += 1
        else:
            self.byzantine_stats.plain_rounds += 1
        quarantine = self.byzantine.quarantine
        now_local = self.clock_value()
        for name in outcome.truechimers:
            self.reputation.observe_truechimer(name)
            self._health(name).record_good(quarantine)
        for name in outcome.falsetickers:
            self.byzantine_stats.falseticker_observations += 1
            if self.reputation.observe_falseticker(name):
                if self.reputation.is_falseticker(name):
                    self._trace("falseticker", server=name)
            if self._health(name).record_inconsistent(self.now, quarantine):
                self._note_demotion(name)
            # Classification outranks the per-reply transit check the
            # census already recorded: a tolerated liar's reply can still
            # overlap the local interval, but the round-level majority
            # judged it wrong — make the census agree so the liar loses
            # recovery-arbiter support everywhere the verdict gossips.
            self.census.observe(name, False, now_local)
        if self.budget_controller is not None:
            # A consistent plain round with a zero cap (too few sources
            # for any tolerance) is genuinely clean, not a failure.
            tolerated = outcome.consistent and (
                outcome.mode == "tolerant" or outcome.fault_budget == 0
            )
            self.budget_controller.note_round(
                falsetickers=len(outcome.falsetickers),
                tolerated=tolerated,
                n_sources=outcome.n_sources,
            )

    # --------------------------------------------------- recovery exclusion

    def _note_inconsistency(self, conflicting: tuple[str, ...]) -> None:
        flagged = tuple(
            name
            for name in self.reputation.falsetickers()
            if name != self.name
        )
        benched = tuple(self.quarantined_peers())
        conflicting = tuple(
            dict.fromkeys(tuple(conflicting) + flagged + benched)
        )
        super()._note_inconsistency(conflicting)

    # ------------------------------------------------- durable reputation

    def _checkpoint_extras(self) -> dict:
        extras = dict(super()._checkpoint_extras())
        extras["reputation"] = self.reputation.encode()
        extras["fault_budget"] = (
            self.budget_controller.value
            if self.budget_controller is not None
            else 0
        )
        return extras

    def _restore_checkpoint_extras(self, checkpoint: Checkpoint) -> None:
        super()._restore_checkpoint_extras(checkpoint)
        try:
            self.reputation.restore(checkpoint.reputation)
        except ValueError:
            # A checkpoint that decoded but carries a garbled blob: start
            # reputation fresh rather than fail the whole warm restart.
            self.reputation = ReputationTracker(self.byzantine.reputation)
        if self.budget_controller is not None and checkpoint.fault_budget > 0:
            self.budget_controller.value = max(
                self.budget_controller.config.minimum, checkpoint.fault_budget
            )
