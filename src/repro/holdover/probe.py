"""A monotonicity oracle: fine-grained clock sampling across a service.

The safety rails' headline promise is that a server's *served* time never
runs backward — backward corrections are slewed, never stepped.  The
gauntlet (and the property tests) verify the promise with this probe: a
simulation process that reads every server's clock on a grid much finer
than the poll period and counts strict decreases.

The probe reads through :meth:`~repro.service.server.TimeServer.
clock_value`, i.e. exactly what a request would be answered with, so a
violation here is a violation a client could observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..simulation.process import SimProcess

__all__ = ["MonotonicityProbe"]


@dataclass
class MonotonicityViolation:
    """One observed backward step of a served clock."""

    server: str
    at: float
    before: float
    after: float


@dataclass
class _Track:
    last: float
    violations: List[MonotonicityViolation] = field(default_factory=list)


class MonotonicityProbe(SimProcess):
    """Samples every server's served clock on a fine grid.

    Args:
        engine: The simulation engine.
        servers: Name → server mapping (the service's ``servers`` dict).
        period: Sampling period; make it much smaller than τ so resets
            between polls cannot hide a dip.
    """

    def __init__(self, engine, servers, *, period: float = 1.0) -> None:
        super().__init__(engine, "monotonicity-probe")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.servers = servers
        self.period = period
        self._tracks: Dict[str, _Track] = {}

    def on_start(self) -> None:
        self.every(self.period, self._sample, first_at=self.now + self.period)

    def _sample(self) -> None:
        for name, server in self.servers.items():
            if server.departed:
                # A departed clock is unserved; re-baseline on return so
                # the crash window itself is never scored.
                self._tracks.pop(name, None)
                continue
            value = server.clock_value()
            track = self._tracks.get(name)
            if track is None:
                self._tracks[name] = _Track(last=value)
                continue
            if value < track.last:
                track.violations.append(
                    MonotonicityViolation(
                        server=name, at=self.now, before=track.last, after=value
                    )
                )
            track.last = value

    # -------------------------------------------------------------- results

    @property
    def violations(self) -> List[MonotonicityViolation]:
        """Every backward step seen, across all servers, in sample order."""
        out: List[MonotonicityViolation] = []
        for name in sorted(self._tracks):
            out.extend(self._tracks[name].violations)
        return out

    def counts(self) -> Dict[str, int]:
        """Violations per server (servers with zero included)."""
        return {
            name: len(track.violations)
            for name, track in sorted(self._tracks.items())
        }

    def total(self) -> int:
        """Total violations across the service (the gauntlet's must-be-0)."""
        return sum(len(track.violations) for track in self._tracks.values())


def summarize(probe: MonotonicityProbe) -> Tuple[int, Dict[str, int]]:
    """(total, per-server) convenience for reports."""
    return probe.total(), probe.counts()
