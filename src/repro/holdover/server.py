"""The holdover-capable server: discipline + recovery + safety rails.

:class:`HoldoverServer` is the integration point of the clock-safety
subsystem.  It multiply inherits the two towers grown by earlier
subsystems —

* :class:`~repro.service.discipline.DiscipliningServer` (Section 5
  consonance rate servo over a rate-adjustable clock), and
* :class:`~repro.recovery.server.SelfStabilizingServer` (durable
  checkpoints, consistency census, merge epochs)

— and wires both to a :class:`~repro.clocks.slewing.SlewingClock` over a
:class:`~repro.clocks.disciplined.DisciplinedClock` plus a
:class:`~repro.holdover.controller.HoldoverController`:

* **Round-source accounting.**  Every poll round reports how many valid
  sources it produced (watermarked stats deltas — robust to both
  incremental MM and batch IM policies) to the controller, which decides
  SYNCED/HOLDOVER/DEGRADED/REINTEGRATING.
* **Reset suppression = staged reintegration.**  While the controller is
  not ``SYNCED``, sync and recovery resets are *suppressed* (counted and
  traced, never applied): the first ``reintegrate_rounds`` consistent
  rounds after a blackout re-validate the sources without trusting them,
  and rule MM-1 keeps the claimed interval correct throughout because
  ``E`` never stopped growing at the claimed ``δ``.  The first round
  after returning to ``SYNCED`` adopts normally — through the slewing
  rail, so the accumulated offset drains without a monotonicity break.
* **Safety rails.**  Insane resets (beyond the clock's sanity bound) are
  refused *before* any server bookkeeping runs — ``ε``, ``r_i``, the
  merge epoch and the raw-timescale adjustment all stay untouched — and
  counted.  Accepted slewed resets widen ``ε`` by the still-draining
  remainder, since the reading has not yet reached the adopted target.
* **Discipline freeze.**  The rate servo only steps while ``SYNCED`` and
  not mid-slew (a draining offset would bias every rate estimate); in
  holdover the last disciplined correction is the oscillator model.
* **Degraded refusal.**  Past the trust horizon, client requests get a
  ``BUSY`` reply with a retry hint.  Poll and recovery requests are
  still answered — MM-1 keeps them correct, and an all-degraded
  neighbourhood must be able to bootstrap its own reintegration.
* **Discipline persistence.**  The rate correction and the per-neighbour
  rate-estimator windows ride the PR-2 checkpoint (``discipline`` field);
  a crash loses RAM and the kernel frequency word (modelled by zeroing
  both), and a warm restart re-applies them, resuming holdover-quality
  timekeeping instead of relearning the oscillator from scratch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.consonance import RateEstimator, RateObservation
from ..recovery.server import SelfStabilizingServer
from ..recovery.store import Checkpoint
from ..service.discipline import DiscipliningServer
from ..service.messages import ReplyStatus, RequestKind, TimeReply, TimeRequest
from ..telemetry.registry import CounterBackedStats, CounterField
from .controller import HoldoverConfig, HoldoverController, HoldoverState

__all__ = ["HoldoverServer", "HoldoverStats"]

#: Characters the discipline checkpoint blob reserves as separators.
_RESERVED = set("|~:;,")


class HoldoverStats(CounterBackedStats):
    """Safety-rail counters (registry-backed; see ``docs/observability.md``)."""

    prefix = "repro_"

    insane_resets = CounterField(
        "Resets refused outright for exceeding the sanity bound"
    )
    suppressed_resets = CounterField(
        "Resets suppressed while not SYNCED (staged reintegration)"
    )
    holdover_entries = CounterField("Transitions into HOLDOVER from SYNCED")
    degraded_transitions = CounterField(
        "Watchdog transitions HOLDOVER -> DEGRADED (trust horizon exceeded)"
    )
    reintegrations = CounterField(
        "Completed reintegrations (REINTEGRATING -> SYNCED)"
    )
    degraded_refusals = CounterField(
        "Client requests refused with BUSY while DEGRADED"
    )


class HoldoverServer(DiscipliningServer, SelfStabilizingServer):
    """A disciplined, self-stabilizing server with holdover + slew rails.

    Accepts all :class:`DiscipliningServer` and
    :class:`SelfStabilizingServer` arguments plus:

    Args:
        holdover: The holdover/safety-rail configuration (None uses
            :class:`HoldoverConfig` defaults).  The slew-rail knobs in it
            are consumed by the builder when it constructs the clock
            stack; this class only requires the clock it is handed to
            *have* the rails.

    Raises:
        TypeError: If the clock lacks the slewing-rail surface
            (``sanity_bound``/``slew_remaining``/``slewed_out``) — wrap
            it in a :class:`~repro.clocks.slewing.SlewingClock`.
    """

    def __init__(
        self,
        *args,
        holdover: Optional[HoldoverConfig] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        for attr in ("sanity_bound", "slew_remaining", "slewed_out", "slewing"):
            if not hasattr(self.clock, attr):
                raise TypeError(
                    "HoldoverServer requires a clock with slewing rails "
                    f"(SlewingClock); {type(self.clock).__name__} has no "
                    f"{attr!r}"
                )
        self.holdover_config = (
            holdover if holdover is not None else HoldoverConfig()
        )
        self.holdover = HoldoverController(self.holdover_config)
        self.holdover.reanchor(self.clock.read(self.now))
        self.holdover_stats = HoldoverStats(self.telemetry.stats_registry())
        # (round_id, replies_handled, inconsistencies) at round start.
        self._source_watermark: Optional[tuple[int, int, int]] = None

    # ------------------------------------------------------------ lifecycle

    def on_start(self) -> None:
        super().on_start()
        period = self.tau if self.tau is not None else 60.0
        self.every(period, self._holdover_tick, first_at=self.now + period)

    def rejoin(self, initial_error: float) -> None:
        was_departed = self.departed
        super().rejoin(initial_error)
        if was_departed and not self.departed:
            # The downtime gap must not read as a source blackout.
            self.holdover.reanchor(self.clock.read(self.now))

    def restart(self, cold_error: float):
        if not self.departed:
            return None
        # A crash loses RAM and the kernel frequency word: zero the rate
        # correction and drop the estimator windows *before* the warm
        # path re-applies whatever the checkpoint preserved.
        self.clock.adjust_rate(self.now, 0.0)
        self._estimators.clear()
        self._remote_delta.clear()
        return super().restart(cold_error)

    # ---------------------------------------------------------- observation

    @property
    def holdover_state(self) -> HoldoverState:
        """The controller's current state (for telemetry and tests)."""
        return self.holdover.state

    def holdover_age_now(self) -> float:
        """Local seconds since holdover began (0.0 while SYNCED)."""
        return self.holdover.holdover_age(self.clock_value())

    def expected_true_error(self) -> float:
        """The consonance-backed expected true error (not the claimed E)."""
        return self.holdover.expected_error(self.clock_value())

    def effective_drift_estimate(self) -> float:
        """Median measured |separation rate| over consonant neighbours.

        With the servo converged this is the residual drift of the
        *disciplined* oscillator — the right rate for projecting expected
        true error through a blackout.  Falls back to the claimed ``δ``
        when no estimator has produced anything yet; the controller
        floors the result at ``drift_floor`` either way.
        """
        rates = [
            abs(report.estimate.rate)
            for report in self.rate_reports().values()
            if report.estimate is not None and report.consonant is not False
        ]
        if not rates:
            return self.delta
        return float(np.median(rates))

    # ------------------------------------------------------------ raw time

    def _raw_adjustment(self) -> float:
        # Gradually-drained slew corrections move the reading without a
        # reset's before/after jump; fold them into the raw timescale so
        # the rate estimators keep seeing the free-running oscillator.
        return self._cumulative_adjustment + self.clock.slewed_out

    # ------------------------------------------------------- state machine

    def _drive(self, fn) -> None:
        """Run a controller mutation, then trace/count any transition."""
        before = self.holdover.state
        fn()
        after = self.holdover.state
        if after is before:
            return
        if after is HoldoverState.HOLDOVER and before is HoldoverState.SYNCED:
            self.holdover_stats.holdover_entries += 1
        elif after is HoldoverState.DEGRADED:
            self.holdover_stats.degraded_transitions += 1
        elif after is HoldoverState.SYNCED:
            self.holdover_stats.reintegrations += 1
        self._trace(
            "holdover",
            state=after.name,
            prev=before.name,
            age=self.holdover.holdover_age(self.clock_value()),
        )

    def _holdover_tick(self) -> None:
        now_local = self.clock_value()
        self._drive(
            lambda: self.holdover.tick(
                now_local,
                error=self.error(),
                drift=self.effective_drift_estimate(),
            )
        )

    def _on_round_started(self, round_) -> None:
        super()._on_round_started(round_)
        self._source_watermark = (
            round_.round_id,
            self.stats.replies_handled,
            self.stats.inconsistencies,
        )

    def _complete_round(self, round_) -> None:
        if round_.closed:
            return
        watermark = self._source_watermark
        super()._complete_round(round_)
        # Watermark deltas: valid replies and inconsistencies attributable
        # to exactly this round, whether the policy acted incrementally
        # (MM, during _handle_reply) or at close (IM, inside super above).
        # Rounds that closed at start (nothing reachable) carry no
        # watermark and correctly report zero sources.
        sources = 0
        inconsistencies = 0
        if watermark is not None and watermark[0] == round_.round_id:
            sources = self.stats.replies_handled - watermark[1]
            inconsistencies = self.stats.inconsistencies - watermark[2]
            self._source_watermark = None
        now_local = self.clock_value()
        self._drive(
            lambda: self.holdover.note_round(
                now_local,
                sources=sources,
                consistent=(sources > 0 and inconsistencies == 0),
                error=self.error(),
                drift=self.effective_drift_estimate(),
            )
        )

    # ------------------------------------------------------------ discipline

    def _discipline_step(self) -> None:
        if self.holdover.state is not HoldoverState.SYNCED:
            return  # holdover freezes the servo at its last correction
        if self.clock.slewing:
            return  # a draining offset would bias every rate estimate
        super()._discipline_step()

    # ---------------------------------------------------------------- resets

    def _apply_reset(self, decision, kind: str) -> None:
        if kind in ("sync", "recovery"):
            current = self.clock.read(self.now)
            if abs(decision.clock_value - current) > self.clock.sanity_bound:
                # Refused before any bookkeeping: ε, r_i, the epoch and
                # the raw-timescale adjustment all stay untouched.  The
                # clock still sees the set so its own rail counter trips.
                self.clock.set(self.now, decision.clock_value)
                self.holdover_stats.insane_resets += 1
                self._trace(
                    "reset_refused",
                    from_server=decision.source,
                    new_value=decision.clock_value,
                    reset_kind=kind,
                )
                return
            if self.holdover.state is not HoldoverState.SYNCED:
                # Staged reintegration: re-validate before trusting.  The
                # claimed interval stays correct (MM-1 growth never
                # paused), so skipping the adoption loses accuracy only.
                self.holdover_stats.suppressed_resets += 1
                self._trace(
                    "reset_suppressed",
                    from_server=decision.source,
                    reset_kind=kind,
                    state=self.holdover.state.name,
                )
                return
        super()._apply_reset(decision, kind)
        pending = self.clock.slew_remaining
        if pending != 0.0:
            # The reading sits |pending| short of the adopted target
            # until the slew drains; widen ε so the interval still
            # contains true time throughout the drain.
            self._epsilon += abs(pending)

    # ---------------------------------------------------------------- serving

    def _answer(self, request: TimeRequest) -> None:
        if (
            self.holdover.state is HoldoverState.DEGRADED
            and request.kind is RequestKind.CLIENT
        ):
            # Past the trust horizon the oscillator model is no longer
            # trusted for clients; polls/recovery stay answered (MM-1
            # keeps those replies correct, and an all-degraded
            # neighbourhood must still be able to reintegrate).
            self.holdover_stats.degraded_refusals += 1
            retry = self.holdover_config.retry_after or (self.tau or 60.0)
            self.network.send(
                self.name,
                request.origin,
                TimeReply(
                    request_id=request.request_id,
                    server=self.name,
                    destination=request.origin,
                    clock_value=0.0,
                    error=0.0,
                    kind=request.kind,
                    delta=self.delta,
                    status=ReplyStatus.BUSY,
                    retry_after=retry,
                ),
            )
            return
        super()._answer(request)

    # ---------------------------------------------------- discipline persist

    def _checkpoint_extras(self) -> dict:
        extras = super()._checkpoint_extras()
        extras["discipline"] = self._encode_discipline()
        return extras

    def _encode_discipline(self) -> str:
        """Serialise the servo state into the checkpoint's blob field.

        ``correction~name:delta:t,o,e;t,o,e~name:...`` — none of the
        separators may appear in a float ``repr``, and neighbours whose
        names collide with them are skipped rather than corrupting the
        record.
        """
        parts = [repr(float(self.clock.correction))]
        for name in sorted(self._estimators):
            if _RESERVED & set(name):
                continue
            estimator = self._estimators[name]
            observations = ";".join(
                f"{o.local_time!r},{o.offset!r},{o.reading_error!r}"
                for o in estimator._obs
            )
            delta = self._remote_delta.get(name, 0.0)
            parts.append(f"{name}:{delta!r}:{observations}")
        return "~".join(parts)

    def _restore_checkpoint_extras(self, checkpoint: Checkpoint) -> None:
        super()._restore_checkpoint_extras(checkpoint)
        blob = getattr(checkpoint, "discipline", "")
        if not blob:
            return
        try:
            self._decode_discipline(blob)
        except (ValueError, IndexError):
            # A garbled extras field never blocks the warm restart — the
            # MM-1 core state was already validated by the store's CRC;
            # the servo just relearns.
            self.clock.adjust_rate(self.now, 0.0)
            self._estimators.clear()
            self._remote_delta.clear()

    def _decode_discipline(self, blob: str) -> None:
        parts = blob.split("~")
        correction = float(parts[0])
        self.clock.adjust_rate(self.now, correction)
        for entry in parts[1:]:
            name, delta_text, observations = entry.split(":", 2)
            estimator = RateEstimator(
                window=self._rate_window, min_span=self._rate_min_span
            )
            if observations:
                for triple in observations.split(";"):
                    t_text, o_text, e_text = triple.split(",")
                    estimator.add(
                        RateObservation(
                            local_time=float(t_text),
                            offset=float(o_text),
                            reading_error=float(e_text),
                        )
                    )
            self._estimators[name] = estimator
            self._remote_delta[name] = float(delta_text)
