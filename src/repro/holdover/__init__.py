"""Holdover mode and clock-safety rails.

What a time server *is* when its sources vanish: an explicit
SYNCED → HOLDOVER → DEGRADED → REINTEGRATING → SYNCED state machine
(:mod:`repro.holdover.controller`), a server integrating it with the
discipline servo, the recovery subsystem and a slewing clock
(:mod:`repro.holdover.server`), and a fine-grained monotonicity oracle
(:mod:`repro.holdover.probe`).  See ``docs/holdover.md``.
"""

from .controller import HoldoverConfig, HoldoverController, HoldoverState
from .probe import MonotonicityProbe, MonotonicityViolation
from .server import HoldoverServer, HoldoverStats

__all__ = [
    "HoldoverConfig",
    "HoldoverController",
    "HoldoverServer",
    "HoldoverState",
    "HoldoverStats",
    "MonotonicityProbe",
    "MonotonicityViolation",
]
