"""The holdover state machine: what a server *is* when its sources vanish.

The paper is blunt about blackout: "a time service cannot remain correct
with respect to the standard without some communication with it" — rule
MM-1 keeps the *claimed* interval correct by growing ``E`` at the claimed
``δ`` forever, but a production service must also know when its time has
degraded past usefulness and say so.  This module models that judgement as
an explicit four-state machine, driven entirely by local-clock time (no
oracle access):

``SYNCED``
    Sources answered recently; the discipline servo runs.
``HOLDOVER``
    No valid source for at least ``no_source_window`` local seconds.  The
    rate correction is frozen at its last disciplined value (the best
    available oscillator model), claimed ``E`` keeps growing per MM-1, and
    :meth:`HoldoverController.expected_error` tracks the *expected true*
    error from the consonance-backed effective drift captured at entry
    (floored at ``drift_floor`` — a disciplined oscillator is never
    credited with being perfect).
``DEGRADED``
    Holdover age exceeded ``trust_horizon``: the watchdog no longer
    trusts the oscillator model.  Client requests are refused (BUSY);
    poll/recovery requests are still answered, because MM-1 keeps those
    replies correct and an all-degraded neighbourhood must still be able
    to bootstrap reintegration.
``REINTEGRATING``
    Sources are answering again, but after a blackout the first replies
    are not trusted: ``reintegrate_rounds`` *consecutive consistent*
    rounds must be observed (resets stay suppressed) before the server
    returns to ``SYNCED`` and adopts a correction — which the slewing
    clock then amortises without a monotonicity break.

The controller is deliberately free of engine and clock dependencies —
every method takes the caller's current local-clock reading — so it is
unit-testable as a pure state machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["HoldoverConfig", "HoldoverController", "HoldoverState"]


class HoldoverState(enum.IntEnum):
    """Discipline/trust state of one server's time value.

    An ``IntEnum`` so the telemetry gauge ``repro_holdover_state`` can
    export it directly (0 = SYNCED … 3 = REINTEGRATING).
    """

    SYNCED = 0
    HOLDOVER = 1
    DEGRADED = 2
    REINTEGRATING = 3


@dataclass(frozen=True)
class HoldoverConfig:
    """Knobs for the holdover machine and the slewing safety rails.

    Attributes:
        no_source_window: Local-clock seconds without a single valid poll
            source before ``SYNCED`` gives way to ``HOLDOVER``.
        trust_horizon: Holdover age (local seconds since entry) beyond
            which the watchdog forces ``DEGRADED``.
        reintegrate_rounds: Consecutive consistent rounds required in
            ``REINTEGRATING`` before the server trusts its sources again.
        drift_floor: Minimum effective drift credited to the disciplined
            oscillator when projecting expected true error in holdover —
            an uncertainty floor, since a finite estimation window can
            never certify a zero residual.
        slew_rate: The :class:`~repro.clocks.slewing.SlewingClock` drain
            rate (seconds of correction per local second).
        panic_threshold: Forward corrections beyond this are stepped
            instantly instead of slewed.
        sanity_bound: Corrections beyond this are refused outright and
            counted as insane resets.
        retry_after: Back-off hint attached to DEGRADED client refusals
            (0 lets the server default to its poll period).
    """

    no_source_window: float = 150.0
    trust_horizon: float = 1800.0
    reintegrate_rounds: int = 3
    drift_floor: float = 1e-6
    slew_rate: float = 5e-3
    panic_threshold: float = 0.5
    sanity_bound: float = 1000.0
    retry_after: float = 0.0

    def __post_init__(self) -> None:
        if self.no_source_window <= 0:
            raise ValueError(
                f"no_source_window must be positive, got {self.no_source_window}"
            )
        if self.trust_horizon <= 0:
            raise ValueError(
                f"trust_horizon must be positive, got {self.trust_horizon}"
            )
        if self.reintegrate_rounds < 1:
            raise ValueError(
                f"reintegrate_rounds must be >= 1, got {self.reintegrate_rounds}"
            )
        if self.drift_floor < 0:
            raise ValueError(
                f"drift_floor must be non-negative, got {self.drift_floor}"
            )


@dataclass
class HoldoverController:
    """The per-server holdover state machine (pure; local time in, state out).

    Attributes:
        config: The machine's thresholds.
        state: Current :class:`HoldoverState`.
        transitions: Every transition taken, as
            ``(local_time, from_state, to_state, reason)`` — the server
            traces these and tests assert on them.
    """

    config: HoldoverConfig
    state: HoldoverState = HoldoverState.SYNCED
    transitions: List[Tuple[float, HoldoverState, HoldoverState, str]] = field(
        default_factory=list
    )
    _last_source_local: float = 0.0
    _holdover_started_local: Optional[float] = None
    _entry_error: float = 0.0
    _effective_drift: float = 0.0
    _streak: int = 0

    # ------------------------------------------------------------- queries

    def holdover_age(self, now_local: float) -> float:
        """Local seconds since holdover began (0.0 while ``SYNCED``).

        The clock keeps ticking through ``DEGRADED`` and
        ``REINTEGRATING`` — the age measures time since sources were last
        *trusted*, which only a return to ``SYNCED`` resets.
        """
        if self._holdover_started_local is None:
            return 0.0
        return max(0.0, now_local - self._holdover_started_local)

    def since_last_source(self, now_local: float) -> float:
        """Local seconds since a round last produced a valid source."""
        return max(0.0, now_local - self._last_source_local)

    @property
    def effective_drift(self) -> float:
        """The drift rate used to project expected true error in holdover."""
        return self._effective_drift

    @property
    def reintegration_streak(self) -> int:
        """Consecutive consistent rounds observed while ``REINTEGRATING``."""
        return self._streak

    def expected_error(self, now_local: float) -> float:
        """Expected *true* error while off sources (not the claimed ``E``).

        ``entry_error + effective_drift · holdover_age`` — the error the
        disciplined oscillator is actually expected to have accumulated,
        as opposed to the worst-case claimed-δ growth MM-1 advertises.
        Returns the entry error while ``SYNCED`` (age 0).
        """
        return self._entry_error + self._effective_drift * self.holdover_age(
            now_local
        )

    # --------------------------------------------------------- transitions

    def _move(
        self, now_local: float, to: HoldoverState, reason: str
    ) -> None:
        self.transitions.append((now_local, self.state, to, reason))
        self.state = to

    def reanchor(self, now_local: float) -> None:
        """Restart/rejoin hook: the downtime gap is not a source blackout.

        Re-bases the no-source window so a server reviving from a crash
        is given a full window to hear its first round before holdover
        triggers.
        """
        self._last_source_local = now_local

    def enter_holdover(
        self, now_local: float, *, error: float, drift: float, reason: str
    ) -> None:
        """Force entry into ``HOLDOVER`` (watchdog or round path).

        Args:
            now_local: Caller's local clock.
            error: The server's error bound at entry — the base of the
                expected-true-error projection.
            drift: Consonance-backed effective drift estimate; floored at
                ``config.drift_floor`` here so callers cannot under-claim.
            reason: Trace tag.
        """
        if self.state in (HoldoverState.HOLDOVER, HoldoverState.DEGRADED):
            return
        if self._holdover_started_local is None:
            # First entry (from SYNCED): capture the projection base.
            self._holdover_started_local = now_local
            self._entry_error = float(error)
            self._effective_drift = max(self.config.drift_floor, float(drift))
        # From REINTEGRATING the original entry point (and projection) is
        # kept: sources flickering on and off never resets the age.
        self._streak = 0
        self._move(now_local, HoldoverState.HOLDOVER, reason)

    def note_round(
        self,
        now_local: float,
        *,
        sources: int,
        consistent: bool,
        error: float = 0.0,
        drift: float = 0.0,
    ) -> None:
        """One poll round closed.

        Args:
            now_local: Caller's local clock at round close.
            sources: Valid replies the round produced (after validation).
            consistent: Whether the round saw no inconsistency (only
                meaningful when ``sources > 0``).
            error: Current error bound (used if this round triggers
                holdover entry).
            drift: Current effective-drift estimate (ditto).
        """
        if sources > 0:
            self._last_source_local = now_local
            if self.state in (HoldoverState.HOLDOVER, HoldoverState.DEGRADED):
                self._streak = 1 if consistent else 0
                self._move(now_local, HoldoverState.REINTEGRATING, "sources_back")
            elif self.state is HoldoverState.REINTEGRATING:
                self._streak = self._streak + 1 if consistent else 0
            if (
                self.state is HoldoverState.REINTEGRATING
                and self._streak >= self.config.reintegrate_rounds
            ):
                self._holdover_started_local = None
                self._entry_error = 0.0
                self._effective_drift = 0.0
                self._streak = 0
                self._move(now_local, HoldoverState.SYNCED, "revalidated")
            return
        # A round with no sources at all.
        if self.state is HoldoverState.REINTEGRATING:
            # Sources vanished again mid-revalidation: straight back.
            self.enter_holdover(
                now_local, error=error, drift=drift, reason="sources_lost"
            )
        elif (
            self.state is HoldoverState.SYNCED
            and self.since_last_source(now_local) >= self.config.no_source_window
        ):
            self.enter_holdover(
                now_local, error=error, drift=drift, reason="no_source_window"
            )

    def tick(
        self, now_local: float, *, error: float = 0.0, drift: float = 0.0
    ) -> None:
        """Periodic watchdog, independent of round cadence.

        Catches the two hazards rounds alone cannot: a server whose
        rounds stop *closing* entirely (nothing to drive
        :meth:`note_round`) still enters holdover once the no-source
        window expires, and a holdover that outlives ``trust_horizon``
        is forced ``DEGRADED`` even between rounds.
        """
        if (
            self.state is HoldoverState.SYNCED
            and self.since_last_source(now_local) >= self.config.no_source_window
        ):
            self.enter_holdover(
                now_local, error=error, drift=drift, reason="watchdog"
            )
        if (
            self.state is HoldoverState.HOLDOVER
            and self.holdover_age(now_local) > self.config.trust_horizon
        ):
            self._move(now_local, HoldoverState.DEGRADED, "trust_horizon")
