"""Service assembly: declarative construction of a whole simulated service.

Experiments and examples describe a service as a topology plus a list of
:class:`ServerSpec` rows; :func:`build_service` wires up the engine, RNG
streams, network, clocks, servers and trace, returning a
:class:`SimulatedService` façade with the sampling helpers every experiment
needs (snapshots, error/asynchronism metrics, grid sampling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import networkx as nx

from ..byzantine.server import ByzantineConfig, ByzantineTolerantServer
from ..clocks.base import Clock
from ..clocks.disciplined import DisciplinedClock
from ..clocks.drift import DriftingClock
from ..clocks.slewing import SlewingClock
from ..core.intervals import TimeInterval, intersect_all
from ..core.recovery import RecoveryStrategy
from ..core.sync import SynchronizationPolicy
from ..holdover.controller import HoldoverConfig
from ..holdover.server import HoldoverServer
from ..load.capacity import CapacityConfig
from ..load.client import ResilienceConfig, ResilientTimeClient
from ..load.server import LoadAwareServer, LoadPolicy
from ..network.delay import DelayModel, UniformDelay
from ..network.transport import Network
from ..recovery.server import SelfStabilizingServer
from ..recovery.stabilizer import StabilizerConfig
from ..recovery.store import StableStore
from ..simulation.engine import SimulationEngine
from ..simulation.rng import RngRegistry
from ..simulation.trace import TraceRecorder
from ..telemetry.instruments import NULL_SERVICE_TELEMETRY, ServiceTelemetry
from .client import TimeClient
from .discipline import DiscipliningServer
from .hardening import HardenedTimeServer, HardeningConfig
from .rate_tracking import RateTrackingServer
from .reference import ReferenceServer
from .server import TimeServer

#: Builds a clock for a server, given the registry and the server's name
#: (so stochastic clocks can claim a dedicated stream).
ClockFactory = Callable[[RngRegistry, str], Clock]

#: Builds a per-server policy (factories allow per-server ablation flags).
PolicyFactory = Callable[[str], Optional[SynchronizationPolicy]]

#: Builds a per-server recovery strategy.
RecoveryFactory = Callable[[str], Optional[RecoveryStrategy]]


@dataclass(frozen=True)
class ServerSpec:
    """Declarative description of one server.

    Attributes:
        name: Topology node name.
        delta: Claimed maximum drift rate ``δ_i``.
        skew: Shortcut — a constant actual skew; builds a
            :class:`DriftingClock`.  Ignored when ``clock_factory`` is set.
        clock_factory: Full control over the clock construction.
        initial_error: ``ε_i`` at start.
        reference: Build a :class:`ReferenceServer` instead (answer-only,
            perfect clock); ``initial_error`` becomes the receiver error.
        polls: Whether the server runs synchronization rounds (reference
            servers never do).
        rate_tracking: Build a
            :class:`~repro.service.rate_tracking.RateTrackingServer`
            (Section 5 consonance machinery) instead of a plain server.
        discipline: Wrap the clock in a
            :class:`~repro.clocks.disciplined.DisciplinedClock` and build a
            :class:`~repro.service.discipline.DiscipliningServer` that
            trims its own frequency from the measured neighbour rates
            (implies ``rate_tracking``).
        self_stabilizing: Build a
            :class:`~repro.recovery.server.SelfStabilizingServer`
            (checkpointing, consistency census, merge epochs — implies
            ``rate_tracking``); all such servers share the service's
            :class:`~repro.recovery.store.StableStore`.
        byzantine_tolerant: Build a
            :class:`~repro.byzantine.server.ByzantineTolerantServer`
            (implies ``self_stabilizing``); pair it with an
            :class:`~repro.core.ft_im.FTIMPolicy` via ``policy_factory``
            to get classification-driven reputation.
        holdover: Build a :class:`~repro.holdover.server.HoldoverServer`
            (implies ``discipline`` and ``self_stabilizing``): the clock
            is stacked as a :class:`~repro.clocks.slewing.SlewingClock`
            over a :class:`DisciplinedClock`, and the server runs the
            SYNCED → HOLDOVER → DEGRADED → REINTEGRATING machine.  Knobs
            come from ``build_service``'s ``holdover`` config.
    """

    name: str
    delta: float = 0.0
    skew: float = 0.0
    clock_factory: Optional[ClockFactory] = None
    initial_error: float = 0.0
    reference: bool = False
    polls: bool = True
    rate_tracking: bool = False
    discipline: bool = False
    self_stabilizing: bool = False
    byzantine_tolerant: bool = False
    holdover: bool = False


@dataclass(frozen=True)
class ServiceSnapshot:
    """Per-server observables at one real time (oracle view included).

    Attributes:
        time: Real time of the snapshot.
        values: ``C_i(t)`` by server name.
        errors: ``E_i(t)`` by server name.
        offsets: ``C_i(t) - t`` by server name (oracle).
        correct: Whether each server's interval contains ``t`` (oracle).
    """

    time: float
    values: Dict[str, float]
    errors: Dict[str, float]
    offsets: Dict[str, float]
    correct: Dict[str, bool]

    def interval(self, name: str) -> TimeInterval:
        """Server ``name``'s interval at snapshot time."""
        return TimeInterval.from_center_error(self.values[name], self.errors[name])

    def intervals(self) -> Dict[str, TimeInterval]:
        """All intervals by name."""
        return {name: self.interval(name) for name in self.values}

    @property
    def min_error(self) -> float:
        """``E_M(t)`` — the smallest error in the service."""
        return min(self.errors.values())

    @property
    def max_error(self) -> float:
        """The largest error in the service."""
        return max(self.errors.values())

    @property
    def asynchronism(self) -> float:
        """``max |C_i - C_j|`` over all server pairs."""
        values = list(self.values.values())
        return max(values) - min(values) if values else 0.0

    @property
    def consistent(self) -> bool:
        """Whether all intervals share a common point (Section 2.3)."""
        return intersect_all(self.intervals().values()) is not None

    @property
    def all_correct(self) -> bool:
        """Oracle: every interval contains the true time."""
        return all(self.correct.values())


class SimulatedService:
    """A fully-wired simulated time service.

    Obtained from :func:`build_service`; exposes the engine, network, and
    servers plus the sampling helpers the experiments are written against.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: Network,
        servers: Dict[str, TimeServer],
        rng: RngRegistry,
        trace: TraceRecorder,
        xi: float,
        tau: Optional[float],
        stable_store: Optional[StableStore] = None,
        telemetry: Optional[ServiceTelemetry] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.servers = servers
        self.rng = rng
        self.trace = trace
        self.xi = xi
        self.tau = tau
        self.stable_store = stable_store
        self.telemetry = (
            telemetry if telemetry is not None else NULL_SERVICE_TELEMETRY
        )
        self.clients: List[TimeClient] = []

    # --------------------------------------------------------------- control

    def start(self) -> None:
        """Start every server (and client) that is not yet running."""
        for server in self.servers.values():
            server.start()
        for client in self.clients:
            client.start()

    def run_until(self, time: float) -> None:
        """Advance the simulation to absolute real time ``time``."""
        self.engine.advance_to(time)

    def add_client(
        self,
        name: str,
        *,
        clock: Optional[Clock] = None,
        delta: float = 0.0,
        timeout: float = 1.0,
        resilience: Optional[ResilienceConfig] = None,
    ) -> TimeClient:
        """Create, register and return a client occupying node ``name``.

        With ``resilience`` set the client is a
        :class:`~repro.load.client.ResilientTimeClient` (retries, circuit
        breakers, hedging) drawing its backoff jitter from the service's
        RNG registry; otherwise a plain :class:`TimeClient`.
        """
        if resilience is not None:
            client: TimeClient = ResilientTimeClient(
                self.engine,
                name,
                self.network,
                clock=clock,
                delta=delta,
                timeout=timeout,
                resilience=resilience,
                rng=self.rng.stream(f"client/{name}"),
            )
        else:
            client = TimeClient(
                self.engine,
                name,
                self.network,
                clock=clock,
                delta=delta,
                timeout=timeout,
            )
        self.network.register(client)
        self.clients.append(client)
        return client

    # -------------------------------------------------------------- sampling

    def snapshot(self) -> ServiceSnapshot:
        """Observe every server now (advancing nothing)."""
        t = self.engine.now
        values: Dict[str, float] = {}
        errors: Dict[str, float] = {}
        offsets: Dict[str, float] = {}
        correct: Dict[str, bool] = {}
        for name, server in self.servers.items():
            value, error = server.report()
            values[name] = value
            errors[name] = error
            offsets[name] = value - t
            correct[name] = (value - error) <= t <= (value + error)
        return ServiceSnapshot(
            time=t, values=values, errors=errors, offsets=offsets, correct=correct
        )

    def sample(self, times: Sequence[float]) -> List[ServiceSnapshot]:
        """Advance through ``times`` (ascending), snapshotting at each."""
        snapshots = []
        for t in times:
            self.run_until(t)
            snapshots.append(self.snapshot())
        return snapshots

    def server_names(self, polling_only: bool = False) -> List[str]:
        """Sorted server names, optionally restricted to polling servers."""
        names = []
        for name, server in sorted(self.servers.items()):
            if polling_only and server.policy is None:
                continue
            names.append(name)
        return names


def build_service(
    graph: nx.Graph,
    specs: Sequence[ServerSpec],
    *,
    policy: Optional[SynchronizationPolicy] = None,
    policy_factory: Optional[PolicyFactory] = None,
    tau: float = 60.0,
    seed: int = 0,
    lan_delay: Optional[DelayModel] = None,
    wan_delay: Optional[DelayModel] = None,
    long_haul: Optional[DelayModel] = None,
    loss_probability: float = 0.0,
    recovery_factory: Optional[RecoveryFactory] = None,
    round_timeout: Optional[float] = None,
    trace_enabled: bool = True,
    start: bool = True,
    stagger_polls: bool = True,
    hardening: Optional[HardeningConfig] = None,
    stabilizer: Optional[StabilizerConfig] = None,
    byzantine: Optional[ByzantineConfig] = None,
    capacity: Optional[CapacityConfig] = None,
    load_policy: Optional[LoadPolicy] = None,
    telemetry: Optional[ServiceTelemetry] = None,
    holdover: Optional[HoldoverConfig] = None,
    security: Optional["SecurityConfig"] = None,
) -> SimulatedService:
    """Assemble a :class:`SimulatedService`.

    Args:
        graph: The service topology; every spec's name must be a node.
        specs: One :class:`ServerSpec` per server.
        policy: Shared synchronization policy for all polling servers
            (mutually exclusive with ``policy_factory``).
        policy_factory: Per-server policy construction.
        tau: Poll period τ.
        seed: Root seed for all randomness.
        lan_delay: Delay model for ordinary edges (default: uniform 0–50 ms,
            i.e. ξ = 0.1 s for a symmetric round trip).
        wan_delay: Delay model for ``kind="wan"`` edges.
        long_haul: Delay model enabling non-adjacent (other-network) sends.
        loss_probability: Per-message loss on every link.
        recovery_factory: Per-server recovery strategy construction.
        round_timeout: Override the servers' round timeout.
        trace_enabled: Record trace rows (disable for big sweeps).
        start: Start all servers immediately.
        stagger_polls: Give each server a deterministic phase offset so
            rounds do not all fire at the same instant.
        hardening: When set, plain polling servers are built as
            :class:`~repro.service.hardening.HardenedTimeServer` with this
            configuration (reply validation, retries, adaptive timeouts,
            neighbour quarantine).  Reference, rate-tracking and
            disciplining servers are unaffected.
        stabilizer: Recovery-subsystem knobs for servers with
            ``self_stabilizing=True`` (checkpoint cadence, census
            horizon, merge hysteresis); None uses
            :class:`~repro.recovery.stabilizer.StabilizerConfig` defaults.
        byzantine: Tolerance-layer knobs for servers with
            ``byzantine_tolerant=True`` (reputation, demotion, reply
            validation); None uses
            :class:`~repro.byzantine.server.ByzantineConfig` defaults.
        capacity: When set, plain servers are built as
            :class:`~repro.load.server.LoadAwareServer` with this
            service-time/queue model — requests cost simulated CPU and
            may be shed.  Not yet composable with hardening, recovery or
            Byzantine server classes (those keep the paper's infinite
            capacity); reference servers are unaffected.
        load_policy: Overload defences for capacity-model servers
            (admission bucket, shedding policy, degraded mode); None
            uses :class:`~repro.load.server.LoadPolicy` defaults
            (everything on).
        telemetry: A :class:`~repro.telemetry.instruments.ServiceTelemetry`
            bundle to wire through every layer (per-server counters and
            spans, the engine observer, the periodic gauge sampler); None
            disables telemetry at zero hot-path cost.
        holdover: Holdover/safety-rail knobs for servers with
            ``holdover=True`` (no-source window, trust horizon,
            reintegration rounds, slew rate, panic/sanity bounds); None
            uses :class:`~repro.holdover.controller.HoldoverConfig`
            defaults.
        security: When set, polling servers are built authenticated
            (:class:`~repro.security.server.AuthenticatedTimeServer`, or
            :class:`~repro.security.server.AuthenticatedByzantineServer`
            for ``byzantine_tolerant`` specs) sharing this config's
            keyring: signed requests/replies, per-peer replay windows,
            and the delay guard.  Composable with hardening and the
            Byzantine layer; not yet with holdover/discipline/
            rate-tracking/capacity servers or reference servers (their
            replies would be unsigned and refused).

    Returns:
        The wired service (engine at ``t = 0``).

    Raises:
        ValueError: On duplicate/missing names or conflicting policy args.
    """
    if policy is not None and policy_factory is not None:
        raise ValueError("pass either policy or policy_factory, not both")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate server names in specs: {names}")
    missing = [name for name in names if name not in graph]
    if missing:
        raise ValueError(f"specs name servers not in the topology: {missing}")

    engine = SimulationEngine()
    rng = RngRegistry(seed=seed)
    trace = TraceRecorder(enabled=trace_enabled)
    if lan_delay is None:
        lan_delay = UniformDelay(0.05)
    network = Network(
        engine,
        graph,
        rng,
        lan_delay=lan_delay,
        wan_delay=wan_delay,
        loss_probability=loss_probability,
        long_haul=long_haul,
    )

    # Deterministic phase offsets: polling server k's first round fires at
    # (k + 1) / (n + 1) of a period, spreading rounds evenly across τ.
    policies: Dict[str, Optional[SynchronizationPolicy]] = {}
    for spec in specs:
        if spec.reference or not spec.polls:
            policies[spec.name] = None
        elif policy_factory is not None:
            policies[spec.name] = policy_factory(spec.name)
        else:
            policies[spec.name] = policy
    polling_names = [name for name, pol in policies.items() if pol is not None]
    phase: Dict[str, float] = {}
    if stagger_polls:
        for k, name in enumerate(sorted(polling_names)):
            phase[name] = tau * (k + 1) / (len(polling_names) + 1)

    service_telemetry = (
        telemetry if telemetry is not None else NULL_SERVICE_TELEMETRY
    )
    servers: Dict[str, TimeServer] = {}
    stable_store: Optional[StableStore] = None
    if any(
        spec.self_stabilizing or spec.byzantine_tolerant or spec.holdover
        for spec in specs
    ):
        stable_store = StableStore()
    holdover_cfg = holdover if holdover is not None else HoldoverConfig()
    for spec in specs:
        if spec.reference:
            server: TimeServer = ReferenceServer(
                engine,
                spec.name,
                network,
                receiver_error=spec.initial_error,
                trace=trace,
                telemetry=service_telemetry.server(spec.name),
            )
        else:
            if spec.clock_factory is not None:
                clock = spec.clock_factory(rng, spec.name)
            else:
                clock = DriftingClock(spec.skew, epoch=0.0, initial=0.0)
            server_policy = policies[spec.name]
            recovery = recovery_factory(spec.name) if recovery_factory else None
            extra = {}
            if spec.holdover:
                clock = SlewingClock(
                    DisciplinedClock(clock),
                    slew_rate=holdover_cfg.slew_rate,
                    panic_threshold=holdover_cfg.panic_threshold,
                    sanity_bound=holdover_cfg.sanity_bound,
                )
                server_class = HoldoverServer
                extra = {
                    "store": stable_store,
                    "stabilizer_config": stabilizer,
                    "holdover": holdover_cfg,
                }
            elif spec.discipline:
                clock = DisciplinedClock(clock)
                server_class = DiscipliningServer
            elif spec.byzantine_tolerant:
                server_class = ByzantineTolerantServer
                extra = {
                    "store": stable_store,
                    "stabilizer_config": stabilizer,
                    "byzantine": byzantine,
                }
                if security is not None:
                    from ..security.server import AuthenticatedByzantineServer

                    server_class = AuthenticatedByzantineServer
                    extra["security"] = security
            elif spec.self_stabilizing:
                server_class = SelfStabilizingServer
                extra = {
                    "store": stable_store,
                    "stabilizer_config": stabilizer,
                }
            elif spec.rate_tracking:
                server_class = RateTrackingServer
            elif security is not None and server_policy is not None:
                from ..security.server import AuthenticatedTimeServer

                server_class = AuthenticatedTimeServer
                extra = {
                    "hardening": hardening if hardening is not None else HardeningConfig(),
                    "hardening_rng": rng.stream(f"hardening/{spec.name}"),
                    "security": security,
                }
            elif hardening is not None and server_policy is not None:
                server_class = HardenedTimeServer
                extra = {
                    "hardening": hardening,
                    "hardening_rng": rng.stream(f"hardening/{spec.name}"),
                }
            elif capacity is not None:
                server_class = LoadAwareServer
                extra = {
                    "capacity": capacity,
                    "load_policy": load_policy,
                    "load_rng": rng.stream(f"load/{spec.name}"),
                }
            else:
                server_class = TimeServer
            if capacity is not None and server_class not in (
                LoadAwareServer,
                TimeServer,
            ):
                raise ValueError(
                    "capacity is not yet composable with hardened, "
                    "rate-tracking, self-stabilizing or Byzantine servers"
                )
            server = server_class(
                engine,
                spec.name,
                clock,
                spec.delta,
                network,
                policy=server_policy,
                tau=tau if server_policy is not None else None,
                initial_error=spec.initial_error,
                round_timeout=round_timeout,
                recovery=recovery,
                trace=trace,
                first_poll_at=phase.get(spec.name),
                telemetry=service_telemetry.server(spec.name),
                **extra,
            )
        network.register(server)
        servers[spec.name] = server

    service = SimulatedService(
        engine,
        network,
        servers,
        rng,
        trace,
        xi=network.xi,
        tau=tau,
        stable_store=stable_store,
        telemetry=service_telemetry,
    )
    service_telemetry.attach(service)
    if start:
        service.start()
    return service
