"""Time-service clients.

The paper's opening observation: "a client simply requests the time from
any subset of the time servers making up the service, and uses the first
reply" — but Section 3 immediately suggests better client strategies once
servers report intervals.  :class:`TimeClient` implements the menu:

* ``FIRST_REPLY`` — the naive client from the introduction.
* ``MIN_ERROR`` — wait for all replies, use the one with the smallest
  maximum error (the client-side view of algorithm MM).
* ``INTERSECT`` — intersect all reply intervals (client-side algorithm IM);
  optionally fault-tolerant via Marzullo's algorithm with a falseticker
  budget.

Each query produces a :class:`ClientResult` carrying the estimate, the
claimed error, and oracle truth (real time at completion) so experiments
can score the strategies.  Clients own a local clock for round-trip
measurement — usually a drifting one, because clients are ordinary
workstations.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..clocks.base import Clock
from ..clocks.perfect import PerfectClock
from ..core.intervals import TimeInterval
from ..core.marzullo import intersect_tolerating, ntp_select
from ..network.transport import Network
from ..simulation.engine import SimulationEngine
from ..simulation.events import Event
from ..simulation.process import SimProcess
from .idspace import QUERY_ID_SPACE, RequestIdAllocator
from .messages import ReplyStatus, RequestKind, TimeReply, TimeRequest


class QueryStrategy(enum.Enum):
    """How a client combines server replies."""

    FIRST_REPLY = "first-reply"
    MIN_ERROR = "min-error"
    INTERSECT = "intersect"


@dataclass(frozen=True)
class ClientResult:
    """Outcome of one client query.

    Attributes:
        estimate: The client's chosen time value (already aged to the
            completion instant via the client's local clock).
        error: The claimed maximum error of the estimate.
        true_time: Real time at completion (oracle, for scoring).
        replies_used: How many replies fed the estimate.
        source: Which server(s) the estimate came from.
        failed: The query heard no usable reply; ``estimate``/``error``
            are NaN/∞ and the result lives in :attr:`TimeClient.failures`
            rather than :attr:`TimeClient.results`.
        latency: Real seconds from issuing the query to this outcome
            (oracle-measured; a failed query's latency is its timeout).
    """

    estimate: float
    error: float
    true_time: float
    replies_used: int
    source: str
    failed: bool = False
    latency: float = float("nan")

    @property
    def true_offset(self) -> float:
        """Oracle error of the estimate, ``estimate - true_time``."""
        return self.estimate - self.true_time

    @property
    def correct(self) -> bool:
        """Whether the claimed interval contains the true time."""
        if self.failed:
            return False
        return abs(self.true_offset) <= self.error


@dataclass
class _Query:
    """One in-flight client query."""

    query_id: int
    strategy: QueryStrategy
    sent_local: Dict[str, float]
    outstanding: set[str]
    callback: Callable[[ClientResult], None]
    faults: int
    started: float = 0.0
    replies: List[tuple[TimeReply, float, float]] = field(default_factory=list)
    timeout_event: Optional[Event] = None
    done: bool = False


class TimeClient(SimProcess):
    """A workstation querying the time service.

    Args:
        engine: The simulation engine.
        name: Topology node name (clients occupy nodes too, so their links
            have delays like everyone else's).
        network: Transport.
        clock: Local clock used for round-trip measurement; defaults to a
            perfect clock (the measurement error then comes only from delay
            nondeterminism, isolating strategy differences).
        delta: Claimed drift bound of the local clock, used to inflate
            measured round trips exactly as a server would.
        timeout: Seconds to wait before finalising with whatever arrived.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        network: Network,
        clock: Optional[Clock] = None,
        delta: float = 0.0,
        timeout: float = 1.0,
    ) -> None:
        super().__init__(engine, name)
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.network = network
        self.clock = clock if clock is not None else PerfectClock()
        self.delta = float(delta)
        self.timeout = float(timeout)
        self._queries: Dict[int, _Query] = {}
        self._query_ids = RequestIdAllocator(QUERY_ID_SPACE)
        self.results: List[ClientResult] = []
        self.failures: List[ClientResult] = []

    # --------------------------------------------------------------- queries

    def ask(
        self,
        servers: Sequence[str],
        strategy: QueryStrategy = QueryStrategy.FIRST_REPLY,
        callback: Optional[Callable[[ClientResult], None]] = None,
        faults: int = 0,
    ) -> int:
        """Issue one query to the given servers.

        Args:
            servers: Servers to ask (typically the client's neighbours).
            strategy: Combination rule.
            callback: Invoked with the :class:`ClientResult` when the query
                completes — including a *failed* result (``failed=True``)
                when the timeout fires with no usable reply.  Successful
                results are also appended to :attr:`results`, failed ones
                to :attr:`failures`.
            faults: For ``INTERSECT``: number of falsetickers to tolerate
                via Marzullo's algorithm (0 reproduces plain IM-style
                intersection).

        Returns:
            The query id.

        Raises:
            ValueError: On an empty server list or negative ``faults``.
        """
        if not servers:
            raise ValueError("a query needs at least one server")
        if faults < 0:
            raise ValueError(f"faults must be non-negative, got {faults}")
        query = _Query(
            query_id=self._query_ids.allocate(),
            strategy=strategy,
            sent_local={},
            outstanding=set(servers),
            callback=callback if callback is not None else (lambda result: None),
            faults=faults,
            started=self.now,
        )
        self._queries[query.query_id] = query
        for server in servers:
            query.sent_local[server] = self.clock.read(self.now)
            self.network.send(
                self.name,
                server,
                TimeRequest(
                    request_id=query.query_id,
                    origin=self.name,
                    destination=server,
                    kind=RequestKind.CLIENT,
                ),
            )
        query.timeout_event = self.call_after(
            self.timeout, lambda: self._finalise(query)
        )
        return query.query_id

    # --------------------------------------------------------------- replies

    def on_message(self, message, sender) -> None:
        if not isinstance(message, TimeReply):
            return
        query = self._queries.get(message.request_id)
        if query is None or query.done or message.server not in query.outstanding:
            return
        query.outstanding.discard(message.server)
        if message.status is ReplyStatus.BUSY:
            # An overloaded server declined to answer: no time to use, but
            # no point waiting for this server either.  (The resilient
            # client in repro.load.client retries instead.)
            if not query.outstanding:
                self._finalise(query)
            return
        local_now = self.clock.read(self.now)
        rtt_local = max(0.0, local_now - query.sent_local[message.server])
        query.replies.append((message, rtt_local, local_now))
        if query.strategy is QueryStrategy.FIRST_REPLY or not query.outstanding:
            self._finalise(query)

    # ------------------------------------------------------------ finalising

    def _finalise(self, query: _Query) -> None:
        if query.done:
            return
        query.done = True
        self._queries.pop(query.query_id, None)
        if query.timeout_event is not None:
            # A query finalised by its replies must not keep holding its
            # timeout timer (and, through the closure, the whole query)
            # on the engine's heap until the timeout would have fired.
            query.timeout_event.cancel()
            query.timeout_event = None
        if not query.replies:
            # Nothing heard: an explicit failure, not a silent drop, so
            # experiments can count unanswered queries.
            result = ClientResult(
                estimate=math.nan,
                error=math.inf,
                true_time=self.now,
                replies_used=0,
                source="failed",
                failed=True,
                latency=self.now - query.started,
            )
            self.failures.append(result)
            query.callback(result)
            return
        local_now = self.clock.read(self.now)
        result = self._combine(query, local_now)
        self.results.append(result)
        query.callback(result)

    def _aged_interval(
        self, reply: TimeReply, rtt_local: float, received_local: float, local_now: float
    ) -> TimeInterval:
        """Reply interval, rtt-widened and aged to ``local_now``.

        Same treatment a server gives replies: the leading edge absorbs the
        round trip inflated by ``(1 + δ)``, and both edges age by the local
        elapsed time with a ``δ``-proportional widening.
        """
        elapsed = max(0.0, local_now - received_local)
        lo = reply.clock_value - reply.error + elapsed - self.delta * elapsed
        hi = (
            reply.clock_value
            + reply.error
            + (1.0 + self.delta) * rtt_local
            + elapsed
            + self.delta * elapsed
        )
        return TimeInterval(lo, hi)

    def _combine(self, query: _Query, local_now: float) -> ClientResult:
        intervals = [
            self._aged_interval(reply, rtt, received, local_now)
            for reply, rtt, received in query.replies
        ]
        names = [reply.server for reply, _rtt, _received in query.replies]
        if query.strategy is QueryStrategy.FIRST_REPLY:
            chosen = intervals[0]
            source = names[0]
        elif query.strategy is QueryStrategy.MIN_ERROR:
            index = min(range(len(intervals)), key=lambda i: intervals[i].width)
            chosen = intervals[index]
            source = names[index]
        else:  # INTERSECT
            result = intersect_tolerating(intervals, query.faults)
            if result is not None:
                chosen = result.interval
                source = f"intersect[{result.count}/{len(intervals)}]"
            else:
                # Too many falsetickers for the requested budget.  Falling
                # straight back to MIN_ERROR would prefer the narrowest
                # interval — exactly the liar that *underreports* its
                # error to look attractive.  Try the RFC-5905 selection
                # first: it scans the falseticker count upward while a
                # majority still agrees, so the estimate stays anchored to
                # the truechimers.
                selection = ntp_select(intervals)
                if selection is not None:
                    chosen = selection.interval
                    source = (
                        f"ntp-select[{len(selection.truechimers)}"
                        f"/{len(intervals)}]"
                    )
                else:
                    # No majority at all: MIN_ERROR is the last resort
                    # (documented; the result still reports its source).
                    index = min(
                        range(len(intervals)), key=lambda i: intervals[i].width
                    )
                    chosen = intervals[index]
                    source = f"fallback:{names[index]}"
        return ClientResult(
            estimate=chosen.center,
            error=chosen.error,
            true_time=self.now,
            replies_used=len(intervals),
            source=source,
            latency=self.now - query.started,
        )
