"""A frequency-disciplining time server (the Section 5 programme, closed).

:class:`RateTrackingServer` measures how fast each neighbour's clock
separates from the local raw timescale.  If the local oscillator runs fast,
*every* neighbour appears to drift slow by the same amount — so the median
measured separation rate is an estimate of (minus) the local clock's own
effective skew relative to the service.  :class:`DiscipliningServer` closes
the loop: it periodically nudges a software rate correction
(:class:`~repro.clocks.disciplined.DisciplinedClock`) by a damped step of
that median, with a deadband at the estimators' own uncertainty so noise is
never chased.

What this buys, and what it cannot: rule MM-1 grows the *claimed* error at
the claimed δ regardless, so the reported intervals do not shrink — but the
clocks' true offsets and mutual asynchronism do, substantially (see the
``discipline`` experiment).  This is exactly NTP's frequency-discipline
insight, grown from the paper's consonance sketch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..clocks.disciplined import DisciplinedClock
from .rate_tracking import RateTrackingServer


class DiscipliningServer(RateTrackingServer):
    """A rate-tracking server that also trims its own clock frequency.

    Accepts all :class:`RateTrackingServer` arguments plus:

    Args:
        discipline_period: Seconds between correction updates (defaults to
            four poll periods — the estimators need fresh windows between
            steps).
        gain: Fraction of the measured median separation rate applied per
            step; ``<= 1`` for stability, lower = smoother.

    Raises:
        TypeError: If the server's clock is not a :class:`DisciplinedClock`
            (there is nothing to adjust otherwise).
    """

    def __init__(
        self,
        *args,
        discipline_period: Optional[float] = None,
        gain: float = 0.5,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        # Duck-typed: a DisciplinedClock, or any adapter (e.g. a
        # SlewingClock over one) that forwards the rate-servo surface.
        if not hasattr(self.clock, "adjust_rate"):
            raise TypeError(
                "DiscipliningServer requires a rate-adjustable clock "
                f"such as DisciplinedClock (got {type(self.clock).__name__})"
            )
        if not 0.0 < gain <= 1.0:
            raise ValueError(f"gain must be in (0, 1], got {gain}")
        if discipline_period is None:
            discipline_period = 4.0 * (self.tau or 60.0)
        if discipline_period <= 0:
            raise ValueError(
                f"discipline_period must be positive, got {discipline_period}"
            )
        self.discipline_period = float(discipline_period)
        self.gain = float(gain)
        self.discipline_steps = 0

    def on_start(self) -> None:
        super().on_start()
        self.every(self.discipline_period, self._discipline_step)

    def _discipline_step(self) -> None:
        """One pass of the frequency loop."""
        rates = []
        uncertainties = []
        for report in self.rate_reports().values():
            estimate = report.estimate
            if estimate is None:
                continue
            # Skip provably-bad neighbours: a racing clock would drag the
            # median (with few neighbours) toward its own lie.
            if report.consonant is False:
                continue
            rates.append(estimate.rate)
            uncertainties.append(estimate.uncertainty)
        if not rates:
            return
        median_rate = float(np.median(rates))
        deadband = float(np.median(uncertainties))
        if abs(median_rate) <= deadband:
            return  # indistinguishable from measurement noise
        # Neighbours separating at +r means we run slow by ~r: speed up.
        clock = self.clock  # duck-typed: DisciplinedClock or an adapter
        applied = clock.adjust_rate(
            self.now, clock.correction + self.gain * median_rate
        )
        self.discipline_steps += 1
        self._trace(
            "discipline",
            median_rate=median_rate,
            correction=applied,
        )
