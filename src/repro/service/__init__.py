"""The time service: servers, clients, messages, reference sources, assembly."""

from .builder import (
    ClockFactory,
    PolicyFactory,
    RecoveryFactory,
    ServerSpec,
    ServiceSnapshot,
    SimulatedService,
    build_service,
)
from .churn import ChurnController, ChurnStats
from .discipline import DiscipliningServer
from .client import ClientResult, QueryStrategy, TimeClient
from .messages import ReplyStatus, RequestKind, TimeReply, TimeRequest
from .rate_tracking import NeighbourRateReport, RateTrackingServer
from .reference import ReferenceServer
from .server import ServerStats, TimeServer
from .validation import Finding, Severity, validate_specs

__all__ = [
    "ChurnController",
    "ChurnStats",
    "ClientResult",
    "DiscipliningServer",
    "NeighbourRateReport",
    "RateTrackingServer",
    "ClockFactory",
    "PolicyFactory",
    "QueryStrategy",
    "RecoveryFactory",
    "ReferenceServer",
    "ReplyStatus",
    "RequestKind",
    "ServerSpec",
    "ServerStats",
    "ServiceSnapshot",
    "SimulatedService",
    "TimeClient",
    "TimeReply",
    "TimeRequest",
    "TimeServer",
    "Finding",
    "Severity",
    "build_service",
    "validate_specs",
]
