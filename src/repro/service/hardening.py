"""Server hardening: surviving a hostile network and lying neighbours.

The paper's servers trust each other completely: every ``⟨C_j, E_j⟩``
reply reaches the synchronization policy, every lost poll is simply waited
out, and a neighbour that keeps feeding garbage keeps being polled
forever.  That is fine for proving theorems and fatal in production.
:class:`HardenedTimeServer` layers four defences on top of the base
:class:`~repro.service.server.TimeServer` without changing the algorithms
themselves:

* **Reply sanity validation** — NaN/infinite values, negative or
  absurdly large error bounds, and replies whose claimed clock value is
  implausibly far from anything the local interval plus the measured
  round trip could explain are rejected *before* they reach the policy
  (hook: :meth:`~repro.service.server.TimeServer._validate_reply`).
* **Retry with exponential backoff + jitter** — lost poll requests and
  recovery fetches are retransmitted within the open round instead of
  being waited out, so a 30% lossy link degrades accuracy smoothly
  instead of dropping whole rounds.
* **Adaptive round timeouts** — an EWMA of observed local round-trip
  times (plus a deviation term, TCP-RTO style) shrinks the round timeout
  to what the network actually needs, bounded above by the configured
  static timeout.
* **Neighbour health scores with quarantine** — every invalid reply,
  detected inconsistency, or exhausted retry decays a per-neighbour
  score; a neighbour falling below threshold is quarantined (excluded
  from polling and from arbiter choice) for a cooling period, then probed
  back in on probation.  A starvation guard never lets quarantine push
  the active peer count below ``min_peers``.

All knobs live in :class:`HardeningConfig`; the defaults are deliberately
conservative so that on a healthy network a hardened server behaves almost
exactly like a plain one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..clocks.base import Clock
from ..core.recovery import RecoveryStrategy
from ..core.sync import SynchronizationPolicy
from ..network.transport import Network
from ..simulation.engine import SimulationEngine
from ..simulation.trace import TraceRecorder
from ..telemetry.registry import CounterBackedStats, CounterField
from .messages import RequestKind, TimeReply, TimeRequest
from .server import TimeServer, _PollRound


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for in-round retransmissions.

    Attributes:
        max_attempts: Total transmissions per destination per round
            (1 = no retries).
        base: Delay before the first retry, in seconds.
        factor: Multiplier applied to the delay per further attempt.
        cap: Upper bound on any single backoff delay.
        jitter: Fractional uniform jitter: the delay is scaled by a factor
            drawn from ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 3
    base: float = 0.15
    factor: float = 2.0
    cap: float = 5.0
    jitter: float = 0.25

    def delay(self, attempt: int, rng: Optional[np.random.Generator]) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.base * self.factor ** (attempt - 1), self.cap)
        if rng is None or self.jitter <= 0.0:
            return raw
        scale = 1.0 + self.jitter * (2.0 * float(rng.uniform()) - 1.0)
        return max(1e-6, raw * scale)


@dataclass(frozen=True)
class QuarantinePolicy:
    """When to bench a misbehaving neighbour and for how long.

    Attributes:
        threshold: Health score below which a neighbour is quarantined.
        cooldown: Seconds a quarantined neighbour sits out before being
            probed again.
        probation_score: Score assigned when a neighbour re-enters after
            cooldown (one more strike re-quarantines it quickly).
        min_peers: Starvation guard — quarantine never reduces the number
            of actively polled neighbours below this.
        invalid_penalty: Multiplicative score decay for an invalid reply.
        inconsistent_penalty: Decay for a detected inconsistency.
        timeout_penalty: Decay for a round ending with no reply (after all
            retries) — mild, because honest loss does this too.
        reward: Pull toward 1.0 per good reply: ``s ← s(1-r) + r``.
    """

    threshold: float = 0.25
    cooldown: float = 120.0
    probation_score: float = 0.5
    min_peers: int = 2
    invalid_penalty: float = 0.5
    inconsistent_penalty: float = 0.6
    timeout_penalty: float = 0.9
    reward: float = 0.2


@dataclass(frozen=True)
class HardeningConfig:
    """All hardening knobs in one declarative bundle.

    Attributes:
        validate: Enable reply sanity validation.
        max_error: Largest believable ``E_j`` in seconds; replies claiming
            more are rejected (an error bound wider than an hour means the
            neighbour effectively doesn't know the time).
        plausibility_slack: Extra margin, in seconds, allowed between the
            local and remote clock readings beyond ``E_i + E_j`` plus the
            measured round trip before a reply is called implausible.
        error_physics: Enforce the rule MM-1 growth clamp (see
            :meth:`~repro.service.server.TimeServer.
            _error_physics_rejection`): replies whose claimed error grew,
            but slower than ``δ_j`` mandates since the neighbour's last
            observed report, are rejected after two consecutive strikes.
        retry: Retransmission policy for polls and recovery fetches.
        adaptive_timeout: Derive round timeouts from observed RTTs.
        rtt_alpha: EWMA gain for the RTT mean.
        rtt_dev_alpha: EWMA gain for the RTT mean deviation.
        timeout_multiplier: Round timeout = ``mult·ewma + 4·dev`` (clamped
            to ``[min_timeout, static timeout]``).
        min_timeout: Floor for the adaptive timeout.
        quarantine: Health/quarantine policy, or None to disable.
    """

    validate: bool = True
    max_error: float = 3600.0
    plausibility_slack: float = 0.5
    error_physics: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    adaptive_timeout: bool = True
    rtt_alpha: float = 0.125
    rtt_dev_alpha: float = 0.25
    timeout_multiplier: float = 1.5
    min_timeout: float = 0.05
    quarantine: Optional[QuarantinePolicy] = field(
        default_factory=QuarantinePolicy
    )


@dataclass
class NeighbourHealth:
    """Mutable health record for one neighbour.

    Attributes:
        score: Exponentially smoothed reliability in ``(0, 1]``.
        quarantined_until: Real time at which quarantine ends, or None.
        good: Valid, consistent replies seen.
        invalid: Replies rejected by validation.
        inconsistent: Inconsistency detections attributed to it.
        timeouts: Rounds it failed to answer at all.
        quarantines: Times it has been quarantined.
    """

    score: float = 1.0
    quarantined_until: Optional[float] = None
    good: int = 0
    invalid: int = 0
    inconsistent: int = 0
    timeouts: int = 0
    quarantines: int = 0

    def is_quarantined(self, now: float) -> bool:
        """Whether the neighbour is benched at real time ``now``."""
        return self.quarantined_until is not None and now < self.quarantined_until

    def release_if_due(self, now: float, policy: QuarantinePolicy) -> None:
        """End an expired quarantine, putting the neighbour on probation."""
        if self.quarantined_until is not None and now >= self.quarantined_until:
            self.quarantined_until = None
            self.score = policy.probation_score

    def _decay(self, penalty: float, now: float, policy: QuarantinePolicy) -> bool:
        self.score *= penalty
        if self.score < policy.threshold and not self.is_quarantined(now):
            self.quarantined_until = now + policy.cooldown
            self.quarantines += 1
            return True
        return False

    def record_good(self, policy: QuarantinePolicy) -> None:
        """A valid, consistent reply arrived."""
        self.good += 1
        self.score = self.score * (1.0 - policy.reward) + policy.reward

    def record_invalid(self, now: float, policy: QuarantinePolicy) -> bool:
        """An invalid reply arrived; returns True if this quarantined it."""
        self.invalid += 1
        return self._decay(policy.invalid_penalty, now, policy)

    def record_inconsistent(self, now: float, policy: QuarantinePolicy) -> bool:
        """An inconsistency was detected; True if this quarantined it."""
        self.inconsistent += 1
        return self._decay(policy.inconsistent_penalty, now, policy)

    def record_timeout(self, now: float, policy: QuarantinePolicy) -> bool:
        """The neighbour never answered a round; True if quarantined."""
        self.timeouts += 1
        return self._decay(policy.timeout_penalty, now, policy)


def reply_sanity_rejection(
    reply: TimeReply,
    *,
    local_value: float,
    local_error: float,
    delta: float,
    xi: float,
    max_error: float,
    plausibility_slack: float,
) -> Optional[str]:
    """The shared reply sanity checks (hardened and Byzantine servers).

    Returns None to accept or a short reason string.  Pure function of
    the reply and the local view, so any server class can reuse it.
    """
    if not math.isfinite(reply.clock_value):
        return "non-finite clock value"
    if not math.isfinite(reply.error):
        return "non-finite error"
    if reply.error < 0.0:
        return "negative error"
    if reply.error > max_error:
        return "implausibly large error"
    # Plausibility: the remote reading must be explainable by the two
    # error bounds plus the (inflated) round trip.  A liar that
    # underreports its error to look attractive fails exactly here.
    slack = (
        local_error
        + reply.error
        + (1.0 + delta) * xi
        + plausibility_slack
    )
    if abs(reply.clock_value - local_value) > slack:
        return "implausible clock value"
    return None


def quarantine_poll_filter(
    neighbours: Sequence[str],
    health_of: Callable[[str], "NeighbourHealth"],
    now: float,
    policy: QuarantinePolicy,
) -> tuple[List[str], List[str]]:
    """Shared poll-target filtering with the starvation guard.

    Releases due quarantines, drops benched neighbours, and re-admits
    the healthiest benched ones when fewer than ``min_peers`` remain.

    Returns:
        ``(active, readmitted)`` — the names to poll, and the subset of
        them the starvation guard forced back in.
    """
    for name in neighbours:
        health_of(name).release_if_due(now, policy)
    active = [
        name for name in neighbours if not health_of(name).is_quarantined(now)
    ]
    floor = min(policy.min_peers, len(neighbours))
    readmitted: List[str] = []
    if len(active) < floor:
        benched = sorted(
            (name for name in neighbours if name not in active),
            key=lambda name: (-health_of(name).score, name),
        )
        readmitted = benched[: floor - len(active)]
        active = sorted(active + readmitted)
    return active, readmitted


class HardeningStats(CounterBackedStats):
    """Counters the hardened server adds on top of ``ServerStats``.

    Registry-backed (see :class:`~repro.telemetry.registry.
    CounterBackedStats`): the attributes still read and ``+=`` like the
    plain integers they once were, but the values live in counter
    families (``repro_hardening_*_total``) and appear in the service-wide
    telemetry export when the server is built with telemetry enabled.
    """

    prefix = "repro_hardening_"

    retries_sent = CounterField("Poll retransmissions sent")
    recovery_retries = CounterField("Recovery request retransmissions sent")
    quarantines = CounterField("Neighbour quarantines imposed")
    # Quarantined peers re-admitted by the starvation guard.
    starvation_overrides = CounterField("Quarantined peers re-admitted")


class HardenedTimeServer(TimeServer):
    """A :class:`TimeServer` with the production armour described above.

    Args (beyond :class:`TimeServer`'s):
        hardening: The knob bundle; defaults to :class:`HardeningConfig()`.
        hardening_rng: Random stream for retry jitter.  None disables
            jitter (retries stay deterministic).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        clock: Clock,
        delta: float,
        network: Network,
        policy: Optional[SynchronizationPolicy] = None,
        tau: Optional[float] = None,
        *,
        initial_error: float = 0.0,
        round_timeout: Optional[float] = None,
        recovery: Optional[RecoveryStrategy] = None,
        trace: Optional[TraceRecorder] = None,
        poll_jitter=None,
        first_poll_at: Optional[float] = None,
        hardening: Optional[HardeningConfig] = None,
        hardening_rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> None:
        super().__init__(
            engine,
            name,
            clock,
            delta,
            network,
            policy,
            tau,
            initial_error=initial_error,
            round_timeout=round_timeout,
            recovery=recovery,
            trace=trace,
            poll_jitter=poll_jitter,
            first_poll_at=first_poll_at,
            **kwargs,
        )
        self.hardening = hardening if hardening is not None else HardeningConfig()
        self._hrng = hardening_rng
        self.health: Dict[str, NeighbourHealth] = {}
        self.hardening_stats = HardeningStats(self.telemetry.stats_registry())
        self._rtt_ewma: Optional[float] = None
        self._rtt_dev = 0.0
        self._recovery_attempts = 0

    # ------------------------------------------------------------- health

    def _health(self, name: str) -> NeighbourHealth:
        if name not in self.health:
            self.health[name] = NeighbourHealth()
        return self.health[name]

    def quarantined_peers(self) -> List[str]:
        """Neighbours currently benched."""
        return sorted(
            name
            for name, record in self.health.items()
            if record.is_quarantined(self.now)
        )

    def active_peers(self) -> List[str]:
        """The neighbours the next round would poll (post-quarantine)."""
        return self._poll_targets()

    def _note_quarantine(self, name: str) -> None:
        self.hardening_stats.quarantines += 1
        self._trace("quarantine", server=name)

    # ------------------------------------------------------ poll targeting

    def _poll_targets(self) -> list[str]:
        neighbours = super()._poll_targets()
        quarantine = self.hardening.quarantine
        if quarantine is None:
            return neighbours
        active, readmitted = quarantine_poll_filter(
            neighbours, self._health, self.now, quarantine
        )
        self.hardening_stats.starvation_overrides += len(readmitted)
        return active

    # --------------------------------------------------------- validation

    def _validate_reply(self, reply: TimeReply) -> Optional[str]:
        if not self.hardening.validate:
            return None
        reason = self._rejection_reason(reply)
        if reason is None:
            return None
        quarantine = self.hardening.quarantine
        if quarantine is not None:
            if self._health(reply.server).record_invalid(self.now, quarantine):
                self._note_quarantine(reply.server)
        return reason

    def _rejection_reason(self, reply: TimeReply) -> Optional[str]:
        value, error = self.report()
        reason = reply_sanity_rejection(
            reply,
            local_value=value,
            local_error=error,
            delta=self.delta,
            xi=self.network.xi,
            max_error=self.hardening.max_error,
            plausibility_slack=self.hardening.plausibility_slack,
        )
        if reason is not None:
            return reason
        if self.hardening.error_physics:
            return self._error_physics_rejection(reply)
        return None

    # ------------------------------------------------------------ retries

    def _on_round_started(self, round_: _PollRound) -> None:
        retry = self.hardening.retry
        if retry.max_attempts > 1:
            round_.timers.append(
                self.call_after(
                    retry.delay(1, self._hrng),
                    lambda: self._retry_round(round_, attempt=2),
                )
            )

    def _pollable_unsent(self, round_: _PollRound) -> List[str]:
        """Unsent destinations a retry could still usefully reach."""
        quarantine = self.hardening.quarantine
        if quarantine is None:
            return sorted(round_.unsent)
        return [
            name
            for name in sorted(round_.unsent)
            if not self._health(name).is_quarantined(self.now)
        ]

    def _may_revive(self, round_: _PollRound) -> bool:
        if self.hardening.retry.max_attempts <= 1:
            return False
        # Reference-loss edge case: when every unsent destination is
        # benched (or the set is empty), no retry can produce a source —
        # holding the round open for the full timeout would just delay
        # the "no sources" verdict the round close reports upstream.
        return bool(self._pollable_unsent(round_))

    def _retry_round(self, round_: _PollRound, attempt: int) -> None:
        if round_.closed or self._departed:
            return
        if not round_.outstanding and not round_.unsent:
            return
        retry = self.hardening.retry
        quarantine = self.hardening.quarantine
        for destination in sorted(round_.outstanding | round_.unsent):
            revived = destination in round_.unsent
            if (
                revived
                and quarantine is not None
                and self._health(destination).is_quarantined(self.now)
            ):
                continue  # a benched peer's request never left; don't revive it
            self.hardening_stats.retries_sent += 1
            if revived:
                # The original request never left; RTT is measured from
                # this (first successful) transmission instead.
                round_.sent_local[destination] = self.clock_value()
            accepted = self.network.send(
                self.name,
                destination,
                self._prepare_request(
                    TimeRequest(
                        request_id=round_.round_id,
                        origin=self.name,
                        destination=destination,
                        kind=RequestKind.POLL,
                        # A retransmission re-asks the same question: it
                        # reuses the round's recorded nonce so whichever
                        # copy answers first is accepted, and the other is
                        # a duplicate on an already-consumed slot.
                        nonce=round_.nonces.get(destination, 0),
                    )
                ),
            )
            if revived and accepted:
                round_.unsent.discard(destination)
                round_.outstanding.add(destination)
            elif revived:
                del round_.sent_local[destination]
        if attempt < retry.max_attempts:
            round_.timers.append(
                self.call_after(
                    retry.delay(attempt, self._hrng),
                    lambda: self._retry_round(round_, attempt=attempt + 1),
                )
            )
        elif not round_.outstanding:
            # The schedule is exhausted and nothing is in flight: every
            # transmission was refused at send time, so no reply can ever
            # arrive.  End the round now instead of waiting out the
            # timeout; the close path reports the empty source set.
            self._complete_round(round_)

    # ----------------------------------------------------- adaptive timeout

    def _observe_reply(self, reply: TimeReply, rtt_local: float, local_now: float) -> None:
        super()._observe_reply(reply, rtt_local, local_now)
        cfg = self.hardening
        if self._rtt_ewma is None:
            self._rtt_ewma = rtt_local
            self._rtt_dev = rtt_local / 2.0
        else:
            deviation = abs(rtt_local - self._rtt_ewma)
            self._rtt_dev += cfg.rtt_dev_alpha * (deviation - self._rtt_dev)
            self._rtt_ewma += cfg.rtt_alpha * (rtt_local - self._rtt_ewma)
        if cfg.quarantine is not None:
            self._health(reply.server).record_good(cfg.quarantine)

    def _retry_budget(self) -> float:
        """Worst-case time the retry schedule needs (no jitter)."""
        retry = self.hardening.retry
        return sum(retry.delay(k, None) for k in range(1, retry.max_attempts))

    def _effective_round_timeout(self) -> float:
        # The static timeout bounds the wait for any single transmission's
        # answer; the retry budget then EXTENDS the round so the last
        # retransmission still gets a full answer window — otherwise a
        # fast network (static = 4ξ) would close rounds before the first
        # backoff delay ever fires.
        static = super()._effective_round_timeout()
        cfg = self.hardening
        if not cfg.adaptive_timeout or self._rtt_ewma is None:
            return static + self._retry_budget()
        adaptive = cfg.timeout_multiplier * self._rtt_ewma + 4.0 * self._rtt_dev
        window = min(static, max(cfg.min_timeout, adaptive))
        return window + self._retry_budget()

    # ----------------------------------------------------- health feedback

    def _on_round_closed(self, round_: _PollRound) -> None:
        super()._on_round_closed(round_)
        quarantine = self.hardening.quarantine
        if quarantine is None:
            return
        # Unreachable peers (every send refused) are penalised like silent
        # ones — neither produced a reply this round.
        for name in sorted(round_.outstanding | round_.unsent):
            if self._health(name).record_timeout(self.now, quarantine):
                self._note_quarantine(name)

    def _note_inconsistency(self, conflicting: tuple[str, ...]) -> None:
        quarantine = self.hardening.quarantine
        if quarantine is not None:
            for name in conflicting:
                if name == self.name:
                    continue
                if self._health(name).record_inconsistent(self.now, quarantine):
                    self._note_quarantine(name)
            # Quarantined neighbours are unfit arbiters for the paper's
            # unconditional reset: extend the excluded set.
            conflicting = tuple(
                dict.fromkeys(tuple(conflicting) + tuple(self.quarantined_peers()))
            )
        if self._recovery_inflight is None:
            self._recovery_attempts = 0
        super()._note_inconsistency(conflicting)

    # ---------------------------------------------------- recovery retries

    def _recovery_timeout(self, request_id: int) -> None:
        inflight = self._recovery_inflight
        if inflight is None or inflight[0] != request_id:
            return
        retry = self.hardening.retry
        _request_id, arbiter, _sent_local, recovery_nonce = inflight
        quarantine = self.hardening.quarantine
        if quarantine is not None and self._health(arbiter).is_quarantined(
            self.now
        ):
            # The arbiter was benched after this recovery started (its
            # silence may be what benched it): retrying the same benched
            # server would just extend the outage — abandon instead, and
            # the next inconsistency picks a fresh arbiter.
            super()._recovery_timeout(request_id)
            return
        if self._recovery_attempts + 1 < retry.max_attempts:
            self._recovery_attempts += 1
            self.hardening_stats.recovery_retries += 1
            self.network.send(
                self.name,
                arbiter,
                self._prepare_request(
                    TimeRequest(
                        request_id=request_id,
                        origin=self.name,
                        destination=arbiter,
                        kind=RequestKind.RECOVERY,
                        nonce=recovery_nonce,
                    )
                ),
            )
            self._recovery_timeout_event = self.call_after(
                retry.delay(self._recovery_attempts, self._hrng),
                lambda: self._recovery_timeout(request_id),
            )
            return
        super()._recovery_timeout(request_id)
