"""Reference (standard) time servers.

The paper notes a service cannot stay correct with respect to a standard
without *some* communication with the standard.  A reference server models
a machine with access to one — e.g. a radio clock — as an ordinary,
answer-only time server whose clock is the simulator's real-time axis and
whose error is a small constant (the receiver's accuracy), never growing
(``δ = 0``).
"""

from __future__ import annotations

from typing import Optional

from ..clocks.perfect import PerfectClock
from ..network.transport import Network
from ..simulation.engine import SimulationEngine
from ..simulation.trace import TraceRecorder
from .server import TimeServer


class ReferenceServer(TimeServer):
    """An answer-only server pinned to the standard.

    Args:
        engine: The simulation engine.
        name: Topology node name.
        network: Transport.
        receiver_error: The constant maximum error of the standard receiver
            (0 for an ideal standard).
        trace: Optional shared trace recorder.

    The server never polls (``policy=None``) and reports
    ``<t, receiver_error>`` forever: its δ is 0, so rule MM-1's age term
    vanishes.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        network: Network,
        receiver_error: float = 0.0,
        trace: Optional[TraceRecorder] = None,
        **kwargs,
    ) -> None:
        super().__init__(
            engine,
            name,
            clock=PerfectClock(),
            delta=0.0,
            network=network,
            policy=None,
            tau=None,
            initial_error=receiver_error,
            trace=trace,
            **kwargs,
        )
