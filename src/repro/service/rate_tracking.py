"""Section 5 made operational: servers that track neighbour clock *rates*.

The paper's closing observation: a static arrangement of intervals cannot
reveal *why* a service went inconsistent — "instead, the rates of the
servers must be examined."  Two clocks are *consonant* when their measured
rate of separation is within the sum of their claimed drift bounds.

:class:`RateTrackingServer` extends :class:`~repro.service.server.TimeServer`
with that examination:

* It maintains a **raw local timescale** — its clock reading minus the sum
  of all adjustments applied by resets — which advances at the oscillator's
  natural rate regardless of synchronization steps.  (A real implementation
  reads a free-running counter; the subtraction is the simulation
  equivalent.)
* Every poll reply feeds a per-neighbour sliding-window
  :class:`~repro.core.consonance.RateEstimator` with the observed offset of
  the neighbour's clock against the raw timescale.
* :meth:`RateTrackingServer.dissonant_neighbours` names the neighbours
  whose measured separation rate exceeds ``δ_i + δ_j`` (the reply's carried
  δ) — the paper's diagnosis of invalid drift bounds.
* On an inconsistency, the server adds its dissonant neighbours to the
  recovery exclusion set, so *any* recovery strategy avoids picking a
  server with a provably bad rate as its arbiter.  This directly repairs
  the Section 5 breakdown (two bad neighbours poisoning the third-server
  rule): the ``partition`` experiment's poisoned recoveries drop to zero
  once rate tracking is on.

Caveat, faithfully inherited from the paper: the *remote* clock's resets
also perturb the measured offsets.  A healthy neighbour's corrections are
bounded by its (small) error, so the least-squares rate over the window
stays near the truth; a racing neighbour's rate dwarfs them.  The estimator
also reports a hard uncertainty, and the consonance verdict requires the
rate to exceed the bound by more than that uncertainty before flagging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.consonance import RateEstimate, RateEstimator, RateObservation
from .messages import TimeReply
from .server import TimeServer


@dataclass(frozen=True)
class NeighbourRateReport:
    """One neighbour's rate diagnosis.

    Attributes:
        neighbour: The neighbour's name.
        estimate: The current separation-rate estimate (None while the
            window is under-determined).
        remote_delta: The neighbour's claimed δ, as carried in its replies.
        consonant: The verdict: None = unknown, True = within bounds,
            False = provably separating faster than ``δ_i + δ_j``.
    """

    neighbour: str
    estimate: Optional[RateEstimate]
    remote_delta: float
    consonant: Optional[bool]


class RateTrackingServer(TimeServer):
    """A time server that also runs the Section 5 rate machinery.

    Accepts all :class:`TimeServer` arguments plus:

    Args:
        rate_window: Sliding-window size of each neighbour estimator.
        rate_min_span: Minimum raw-clock span before an estimate is
            produced (short spans are reading-error dominated).
    """

    def __init__(self, *args, rate_window: int = 16, rate_min_span: float = 30.0, **kwargs):
        super().__init__(*args, **kwargs)
        self._rate_window = rate_window
        self._rate_min_span = rate_min_span
        self._estimators: Dict[str, RateEstimator] = {}
        self._remote_delta: Dict[str, float] = {}
        self._cumulative_adjustment = 0.0

    # ------------------------------------------------------------ raw time

    @property
    def raw_clock_value(self) -> float:
        """The free-running timescale: clock reading minus all adjustments."""
        return self.clock_value() - self._raw_adjustment()

    def _raw_adjustment(self) -> float:
        """Total correction to subtract when recovering the raw timescale.

        Subclasses whose clocks apply corrections *outside* resets (a
        slewing adapter bleeding an offset into the reading between
        polls) add that contribution here.
        """
        return self._cumulative_adjustment

    def _apply_reset(self, decision, kind: str) -> None:
        before = self.clock.read(self.now)
        super()._apply_reset(decision, kind)
        after = self.clock.read(self.now)
        self._cumulative_adjustment += after - before

    # ------------------------------------------------------------- tracking

    def _observe_reply(self, reply: TimeReply, rtt_local: float, local_now: float) -> None:
        raw_local = local_now - self._raw_adjustment()
        estimator = self._estimators.get(reply.server)
        if estimator is None:
            estimator = RateEstimator(
                window=self._rate_window, min_span=self._rate_min_span
            )
            self._estimators[reply.server] = estimator
        # Midpoint delay compensation; the reading error budget is the
        # remote interval plus the unresolvable delay asymmetry.
        offset = reply.clock_value + rtt_local / 2.0 - raw_local
        reading_error = reply.error + rtt_local / 2.0
        estimator.add(
            RateObservation(
                local_time=raw_local, offset=offset, reading_error=reading_error
            )
        )
        self._remote_delta[reply.server] = reply.delta

    def rate_report(self, neighbour: str) -> NeighbourRateReport:
        """The current diagnosis for one neighbour."""
        estimator = self._estimators.get(neighbour)
        estimate = estimator.estimate() if estimator is not None else None
        remote_delta = self._remote_delta.get(neighbour, 0.0)
        verdict: Optional[bool] = None
        if estimate is not None:
            # Diagnostic margin: the statistical noise when the sample path
            # is actually linear, never exceeding the hard worst-case bound.
            allowance = self.delta + remote_delta + estimate.noise
            verdict = abs(estimate.rate) <= allowance
        return NeighbourRateReport(
            neighbour=neighbour,
            estimate=estimate,
            remote_delta=remote_delta,
            consonant=verdict,
        )

    def rate_reports(self) -> Dict[str, NeighbourRateReport]:
        """Diagnoses for every neighbour heard from so far."""
        return {name: self.rate_report(name) for name in sorted(self._estimators)}

    def dissonant_neighbours(self) -> list[str]:
        """Neighbours provably separating faster than the claimed bounds."""
        return [
            name
            for name, report in self.rate_reports().items()
            if report.consonant is False
        ]

    def self_suspect(self) -> bool:
        """Whether this server's *own* rate is the likely problem.

        If a majority of measured neighbours are dissonant **and** their
        separation rates share a sign, the common-mode explanation is the
        local oscillator: everyone else appears to drift the same way
        because *we* are the one drifting.  This closes a blind spot of
        pure neighbour-flagging: a bad clock that is continually yanked
        back by recovery shows its peers a near-zero net rate (the resets
        cancel the drift in their observations), but its own free-running
        raw timescale still sees the whole service receding coherently.
        """
        reports = [r for r in self.rate_reports().values() if r.estimate is not None]
        if len(reports) < 2:
            return False
        dissonant = [r for r in reports if r.consonant is False]
        if 2 * len(dissonant) <= len(reports):
            return False
        signs = {1 if r.estimate.rate > 0 else -1 for r in dissonant}  # type: ignore[union-attr]
        return len(signs) == 1

    # ------------------------------------------------------------- recovery

    def _note_inconsistency(self, conflicting: tuple[str, ...]) -> None:
        # Widen the recovery exclusion set with every neighbour whose rate
        # is provably bad: the Section 5 fix for arbiter poisoning.
        widened = tuple(dict.fromkeys(conflicting + tuple(self.dissonant_neighbours())))
        super()._note_inconsistency(widened)
