"""Wire messages of the time service.

The protocol is the paper's: a :class:`TimeRequest` asks a server for the
time; a :class:`TimeReply` carries the pair ``<C_j(t), E_j(t)>`` computed by
rule MM-1 at the instant the request is answered.  Requests are tagged with
a purpose so the receiving *requester* can route the reply:

* ``poll`` — a rule MM-2 / IM-2 synchronization round;
* ``client`` — an application asking the time;
* ``recovery`` — a Section 3 third-server recovery fetch.

Messages are immutable value objects; everything mutable lives in the
server/client state machines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.intervals import TimeInterval


class RequestKind(enum.Enum):
    """Why a time request was sent (drives reply routing at the requester)."""

    POLL = "poll"
    CLIENT = "client"
    RECOVERY = "recovery"


class ReplyStatus(enum.Enum):
    """How a reply was produced — the overload subsystem's extension.

    The paper's servers answer every request instantly and for free, so
    every reply is ``OK``.  A :class:`~repro.load.server.LoadAwareServer`
    can instead shed or degrade under load:

    * ``OK`` — a fresh rule MM-1 answer (the paper's reply).
    * ``DEGRADED`` — served from the overload cache: a stale ``⟨C, E⟩``
      whose error was inflated by ``ρ·age`` so the interval still contains
      the true time (Theorem 1 correctness preserved, accuracy shed).
    * ``BUSY`` — no time at all: the request was shed by admission
      control; ``retry_after`` hints when to try again.  A BUSY reply's
      ``clock_value``/``error`` fields are meaningless and must never be
      fed to a synchronization policy or a client combination rule.
    """

    OK = "ok"
    DEGRADED = "degraded"
    BUSY = "busy"


@dataclass(frozen=True)
class TimeRequest:
    """A request for the time.

    Attributes:
        request_id: Requester-local identifier echoed in the reply; for
            poll rounds this is the round number.
        origin: Name of the requesting process.
        destination: Name of the server being asked (lets one broadcast
            build per-destination copies).
        kind: Purpose of the request.
        nonce: Per-request freshness token drawn by the requester and
            echoed verbatim in the reply.  Reply acceptance is keyed on
            it (not just the round id), so a recorded or re-delivered
            reply from an earlier exchange can never be double-counted
            even if its ``request_id`` happens to collide.  ``0`` means
            "no nonce" (client queries, legacy tests).
        auth: Authentication tag ``(key_id, seq, mac)`` attached by the
            security layer (:mod:`repro.security.auth`); empty when the
            cluster runs unauthenticated.
    """

    request_id: int
    origin: str
    destination: str
    kind: RequestKind = RequestKind.POLL
    nonce: int = 0
    auth: tuple = ()


@dataclass(frozen=True)
class TimeReply:
    """A server's answer: the rule MM-1 pair ``<C_j, E_j>``.

    Attributes:
        request_id: Echo of the request's identifier.
        server: Name of the answering server ``S_j``.
        destination: Name of the requester (echo of ``origin``).
        clock_value: ``C_j(t)`` at the instant of answering.
        error: ``E_j(t)`` at the instant of answering.
        kind: Echo of the request kind.
        delta: The answering server's claimed maximum drift rate ``δ_j``.
            Not used by rules MM-2/IM-2 (the paper's replies carry only
            ``<C, E>``), but needed by the Section 5 consonance machinery,
            whose predicate is ``|rate| <= δ_i + δ_j``.
        epoch: The answering server's consistency-group merge epoch
            (0 for servers without the recovery subsystem); lets the
            stabilizer prefer arbiters from recently-consolidated groups.
        verdicts: Piggybacked consistency-census gossip — a tuple of
            ``(observer, subject, ok, age)`` quadruples (empty for servers
            without the recovery subsystem).  See
            :mod:`repro.recovery.census`.
        status: How the reply was produced (see :class:`ReplyStatus`);
            always ``OK`` for the paper's servers.
        retry_after: For ``BUSY`` replies: the server's hint, in seconds,
            of how long the requester should back off before retrying
            (0 when the server has no estimate).
        nonce: Echo of the request's freshness nonce (0 when the request
            carried none).
        auth: Authentication tag ``(key_id, seq, mac)`` attached by the
            security layer; empty when the cluster runs unauthenticated.
    """

    request_id: int
    server: str
    destination: str
    clock_value: float
    error: float
    kind: RequestKind = RequestKind.POLL
    delta: float = 0.0
    epoch: int = 0
    verdicts: tuple = ()
    status: ReplyStatus = ReplyStatus.OK
    retry_after: float = 0.0
    nonce: int = 0
    auth: tuple = ()

    @property
    def interval(self) -> TimeInterval:
        """The reply as the interval ``[C_j - E_j, C_j + E_j]``."""
        return TimeInterval.from_center_error(self.clock_value, self.error)
