"""The time server process.

:class:`TimeServer` implements the server side of both algorithms:

* **Rule MM-1 / IM-1** — answering requests.  The server maintains its
  clock ``C_i``, the clock value at its last reset ``r_i``, and the
  inherited error ``ε_i``; it reports
  ``E_i(t) = ε_i + (C_i(t) - r_i)·δ_i``.
* **Rule MM-2 / IM-2** — synchronizing.  Every ``τ`` seconds the server
  broadcasts a time request to its neighbours.  The pluggable
  :class:`~repro.core.sync.SynchronizationPolicy` decides what to do with
  the replies: incrementally (MM) or as a completed round (IM and the
  baselines).
* **Section 3 recovery** — on detecting an inconsistency, optionally fetch
  the time unconditionally from a third server chosen by a
  :class:`~repro.core.recovery.RecoveryStrategy`.

Correctness bookkeeping subtleties faithfully reproduced:

* Round trips are measured on the *local clock* (``ξ^i_j``) and inflated by
  ``(1 + δ_i)`` wherever the rules say so.
* After a reset the server re-reads its clock to obtain ``r_i``: a clock
  that "refuses to change its value when reset" (a failure mode from
  Section 1.1) therefore silently corrupts the server's error bookkeeping —
  exactly the hazard the paper describes.
* Batch policies receive replies *aged* to the round's end: each reply's
  centre is advanced by the local clock's elapsed time since receipt and
  its error widened by ``δ_i`` times that elapsed time, so correctness is
  preserved while the round is open.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..clocks.base import Clock
from ..core.recovery import RecoveryStrategy
from ..core.sync import LocalState, Reply, SynchronizationPolicy
from ..network.transport import Network
from ..simulation.engine import SimulationEngine
from ..simulation.process import SimProcess
from ..simulation.trace import TraceRecorder
from ..telemetry.instruments import (
    NULL_SERVER_TELEMETRY,
    RoundTelemetry,
    ServerTelemetry,
)
from .idspace import RECOVERY_ID_SPACE, NonceSequence, RequestIdAllocator
from .messages import ReplyStatus, RequestKind, TimeReply, TimeRequest


@dataclass
class _PendingReply:
    """A batch-policy reply held until the round completes."""

    reply: Reply
    local_at_receipt: float


@dataclass
class _PollRound:
    """State of one open synchronization round."""

    round_id: int
    sent_local: Dict[str, float] = field(default_factory=dict)
    nonces: Dict[str, int] = field(default_factory=dict)
    outstanding: set[str] = field(default_factory=set)
    unsent: set[str] = field(default_factory=set)  # transport-dropped at send
    pending: list[_PendingReply] = field(default_factory=list)
    timers: list = field(default_factory=list)  # events cancelled at close
    closed: bool = False
    tele: Optional[RoundTelemetry] = None  # span context (None when disabled)

    def cancel_timers(self) -> None:
        """Drop the round's scheduled events so a completed round does not
        linger on the engine heap (closure retention under high volume)."""
        for event in self.timers:
            event.cancel()
        self.timers.clear()


@dataclass
class ServerStats:
    """Counters for analysis and tests."""

    rounds: int = 0
    replies_handled: int = 0
    resets: int = 0
    rejects: int = 0
    inconsistencies: int = 0
    recovery_resets: int = 0
    requests_answered: int = 0
    polls_unsent: int = 0  # poll requests the transport dropped at send time
    polls_pruned: int = 0  # pending slots dropped on mid-round neighbour loss
    invalid_replies: int = 0  # replies rejected by _validate_reply
    requests_refused: int = 0  # inbound requests rejected by _admit_request


class TimeServer(SimProcess):
    """One time server ``S_i``.

    Args:
        engine: The simulation engine.
        name: Server name; must match a topology node.
        clock: The server's hardware clock (any :class:`Clock`, including
            failure wrappers).
        delta: ``δ_i`` — the *claimed* maximum drift rate used by rule MM-1
            and the round-trip inflation.  May be invalid relative to the
            actual clock, which is how the fault experiments are built.
        network: Transport used to reach neighbours.
        policy: Synchronization policy (MM, IM, or a baseline); None makes
            the server answer-only (it never polls) — used for reference
            servers.
        tau: Poll period τ in seconds; required when ``policy`` is not None.
        initial_error: ``ε_i`` at start (the error inherited from however
            the clock was initially set).
        round_timeout: How long a round stays open waiting for replies.
            Defaults to ``min(τ/2, 4·ξ)`` — comfortably beyond the slowest
            round trip yet well inside the period.
        recovery: Strategy consulted on inconsistencies; None disables
            recovery (inconsistent replies are only ignored/logged).
        error_physics: Enforce the rule MM-1 growth clamp in
            :meth:`_validate_reply` — reject replies whose claimed error
            grew slower than ``δ_j`` allows since the neighbour's last
            observed report (see :meth:`_error_physics_rejection`).
            Default False: the paper's servers trust each other, and the
            hardened/Byzantine subclasses opt in instead.
        trace: Optional shared trace recorder.
        poll_jitter: Optional callable giving additive jitter to each poll
            gap, de-phasing the servers' rounds.
        first_poll_at: Absolute time of the first synchronization round
            (defaults to one full period after start); the builder uses it
            to stagger the servers' round phases deterministically.
        telemetry: Per-server telemetry handle (see
            :class:`~repro.telemetry.instruments.ServerTelemetry`); None
            uses the null handle, making every instrument call a no-op.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        clock: Clock,
        delta: float,
        network: Network,
        policy: Optional[SynchronizationPolicy] = None,
        tau: Optional[float] = None,
        *,
        initial_error: float = 0.0,
        round_timeout: Optional[float] = None,
        recovery: Optional[RecoveryStrategy] = None,
        error_physics: bool = False,
        trace: Optional[TraceRecorder] = None,
        poll_jitter=None,
        first_poll_at: Optional[float] = None,
        telemetry: Optional[ServerTelemetry] = None,
    ) -> None:
        super().__init__(engine, name)
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        if initial_error < 0:
            raise ValueError(
                f"initial_error must be non-negative, got {initial_error}"
            )
        if policy is not None and (tau is None or tau <= 0):
            raise ValueError("a polling server needs a positive tau")
        self.clock = clock
        self.delta = float(delta)
        self.network = network
        self.policy = policy
        self.tau = tau
        self.recovery = recovery
        self.trace = trace
        self.telemetry = telemetry if telemetry is not None else NULL_SERVER_TELEMETRY
        self.stats = ServerStats()
        self._poll_jitter = poll_jitter
        self._first_poll_at = first_poll_at
        if round_timeout is None and tau is not None:
            round_timeout = min(tau / 2.0, 4.0 * max(network.xi, 1e-6))
        self._round_timeout = round_timeout
        self._epsilon = float(initial_error)
        self._last_reset_value: Optional[float] = None  # r_i; set on start
        self._round: Optional[_PollRound] = None
        self._round_counter = 0
        self._round_inconsistent: set[str] = set()
        self._prev_round_inconsistent: set[str] = set()
        self._recovery_inflight: Optional[tuple[int, str, float, int]] = None
        self._recovery_timeout_event = None
        # Distinct id space from rounds (see repro.service.idspace).
        self._recovery_ids = RequestIdAllocator(RECOVERY_ID_SPACE)
        # Per-request freshness nonces: name-salted so two servers never
        # draw the same sequence, counting so one server never reuses one.
        self._nonces = NonceSequence(name)
        self._departed = False
        self._rejoin_count = 0
        self._error_physics = bool(error_physics)
        # Last observed <C_j, E_j> per neighbour, valid or not — the
        # error-physics clamp needs the previous *claim* to test growth.
        self._last_reports: Dict[str, tuple[float, float]] = {}
        self._physics_strikes: Dict[str, int] = {}

    # ------------------------------------------------------------- MM-1/IM-1

    @property
    def epsilon(self) -> float:
        """The inherited error ``ε_i``."""
        return self._epsilon

    @property
    def last_reset_value(self) -> Optional[float]:
        """``r_i`` — the clock value recorded at the last reset."""
        return self._last_reset_value

    def clock_value(self) -> float:
        """``C_i(now)``."""
        return self.clock.read(self.now)

    def error(self) -> float:
        """``E_i(now) = ε_i + (C_i(now) - r_i)·δ_i`` (rule MM-1)."""
        value = self.clock_value()
        if self._last_reset_value is None:
            return self._epsilon
        age = max(0.0, value - self._last_reset_value)
        return self._epsilon + age * self.delta

    def report(self) -> tuple[float, float]:
        """The rule MM-1 pair ``(C_i(now), E_i(now))``."""
        value = self.clock_value()
        if self._last_reset_value is None:
            error = self._epsilon
        else:
            error = self._epsilon + max(0.0, value - self._last_reset_value) * self.delta
        return value, error

    def local_state(self) -> LocalState:
        """Snapshot for the synchronization policy."""
        value, error = self.report()
        return LocalState(clock_value=value, error=error, delta=self.delta)

    def true_error(self) -> float:
        """Actual offset from real time, ``|C_i(now) - now|`` (oracle only)."""
        return abs(self.clock_value() - self.now)

    def is_correct(self) -> bool:
        """Oracle check: does the reported interval contain the true time?"""
        value, error = self.report()
        return value - error <= self.now <= value + error

    # -------------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        self._last_reset_value = self.clock.read(self.now)
        if self.policy is not None and self.tau is not None:
            self.every(
                self.tau,
                self._start_round,
                first_at=self._first_poll_at,
                jitter=self._poll_jitter,
            )

    # ----------------------------------------------------------- membership

    @property
    def departed(self) -> bool:
        """Whether the server has temporarily left the service."""
        return self._departed

    def leave(self) -> None:
        """Temporarily leave the service (paper Section 1.1: servers "can
        frequently join or leave").

        A departed server neither answers requests nor polls; its clock
        keeps running (and drifting).  Idempotent.
        """
        if self._departed:
            return
        self._departed = True
        for task in self._periodic_tasks:
            task.cancel()
        self._periodic_tasks.clear()
        if self._round is not None:
            if not self._round.closed:
                self.telemetry.round_closed(
                    self._round.tele, self.now, "abandoned"
                )
            self._round.closed = True
            self._round.cancel_timers()
        if self._recovery_inflight is not None:
            self._recovery_inflight = None
            self._cancel_recovery_timer()
            if self.recovery is not None:
                self.recovery.note_timed_out()
        self._trace("leave")

    def rejoin(self, initial_error: float) -> None:
        """Return to service with a fresh inherited error.

        Args:
            initial_error: The rejoining ε_i — typically large (an
                operator-set clock), letting MM/IM pull the server back in
                over subsequent rounds.

        Raises:
            ValueError: If ``initial_error`` is negative.
        """
        if initial_error < 0:
            raise ValueError(
                f"initial_error must be non-negative, got {initial_error}"
            )
        if not self._departed:
            return
        self._departed = False
        self._rejoin_count += 1
        self._epsilon = float(initial_error)
        self._last_reset_value = self.clock.read(self.now)
        self._round_inconsistent = set()
        self._prev_round_inconsistent = set()
        if self.policy is not None and self.tau is not None:
            # Re-derive a deterministic phase offset: churn tends to fire
            # rejoins at correlated times (e.g. after a healed partition),
            # and restarting every returning server exactly one period
            # later would lock their rounds into the same phase.  Hash the
            # name and rejoin ordinal into a fraction of τ instead.
            key = f"rejoin/{self.name}/{self._rejoin_count}"
            frac = (zlib.crc32(key.encode("utf-8")) % 9973) / 9973.0
            first = self.now + self.tau * (0.5 + 0.5 * frac)
            self.every(
                self.tau,
                self._start_round,
                first_at=first,
                jitter=self._poll_jitter,
            )
        self._trace("rejoin", initial_error=initial_error)

    # --------------------------------------------------------------- serving

    def on_message(self, message, sender) -> None:
        if self._departed:
            return
        if isinstance(message, TimeRequest):
            self._answer(message)
        elif isinstance(message, TimeReply):
            self._handle_reply(message)

    def _answer(self, request: TimeRequest) -> None:
        refusal = self._admit_request(request)
        if refusal is not None:
            self.stats.requests_refused += 1
            self._trace(
                "request_refused", origin=request.origin, reason=refusal
            )
            return
        value, error = self.report()
        self.stats.requests_answered += 1
        self.telemetry.answered(request.kind)
        reply = TimeReply(
            request_id=request.request_id,
            server=self.name,
            destination=request.origin,
            clock_value=value,
            error=error,
            kind=request.kind,
            delta=self.delta,
            nonce=request.nonce,
            **self._reply_extras(),
        )
        self.network.send(self.name, request.origin, self._prepare_reply(reply))

    def _reply_extras(self) -> dict:
        """Hook: extra :class:`TimeReply` fields for outgoing answers.

        The base server's replies carry exactly the paper's payload;
        :class:`~repro.recovery.server.SelfStabilizingServer` piggybacks
        its merge epoch and census gossip here.
        """
        return {}

    # ------------------------------------------------------------- security

    def _next_nonce(self) -> int:
        """A fresh per-request nonce (name-salted counter, never reused)."""
        return self._nonces.next()

    def _prepare_request(self, request: TimeRequest) -> TimeRequest:
        """Hook: last touch on an outgoing request (the security layer
        signs it here).  The base server sends requests as built."""
        return request

    def _prepare_reply(self, reply: TimeReply) -> TimeReply:
        """Hook: last touch on an outgoing reply (the security layer
        signs it here).  The base server sends replies as built."""
        return reply

    def _admit_request(self, request: TimeRequest) -> Optional[str]:
        """Hook: gate an inbound request before it is answered.

        Return None to serve it or a short reason string to refuse.  The
        base server answers everything (the paper's servers are open);
        the security layer refuses unauthenticated or replayed requests.
        """
        return None

    def _admit_reply(
        self, reply: TimeReply, rtt_local: float
    ) -> tuple[Optional[str], float]:
        """Hook: gate an accepted-looking reply once its RTT is known.

        Runs after :meth:`_validate_reply` (which has no RTT) and before
        the reply reaches the policy.  Returns ``(rejection, widen)``:
        ``rejection`` None to accept, else a short reason; ``widen`` is
        extra error (seconds) to add to the adopted interval — the delay
        guard's compensation for a plausible-but-suspect transit.
        """
        return None, 0.0

    # -------------------------------------------------------------- polling

    def _poll_targets(self) -> list[str]:
        """Hook: which neighbours this round polls.

        The base server polls every topology neighbour; the hardened
        server excludes quarantined ones.
        """
        return self.network.neighbours(self.name)

    def _effective_round_timeout(self) -> float:
        """Hook: how long the round now starting stays open."""
        return self._round_timeout if self._round_timeout is not None else 1.0

    def _start_round(self) -> None:
        if self.policy is None:
            return
        # A still-open previous round is closed first (slow networks).
        if self._round is not None and not self._round.closed:
            self._complete_round(self._round)
        self._prev_round_inconsistent = self._round_inconsistent
        self._round_inconsistent = set()
        self._round_counter += 1
        round_ = _PollRound(round_id=self._round_counter)
        self._round = round_
        self.stats.rounds += 1
        round_.tele = self.telemetry.round_started(self.now, round_.round_id)
        for destination in self._poll_targets():
            round_.sent_local[destination] = self.clock_value()
            nonce = self._next_nonce()
            round_.nonces[destination] = nonce
            accepted = self.network.send(
                self.name,
                destination,
                self._prepare_request(
                    TimeRequest(
                        request_id=round_.round_id,
                        origin=self.name,
                        destination=destination,
                        kind=RequestKind.POLL,
                        nonce=nonce,
                    )
                ),
            )
            self.telemetry.poll_sent(round_.tele, self.now, destination, accepted)
            if accepted:
                round_.outstanding.add(destination)
            else:
                # The transport dropped the request at send time (link
                # down, partitioned, or lost on the request leg): no reply
                # can ever arrive, so don't make the round wait for one.
                del round_.sent_local[destination]
                round_.unsent.add(destination)
                self.stats.polls_unsent += 1
        if not round_.outstanding and not self._may_revive(round_):
            self._complete_round(round_)
            return
        self._on_round_started(round_)
        timeout = self._effective_round_timeout()
        round_.timers.append(
            self.call_after(timeout, lambda: self._round_timeout_fired(round_))
        )

    def _on_round_started(self, round_: _PollRound) -> None:
        """Hook: called once per round after its requests went out.

        The base server ignores it; the hardened server arms its
        per-neighbour retry schedule here.
        """

    def _may_revive(self, round_: _PollRound) -> bool:
        """Hook: can send-time-dropped polls still be retransmitted?

        The base server never retries, so a round with nothing outstanding
        is closed immediately; the hardened server keeps it open while its
        retry schedule could still reach an ``unsent`` neighbour.
        """
        return False

    def _round_timeout_fired(self, round_: _PollRound) -> None:
        if not round_.closed:
            self._complete_round(round_)

    def neighbour_detached(self, neighbour: str) -> None:
        """Topology change: the edge to ``neighbour`` vanished mid-round.

        The topology-driven twin of the send-failure pruning in
        :meth:`_start_round`: once the edge is gone no reply (and no
        retry) can arrive over it, so the pending slot is dropped instead
        of waited out, and the round closes immediately when nothing else
        is outstanding.  A reply already received from the neighbour this
        round stays usable — it was gathered while the edge existed.
        Called by the dynamic-topology layer on both endpoints of every
        removed edge; a no-op when no round is open or the neighbour was
        not being polled.
        """
        round_ = self._round
        if round_ is None or round_.closed:
            return
        pruned = neighbour in round_.outstanding or neighbour in round_.unsent
        if not pruned:
            return
        round_.outstanding.discard(neighbour)
        round_.unsent.discard(neighbour)
        self.stats.polls_pruned += 1
        self._trace("poll_pruned", server=neighbour)
        self.telemetry.reply_verdict(round_.tele, self.now, neighbour, "pruned")
        if not round_.outstanding and not self._may_revive(round_):
            self._complete_round(round_)

    def _handle_reply(self, reply: TimeReply) -> None:
        if reply.kind is RequestKind.RECOVERY:
            self._handle_recovery_reply(reply)
            return
        round_ = self._round
        if (
            round_ is None
            or round_.closed
            or reply.request_id != round_.round_id
            or reply.server not in round_.outstanding
            or reply.nonce != round_.nonces.get(reply.server)
        ):
            return  # late, duplicate, stale, or wrong-nonce reply
        round_.outstanding.discard(reply.server)
        rejection = self._validate_reply(reply)
        self._note_report(reply)
        if rejection is not None:
            self.stats.invalid_replies += 1
            self._trace("invalid_reply", server=reply.server, reason=rejection)
            self.telemetry.reply_invalid(round_.tele, self.now, reply.server, rejection)
            if not round_.outstanding and not self._may_revive(round_):
                self._complete_round(round_)
            return
        local_now = self.clock_value()
        rtt_local = max(0.0, local_now - round_.sent_local[reply.server])
        rejection, widen = self._admit_reply(reply, rtt_local)
        if rejection is not None:
            self.stats.invalid_replies += 1
            self._trace("invalid_reply", server=reply.server, reason=rejection)
            self.telemetry.reply_invalid(round_.tele, self.now, reply.server, rejection)
            if not round_.outstanding and not self._may_revive(round_):
                self._complete_round(round_)
            return
        self.stats.replies_handled += 1
        self.telemetry.reply_observed(
            round_.tele, self.now, reply.server, rtt_local,
            (1.0 + self.delta) * rtt_local,
        )
        self._observe_reply(reply, rtt_local, local_now)
        policy_reply = Reply(
            server=reply.server,
            clock_value=reply.clock_value,
            error=reply.error + widen,
            rtt_local=rtt_local,
        )
        assert self.policy is not None
        if self.policy.incremental:
            outcome = self.policy.on_reply(self.local_state(), policy_reply)
            if not outcome.consistent:
                self.telemetry.reply_verdict(
                    round_.tele, self.now, reply.server, "inconsistent"
                )
                self._note_inconsistency((reply.server,))
            elif outcome.decision is not None:
                self.telemetry.reply_verdict(
                    round_.tele, self.now, reply.server, "adopted"
                )
                self._apply_reset(outcome.decision, kind="sync")
            else:
                self.stats.rejects += 1
                self._trace("reject", server=reply.server)
                self.telemetry.reply_verdict(
                    round_.tele, self.now, reply.server, "rejected"
                )
        else:
            self.telemetry.reply_verdict(
                round_.tele, self.now, reply.server, "received"
            )
            round_.pending.append(
                _PendingReply(reply=policy_reply, local_at_receipt=local_now)
            )
        if not round_.outstanding and not self._may_revive(round_):
            self._complete_round(round_)

    def _validate_reply(self, reply: TimeReply) -> Optional[str]:
        """Hook: sanity-check a poll/recovery reply before it is used.

        Return None to accept or a short reason string to reject.  The
        base server accepts everything (the paper's servers trust each
        other) unless ``error_physics`` opted into the rule MM-1 growth
        clamp; :class:`~repro.service.hardening.HardenedTimeServer`
        additionally rejects NaN/negative/implausible ``⟨C_j, E_j⟩``
        pairs here.
        """
        if reply.status is ReplyStatus.BUSY:
            # A BUSY reply carries no time at all; it must never reach a
            # synchronization policy or become a recovery reset.
            return "busy reply"
        if self._error_physics:
            return self._error_physics_rejection(reply)
        return None

    def _note_report(self, reply: TimeReply) -> None:
        """Remember a neighbour's last observed (finite) ``⟨C_j, E_j⟩``."""
        if (
            math.isfinite(reply.clock_value)
            and math.isfinite(reply.error)
            and reply.error >= 0.0
        ):
            self._last_reports[reply.server] = (reply.clock_value, reply.error)

    def _error_physics_rejection(
        self,
        reply: TimeReply,
        *,
        tolerance: float = 0.5,
        slack: float = 1e-9,
        strikes_to_reject: int = 2,
    ) -> Optional[str]:
        """The rule MM-1 growth clamp: is the claimed error physical?

        Between two reports with no reset in between, MM-1 makes a
        server's error grow *exactly* ``δ_j`` per local second:
        ``E_j(t) = ε_j + (C_j(t) - r_j)·δ_j``.  A shrink is presumed to
        be a legitimate reset; but an error that *grew* while growing
        slower than ``δ_j · elapsed`` (minus ``tolerance``'s fraction
        and a float-rounding ``slack``) is non-physical — exactly the
        signature of a liar rescaling its reported error.  A legitimate
        reset can land the error inside the mandated-growth window by
        coincidence, so a reply is only rejected on the
        ``strikes_to_reject``-th *consecutive* non-physical observation:
        coincidences don't repeat, liars do (every round).
        """
        last = self._last_reports.get(reply.server)
        if last is None:
            return None
        last_value, last_error = last
        elapsed = reply.clock_value - last_value
        if elapsed <= 0.0:
            return None  # reordered/duplicate claim; other checks apply
        if reply.error < last_error:
            self._physics_strikes[reply.server] = 0
            return None  # presumed reset
        mandated = reply.delta * elapsed
        growth = reply.error - last_error
        if growth + slack < mandated * (1.0 - tolerance):
            strikes = self._physics_strikes.get(reply.server, 0) + 1
            self._physics_strikes[reply.server] = strikes
            if strikes >= strikes_to_reject:
                return "non-physical error growth"
            return None
        self._physics_strikes[reply.server] = 0
        return None

    def _complete_round(self, round_: _PollRound) -> None:
        if round_.closed:
            return
        round_.closed = True
        round_.cancel_timers()
        self._on_round_closed(round_)
        assert self.policy is not None
        if self.policy.incremental:
            self.telemetry.round_closed(round_.tele, self.now, "ok")
            return  # MM already acted reply-by-reply
        local_now = self.clock_value()
        aged: list[Reply] = []
        for pending in round_.pending:
            elapsed_local = max(0.0, local_now - pending.local_at_receipt)
            original = pending.reply
            aged.append(
                Reply(
                    server=original.server,
                    clock_value=original.clock_value + elapsed_local,
                    error=original.error + self.delta * elapsed_local,
                    rtt_local=original.rtt_local,
                )
            )
        outcome = self.policy.on_round_complete(self.local_state(), aged)
        self._on_round_outcome(outcome)
        if not outcome.consistent:
            self.telemetry.round_closed(round_.tele, self.now, "inconsistent")
            self._note_inconsistency(outcome.conflicting)
            return
        if outcome.decision is not None:
            self.telemetry.round_closed(
                round_.tele, self.now, "reset", source=outcome.decision.source
            )
            self._apply_reset(outcome.decision, kind="sync")
        else:
            self.telemetry.round_closed(round_.tele, self.now, "no_reset")

    def _on_round_closed(self, round_: _PollRound) -> None:
        """Hook: called as a round closes, before the policy's round hook.

        ``round_.outstanding`` still names the neighbours that never
        answered; the hardened server feeds its health scores from it.
        """

    def _on_round_outcome(self, outcome) -> None:
        """Hook: called with every batch round's policy outcome.

        Runs before the server acts on it (reset or recovery).  The base
        server ignores it; :class:`~repro.byzantine.server.
        ByzantineTolerantServer` feeds its reputation tracker, fault
        budget and census from the FT-IM classification here.
        """

    # --------------------------------------------------------------- resets

    def _apply_reset(self, decision, kind: str) -> None:
        self.clock.set(self.now, decision.clock_value)
        # Read back: a stuck clock ignores the set, and the server has no
        # way to know — its bookkeeping then underestimates the error,
        # faithfully reproducing the paper's failure mode.
        self._last_reset_value = self.clock.read(self.now)
        self._epsilon = decision.inherited_error
        self.stats.resets += 1
        if kind == "recovery":
            self.stats.recovery_resets += 1
        self._trace(
            "reset",
            from_server=decision.source,
            new_value=decision.clock_value,
            new_error=decision.inherited_error,
            reset_kind=kind,
        )
        ctx = self._round.tele if (kind == "sync" and self._round is not None) else None
        self.telemetry.reset(
            self.now, kind, decision.source, decision.inherited_error, ctx
        )

    # ------------------------------------------------------------- recovery

    def _note_inconsistency(self, conflicting: tuple[str, ...]) -> None:
        self.stats.inconsistencies += 1
        self._trace("inconsistent", conflicting=",".join(conflicting))
        self.telemetry.inconsistency(self.now, conflicting)
        self._round_inconsistent.update(conflicting)
        if self.recovery is None:
            return
        self.recovery.note_inconsistency()
        if self._recovery_inflight is not None:
            return  # one recovery at a time
        # Exclude every neighbour flagged inconsistent this round *or*
        # the previous one, not just the servers in this event: with MM's
        # incremental evaluation the recovery fires on the round's first
        # inconsistent reply, before the second liar of a Figure 4 pair
        # has been flagged this round — the previous round's flags are
        # what stop the arbiter being that second liar.
        flagged = self._round_inconsistent | self._prev_round_inconsistent
        banned = tuple(conflicting) + tuple(
            sorted(flagged - set(conflicting))
        )
        neighbours = self.network.neighbours(self.name)
        arbiter = self.recovery.choose_arbiter(self.name, neighbours, banned)
        if arbiter is None and set(banned) != set(conflicting):
            # The widened ban starved the choice — a server whose *own*
            # clock is bad flags every neighbour, and refusing to recover
            # at all would strand it.  Under the paper's rule some arbiter
            # beats none: retry banning only this event's conflicting set.
            arbiter = self.recovery.choose_arbiter(
                self.name, neighbours, conflicting
            )
        if arbiter is None:
            return
        request_id = self._recovery_ids.allocate()
        nonce = self._next_nonce()
        self._recovery_inflight = (request_id, arbiter, self.clock_value(), nonce)
        self.recovery.note_started()
        self._trace("recovery_start", arbiter=arbiter)
        self.telemetry.recovery(self.now, "started", arbiter)
        self.network.send(
            self.name,
            arbiter,
            self._prepare_request(
                TimeRequest(
                    request_id=request_id,
                    origin=self.name,
                    destination=arbiter,
                    kind=RequestKind.RECOVERY,
                    nonce=nonce,
                )
            ),
        )
        # Give up on a lost recovery reply after the round timeout.
        timeout = self._round_timeout if self._round_timeout is not None else 1.0
        self._recovery_timeout_event = self.call_after(
            timeout, lambda: self._recovery_timeout(request_id)
        )

    def _cancel_recovery_timer(self) -> None:
        """Drop the give-up timer once its recovery attempt is resolved,
        so completed recoveries don't pile timers on the engine heap."""
        if self._recovery_timeout_event is not None:
            self._recovery_timeout_event.cancel()
            self._recovery_timeout_event = None

    def _recovery_timeout(self, request_id: int) -> None:
        if (
            self._recovery_inflight is not None
            and self._recovery_inflight[0] == request_id
        ):
            self._recovery_inflight = None
            self._recovery_timeout_event = None
            if self.recovery is not None:
                self.recovery.note_timed_out()
            self._trace("recovery_timeout")
            self.telemetry.recovery(self.now, "timeout")

    def _handle_recovery_reply(self, reply: TimeReply) -> None:
        if self._recovery_inflight is None:
            return
        request_id, arbiter, sent_local, nonce = self._recovery_inflight
        if (
            reply.request_id != request_id
            or reply.server != arbiter
            or reply.nonce != nonce
        ):
            return
        rejection = self._validate_reply(reply)
        self._note_report(reply)
        rtt_local = max(0.0, self.clock_value() - sent_local)
        widen = 0.0
        if rejection is None:
            rejection, widen = self._admit_reply(reply, rtt_local)
        if rejection is not None:
            # A poisoned arbiter reply must not become an unconditional
            # reset; abandon the recovery attempt instead.
            self._recovery_inflight = None
            self._cancel_recovery_timer()
            self.stats.invalid_replies += 1
            if self.recovery is not None:
                self.recovery.note_timed_out()
            self._trace("invalid_reply", server=reply.server, reason=rejection)
            self.telemetry.recovery(self.now, "abandoned")
            return
        self._recovery_inflight = None
        self._cancel_recovery_timer()
        inherited = reply.error + widen + (1.0 + self.delta) * rtt_local
        # The paper's rule: reset *unconditionally* to the third server.
        from ..core.sync import ResetDecision

        self._apply_reset(
            ResetDecision(
                clock_value=reply.clock_value,
                inherited_error=inherited,
                source=f"recovery:{arbiter}",
            ),
            kind="recovery",
        )
        if self.recovery is not None:
            self.recovery.note_completed()
        self.telemetry.recovery(self.now, "completed")

    # ----------------------------------------------------------------- hooks

    def _observe_reply(self, reply: TimeReply, rtt_local: float, local_now: float) -> None:
        """Hook: called for every poll reply before policy evaluation.

        The base server ignores it; :class:`~repro.service.rate_tracking.
        RateTrackingServer` feeds its consonance estimators here.
        """

    # ---------------------------------------------------------------- trace

    def _trace(self, kind: str, **data) -> None:
        if self.trace is not None:
            self.trace.record(self.now, kind, self.name, **data)
