"""Configuration sanity checks for service builds.

The library deliberately allows "wrong" configurations — fault experiments
depend on them — but a *production* user wants to know when a scenario is
self-undermining.  :func:`validate_specs` inspects a topology + spec list
+ parameters and returns typed warnings (never raises): the caller decides
whether a warning is intentional fault injection or a mistake.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import networkx as nx

from ..network.delay import DelayModel
from .builder import ServerSpec


class Severity(enum.Enum):
    """How bad a finding is."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One validation finding.

    Attributes:
        severity: Triage level.
        code: Stable machine-readable identifier.
        subject: Server name or parameter the finding concerns.
        message: Human-readable explanation.
    """

    severity: Severity
    code: str
    subject: str
    message: str


def validate_specs(
    graph: nx.Graph,
    specs: Sequence[ServerSpec],
    *,
    tau: float,
    lan_delay: Optional[DelayModel] = None,
    round_timeout: Optional[float] = None,
) -> List[Finding]:
    """Sanity-check a service configuration.

    Checks performed:

    * ``skew-exceeds-delta`` — a (non-failure-model) clock whose constant
      skew is at or beyond its claimed bound will be *incorrect* by the
      dropped δ² term or worse.
    * ``skew-at-bound`` — skew within 2% of the bound: correct only up to
      the paper's dropped second-order terms.
    * ``zero-delta-drifting`` — claimed δ = 0 with a nonzero skew can never
      be correct for long.
    * ``isolated-server`` — a polling server with no neighbours
      synchronizes with nobody.
    * ``tau-vs-xi`` — a poll period smaller than the round-trip bound means
      overlapping rounds.
    * ``timeout-vs-tau`` — an explicit round timeout at or beyond τ means
      rounds are force-closed by their successors.
    * ``no-polling-servers`` — nobody synchronizes at all.

    Returns:
        Findings sorted most severe first (ERROR < WARNING < INFO in sort
        order terms — errors lead).
    """
    findings: List[Finding] = []

    polling = [spec for spec in specs if spec.polls and not spec.reference]
    if not polling:
        findings.append(
            Finding(
                Severity.WARNING,
                "no-polling-servers",
                "*",
                "no server polls; clocks will drift apart forever",
            )
        )

    for spec in specs:
        if spec.reference:
            continue
        if spec.clock_factory is not None:
            continue  # custom clock: skew unknown to the validator
        if spec.delta == 0.0 and spec.skew != 0.0:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "zero-delta-drifting",
                    spec.name,
                    f"claims δ = 0 but drifts at {spec.skew:g}: incorrect "
                    "immediately and forever",
                )
            )
        elif spec.delta > 0.0 and abs(spec.skew) > spec.delta:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "skew-exceeds-delta",
                    spec.name,
                    f"actual skew {spec.skew:g} exceeds claimed δ "
                    f"{spec.delta:g}: the interval will exclude the true "
                    "time (fault scenarios do this on purpose)",
                )
            )
        elif spec.delta > 0.0 and abs(spec.skew) > 0.98 * spec.delta:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "skew-at-bound",
                    spec.name,
                    f"skew {spec.skew:g} is within 2% of δ {spec.delta:g}: "
                    "correctness rests on the paper's dropped δ² terms",
                )
            )

    for spec in specs:
        if not spec.polls or spec.reference:
            continue
        if spec.name in graph and graph.degree(spec.name) == 0:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "isolated-server",
                    spec.name,
                    "polls but has no neighbours in the topology",
                )
            )

    if lan_delay is not None and tau <= lan_delay.round_trip_bound:
        findings.append(
            Finding(
                Severity.WARNING,
                "tau-vs-xi",
                "tau",
                f"poll period τ = {tau:g} s is at or below the round-trip "
                f"bound ξ = {lan_delay.round_trip_bound:g} s: rounds overlap",
            )
        )
    if round_timeout is not None and round_timeout >= tau:
        findings.append(
            Finding(
                Severity.WARNING,
                "timeout-vs-tau",
                "round_timeout",
                f"round timeout {round_timeout:g} s is not below τ = "
                f"{tau:g} s: every round is closed by its successor",
            )
        )

    rank = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    findings.sort(key=lambda f: (rank[f.severity], f.subject, f.code))
    return findings
