"""Server churn: the paper's unstable service membership, made executable.

Section 1.1: "The set of servers making up the service is not stable, in
that time servers can frequently join or leave the service."

:class:`ChurnController` is a simulated process that periodically picks a
random eligible server, makes it :meth:`~repro.service.server.TimeServer.leave`,
and schedules its :meth:`~repro.service.server.TimeServer.rejoin` after a
sampled downtime with a configurable rejoin error (an operator sets the
clock of a returning machine by wristwatch, so the error is large and the
synchronization algorithm has to pull the server back in).

The churn experiments measure that MM/IM keep the *remaining* members
correct and synchronized through arbitrary membership noise, and that
rejoining members reconverge within a few poll periods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

from ..simulation.engine import SimulationEngine
from ..simulation.process import SimProcess
from .server import TimeServer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotation only)
    from ..faults.schedule import FaultSchedule


@dataclass
class ChurnStats:
    """Counters for churn activity.

    Attributes:
        departures: Leave events executed.
        rejoins: Rejoin events executed.
        skipped: Ticks where no eligible server was available.
        avoided_faulted: Candidates excluded because a scheduled
            crash/clock-fault window was active on them at tick time.
    """

    departures: int = 0
    rejoins: int = 0
    skipped: int = 0
    avoided_faulted: int = 0


class ChurnController(SimProcess):
    """Drives leave/rejoin churn over a set of time servers.

    Args:
        engine: The simulation engine.
        servers: The churnable population (reference servers are usually
            excluded by the caller).
        rng: Random stream for victim choice and downtime sampling.
        interval: Mean seconds between departure events (exponential).
        mean_downtime: Mean downtime per departure (exponential).
        rejoin_error: ε_i assigned on rejoin.
        min_alive: Never take the number of present servers below this
            (a service needs a quorum of neighbours to be worth measuring).
        fault_schedule: When the run also has a chaos
            :class:`~repro.faults.schedule.FaultSchedule`, pass it here so
            churn never picks a server inside an active crash or
            clock-fault window — a churn leave stacked on a scheduled
            ``ServerCrash`` would double-count downtime and confuse the
            invariant monitor's exemptions.
        fault_margin: Extra seconds around each fault window during which
            the server also stays off-limits (guards leaves landing just
            before a scheduled crash fires).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        servers: Sequence[TimeServer],
        rng: np.random.Generator,
        *,
        interval: float = 300.0,
        mean_downtime: float = 120.0,
        rejoin_error: float = 1.0,
        min_alive: int = 2,
        fault_schedule: Optional["FaultSchedule"] = None,
        fault_margin: float = 0.0,
    ) -> None:
        super().__init__(engine, "churn")
        if interval <= 0 or mean_downtime <= 0:
            raise ValueError("interval and mean_downtime must be positive")
        if rejoin_error < 0:
            raise ValueError(f"rejoin_error must be non-negative, got {rejoin_error}")
        if fault_margin < 0:
            raise ValueError(f"fault_margin must be non-negative, got {fault_margin}")
        self.servers: Dict[str, TimeServer] = {s.name: s for s in servers}
        self._rng = rng
        self.interval = float(interval)
        self.mean_downtime = float(mean_downtime)
        self.rejoin_error = float(rejoin_error)
        self.min_alive = int(min_alive)
        self.fault_margin = float(fault_margin)
        self._fault_windows: Tuple[Tuple[str, float, float], ...] = ()
        if fault_schedule is not None:
            self._fault_windows = tuple(
                (window.server, window.start, window.end)
                for window in (
                    fault_schedule.crash_windows()
                    + fault_schedule.server_fault_windows()
                )
            )
        self.stats = ChurnStats()

    def on_start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(self.interval))
        self.call_after(max(gap, 1e-6), self._tick)

    def _present(self) -> list[TimeServer]:
        return [s for s in self.servers.values() if not s.departed]

    def _in_fault_window(self, name: str, time: float) -> bool:
        """Whether a scheduled crash/clock fault owns ``name`` at ``time``."""
        margin = self.fault_margin
        return any(
            server == name and start - margin <= time <= end + margin
            for server, start, end in self._fault_windows
        )

    def _tick(self) -> None:
        present = self._present()
        # Servers inside a scheduled fault window are not churnable: the
        # injector owns their downtime.  With no schedule attached the
        # eligible set equals the present set and victim draws are
        # bit-identical to the pre-schedule behaviour.
        eligible = [s for s in present if not self._in_fault_window(s.name, self.now)]
        self.stats.avoided_faulted += len(present) - len(eligible)
        if len(present) <= self.min_alive or not eligible:
            self.stats.skipped += 1
        else:
            victim = eligible[int(self._rng.integers(len(eligible)))]
            victim.leave()
            self.stats.departures += 1
            downtime = float(self._rng.exponential(self.mean_downtime))
            self.call_after(
                max(downtime, 1e-6), lambda v=victim: self._bring_back(v)
            )
        self._schedule_next()

    def _bring_back(self, server: TimeServer) -> None:
        if server.departed:
            server.rejoin(self.rejoin_error)
            self.stats.rejoins += 1
