"""Request-id and nonce allocation shared by every wire endpoint.

Three independent id spaces keep the reply-routing invariant the clients
rely on — a reply can only ever match the bookkeeping that issued its
request — without any coordination:

* **query ids** (from :data:`QUERY_ID_SPACE`) — the base client's
  one-id-per-query space;
* **recovery ids** (from :data:`RECOVERY_ID_SPACE`) — a server's
  Section 3 third-server fetches, kept clear of its round bookkeeping;
* **attempt ids** (from :data:`ATTEMPT_ID_SPACE`) — the resilient
  client's one-id-per-attempt space, far above the query space so a
  late reply to an attempt can never be routed to a base-client query.

:class:`RequestIdAllocator` is the one implementation behind all three
(the sim clients, the load client, and the live runtime client all
instantiate it rather than growing private counters), and
:class:`NonceSequence` is the name-salted per-request freshness nonce
the servers stamp on polls — salted so two servers never draw the same
sequence, counting so one server never reuses a value.
"""

from __future__ import annotations

import zlib

__all__ = [
    "ATTEMPT_ID_SPACE",
    "QUERY_ID_SPACE",
    "RECOVERY_ID_SPACE",
    "NonceSequence",
    "RequestIdAllocator",
]

#: Base of the ordinary client-query id space (ids start at base + 1).
QUERY_ID_SPACE = 0

#: Base of the server-side recovery-fetch id space.
RECOVERY_ID_SPACE = 10_000_000

#: Base of the resilient client's per-attempt id space.
ATTEMPT_ID_SPACE = 500_000_000


class RequestIdAllocator:
    """A strictly increasing request-id counter rooted at a space base.

    Args:
        base: First id issued is ``base + 1``.  Use the ``*_ID_SPACE``
            constants so distinct consumers can never collide.
    """

    def __init__(self, base: int = QUERY_ID_SPACE) -> None:
        self._base = int(base)
        self._last = int(base)

    def allocate(self) -> int:
        """The next unused id (never repeats, never returns the base)."""
        self._last += 1
        return self._last

    @property
    def last(self) -> int:
        """The most recently issued id (the base before any allocation)."""
        return self._last

    @property
    def issued(self) -> int:
        """How many ids have been handed out."""
        return self._last - self._base


class NonceSequence:
    """Per-request freshness nonces: a name-salted, never-reused counter.

    The salt (CRC32 of the owner's name, folded to 16 bits and shifted
    above the counter) makes two *servers'* sequences disjoint; the
    counter makes one server's values unique.  The same construction
    serves simulated and live servers — determinism matters for the
    replay-guard tests, and a live process restart starting the counter
    over is harmless because round bookkeeping (which checks nonces)
    does not survive the restart either.
    """

    def __init__(self, name: str) -> None:
        self._base = (zlib.crc32(name.encode("utf-8")) & 0xFFFF) << 32
        self._counter = 0

    def next(self) -> int:
        """A fresh nonce."""
        self._counter += 1
        return self._base | self._counter

    @property
    def issued(self) -> int:
        """How many nonces have been drawn."""
        return self._counter
