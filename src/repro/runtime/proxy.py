"""The netem-style fault-injecting UDP relay.

:class:`ChaosProxy` sits on-path between the live nodes: every *data*
packet of the cluster is addressed to the proxy (the transports' ``via``
option), which decodes the wire frame, consults the fault plan active at
the current axis time, and forwards — or delays, duplicates, reorders,
corrupts, tampers with, or drops — the real datagram.

The plan speaks the repo's existing fault-schedule DSL
(:mod:`repro.faults.schedule`): the same frozen event dataclasses the
simulated chaos injector interprets against message taps are here
interpreted against sockets, so one experiment description drives both
planes.  Events the live relay cannot realise (clock faults, checkpoint
corruption — those live *inside* a node) are ignored; ``ServerCrash``
belongs to the supervisor's :meth:`kill`.

Determinism: all randomness comes from one seeded numpy generator, and
the *decision sequence* per packet is fixed; given the same packet
arrival order the same packets are dropped.  (Arrival order itself is
real — this is a live plane, not a simulation.)

The packet-level logic is pure (:meth:`plan`): given bytes, endpoints,
and a time, it returns the ``(payload, extra_delay)`` deliveries to
make, so the whole fault matrix is unit-testable without opening a
socket.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..faults.schedule import (
    DelaySpike,
    FaultEvent,
    LinkFlap,
    LossBurst,
    MessageCorruption,
    MessageDuplication,
    MessageReorder,
    MessageTamper,
    PartitionFault,
)
from ..service.messages import TimeReply, TimeRequest
from . import wire

__all__ = ["ChaosProxy", "ProxyStats"]

Address = Tuple[str, int]


@dataclasses.dataclass
class ProxyStats:
    """What the relay did to the traffic."""

    relayed: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_flap: int = 0
    dropped_unroutable: int = 0
    delayed: int = 0
    duplicated: int = 0
    reordered: int = 0
    corrupted: int = 0
    tampered: int = 0


def _window(event: FaultEvent) -> float:
    """The active duration of an event (``downtime`` for flaps)."""
    if isinstance(event, LinkFlap):
        return event.downtime
    return getattr(event, "duration", 0.0)


def _matches(event: Any, source: str, destination: str) -> bool:
    """Unordered pair match; empty endpoint strings are wildcards."""
    a = getattr(event, "a", "")
    b = getattr(event, "b", "")
    if not a and not b:
        return True
    pair = {source, destination}
    if a and b:
        return {a, b} == pair
    return (a or b) in pair


class _Protocol(asyncio.DatagramProtocol):
    def __init__(self, proxy: "ChaosProxy") -> None:
        self._owner = proxy

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._owner._datagram_received(data, addr)


class ChaosProxy:
    """A fault-injecting UDP relay for one cluster.

    Args:
        addresses: Name → ``(host, port)`` of every node's data socket.
        events: Fault-schedule events to realise on-path.
        loss: Steady-state per-packet loss probability (the gauntlet's
            "10% injected loss"), applied on top of any ``LossBurst``.
        seed: Seed for the relay's random stream.
        epoch: ``time.monotonic()`` value that is axis time zero —
            share the cluster's so event ``at`` times line up with the
            nodes' axis.
        nominal_one_way: The delay a ``DelaySpike``'s multiplicative
            ``scale`` applies to (live loopback has no sampled nominal
            delay, so the spike's held delay is
            ``extra + (scale − 1) × nominal_one_way``).
    """

    def __init__(
        self,
        *,
        addresses: Dict[str, Address],
        events: Iterable[FaultEvent] = (),
        loss: float = 0.0,
        seed: int = 0,
        epoch: Optional[float] = None,
        nominal_one_way: float = 0.005,
    ) -> None:
        self._addresses = {name: (host, int(port)) for name, (host, port) in addresses.items()}
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.at)
        self.loss = float(loss)
        self._rng = np.random.default_rng(seed)
        self._epoch = time.monotonic() if epoch is None else float(epoch)
        self._nominal = float(nominal_one_way)
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.address: Optional[Address] = None
        self.stats = ProxyStats()

    # ------------------------------------------------------------- lifecycle

    @property
    def now(self) -> float:
        return time.monotonic() - self._epoch

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Address:
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _Protocol(self), local_addr=(host, port)
        )
        sock = self._transport.get_extra_info("sockname")
        self.address = (sock[0], sock[1])
        return self.address

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # ------------------------------------------------------------- planning

    def _active(self, now: float) -> List[FaultEvent]:
        return [e for e in self.events if e.at <= now < e.at + _window(e)]

    def plan(
        self, source: str, destination: str, data: bytes, now: float
    ) -> List[Tuple[bytes, float]]:
        """Decide the fate of one packet: ``(payload, extra_delay)`` list.

        Empty list = dropped.  Pure given the RNG state: no sockets, no
        clock reads — fully unit-testable.
        """
        active = self._active(now)
        # Hard gates first: a partitioned or down path loses the packet
        # regardless of anything else.
        for event in active:
            if isinstance(event, PartitionFault):
                membership: Dict[str, int] = {}
                for index, group in enumerate(event.groups):
                    for name in group:
                        membership[name] = index
                same = (
                    source in membership
                    and destination in membership
                    and membership[source] == membership[destination]
                )
                if not same:
                    self.stats.dropped_partition += 1
                    return []
            elif isinstance(event, LinkFlap) and _matches(event, source, destination):
                self.stats.dropped_flap += 1
                return []
        # Probabilistic loss: steady-state plus any active burst.
        loss = self.loss
        for event in active:
            if isinstance(event, LossBurst) and _matches(event, source, destination):
                loss = max(loss, event.probability)
        if loss > 0 and self._rng.uniform() < loss:
            self.stats.dropped_loss += 1
            return []
        payload = data
        delay = 0.0
        for event in active:
            if isinstance(event, MessageTamper) and _matches(event, source, destination):
                if self._rng.uniform() < event.probability:
                    tampered = self._tamper(payload, event.offset)
                    if tampered is not None:
                        payload = tampered
                        self.stats.tampered += 1
            elif isinstance(event, MessageCorruption):
                if self._rng.uniform() < event.probability:
                    payload = self._corrupt(payload)
                    self.stats.corrupted += 1
            elif isinstance(event, DelaySpike) and _matches(event, source, destination):
                delay += event.extra + max(0.0, event.scale - 1.0) * self._nominal
            elif isinstance(event, MessageReorder):
                if self._rng.uniform() < event.probability:
                    delay += float(self._rng.uniform(0.0, event.max_extra))
                    self.stats.reordered += 1
        deliveries = [(payload, delay)]
        for event in active:
            if isinstance(event, MessageDuplication):
                if self._rng.uniform() < event.probability:
                    deliveries.append((payload, delay + event.extra_delay))
                    self.stats.duplicated += 1
        return deliveries

    def _tamper(self, data: bytes, offset: float) -> Optional[bytes]:
        """Shift a reply's claimed clock value, keeping its (now stale) MAC.

        The semantic on-path attack: decode, edit the signed field,
        re-encode with the *original* auth header.  A plain node adopts
        the shifted value; an authenticated node's MAC check fails.
        Requests and undecodable packets pass through untouched.
        """
        try:
            message = wire.decode_message(data)
        except ValueError:
            return None
        if not isinstance(message, TimeReply):
            return None
        shifted = dataclasses.replace(message, clock_value=message.clock_value + offset)
        return wire.encode_message(shifted)

    def _corrupt(self, data: bytes) -> bytes:
        """Flip one byte of the tail (the packed floats): the decoder
        rejects the frame, or a packed value turns to garbage that the
        receiver's validation / rule MM-2 consistency check discards."""
        if not data:
            return data
        index = len(data) - 1 - int(self._rng.integers(0, min(8, len(data))))
        flipped = data[index] ^ 0xFF
        return data[:index] + bytes([flipped]) + data[index + 1 :]

    # ------------------------------------------------------------- relaying

    def _datagram_received(self, data: bytes, addr: Address) -> None:
        try:
            message = wire.decode_message(data)
        except ValueError:
            self.stats.dropped_unroutable += 1
            return
        source = message.origin if isinstance(message, TimeRequest) else message.server
        destination = message.destination
        target = self._addresses.get(destination)
        if target is None:
            self.stats.dropped_unroutable += 1
            return
        for payload, delay in self.plan(source, destination, data, self.now):
            self.stats.relayed += 1
            if delay > 0:
                self.stats.delayed += 1
                asyncio.get_running_loop().call_later(
                    delay, self._forward, payload, target
                )
            else:
                self._forward(payload, target)

    def _forward(self, payload: bytes, target: Address) -> None:
        if self._transport is not None:
            self._transport.sendto(payload, target)
