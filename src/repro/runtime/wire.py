"""UDP packet framing over the canonical message encoding.

The security layer already defines an injective byte encoding of every
semantic message field (:func:`repro.security.auth.canonical_encode`,
proven injective by the property suite) — the MAC covers exactly those
bytes.  The wire format reuses it verbatim so that **what is signed is
what is sent**: an on-path rewrite of any field (the
:class:`~repro.runtime.proxy.ChaosProxy` tamper fault edits the packed
``clock_value`` double) necessarily invalidates the MAC on the
authenticated arm, with no gap between the wire bytes and the signed
bytes for an attacker to hide in.

Frame layout (one datagram per message, loopback MTU is ample):

* data packet — ``b"R" + netstring(repr(auth)) + canonical_encode(msg)``
  where ``auth`` is the message's ``(key_id, seq, mac)`` tuple (or
  ``()`` unauthenticated);
* control packet — ``b"C" + JSON`` for the supervisor's out-of-band
  ping/stats/drain plane (never routed through the proxy, never
  authenticated — it is localhost operational tooling, not protocol).
"""

from __future__ import annotations

import ast
import dataclasses
import json
from typing import Any, Dict, Tuple, Union

from ..security.auth import canonical_decode, canonical_encode
from ..service.messages import TimeReply, TimeRequest

__all__ = [
    "decode_control",
    "decode_message",
    "decode_packet",
    "encode_control",
    "encode_message",
    "packet_kind",
]

Message = Union[TimeRequest, TimeReply]

_DATA = b"R"
_CONTROL = b"C"


def encode_message(message: Message) -> bytes:
    """One datagram: auth header + the canonical (signed) payload bytes."""
    auth = tuple(message.auth)
    header = repr(auth).encode("ascii")
    return _DATA + b"%d:%s" % (len(header), header) + canonical_encode(message)


def decode_message(data: bytes) -> Message:
    """Invert :func:`encode_message`.

    Raises:
        ValueError: On anything that is not a well-formed data packet
            (truncation, bad auth header, non-canonical payload).
    """
    if data[:1] != _DATA:
        raise ValueError(f"not a data packet: leading byte {data[:1]!r}")
    colon = data.index(b":", 1)
    length = int(data[1:colon])
    if length < 0 or colon + 1 + length > len(data):
        raise ValueError("bad auth header length")
    header = data[colon + 1 : colon + 1 + length]
    try:
        auth = ast.literal_eval(header.decode("ascii"))
    except Exception as exc:
        raise ValueError(f"unparseable auth header: {exc}") from exc
    if not isinstance(auth, tuple):
        raise ValueError("auth header is not a tuple")
    message = canonical_decode(data[colon + 1 + length :])
    if not auth:
        return message
    if (
        len(auth) != 3
        or not isinstance(auth[0], int)
        or not isinstance(auth[1], int)
        or not isinstance(auth[2], str)
    ):
        raise ValueError("auth header is not (key_id, seq, mac)")
    return dataclasses.replace(message, auth=auth)


def encode_control(payload: Dict[str, Any]) -> bytes:
    """One control datagram (compact JSON, sorted keys)."""
    return _CONTROL + json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_control(data: bytes) -> Dict[str, Any]:
    """Invert :func:`encode_control`.

    Raises:
        ValueError: When the bytes are not a control packet holding a
            JSON object.
    """
    if data[:1] != _CONTROL:
        raise ValueError(f"not a control packet: leading byte {data[:1]!r}")
    try:
        payload = json.loads(data[1:].decode("utf-8"))
    except Exception as exc:
        raise ValueError(f"unparseable control payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("control payload is not an object")
    return payload


def packet_kind(data: bytes) -> str:
    """``"message"``, ``"control"``, or ``"unknown"`` (cheap dispatch)."""
    lead = data[:1]
    if lead == _DATA:
        return "message"
    if lead == _CONTROL:
        return "control"
    return "unknown"


def decode_packet(data: bytes) -> Tuple[str, Any]:
    """Decode any packet: ``("message", msg)`` or ``("control", dict)``.

    Raises:
        ValueError: On unknown leading bytes or malformed payloads.
    """
    kind = packet_kind(data)
    if kind == "message":
        return kind, decode_message(data)
    if kind == "control":
        return kind, decode_control(data)
    raise ValueError(f"unknown packet type {data[:1]!r}")
