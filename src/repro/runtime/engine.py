"""The wall-clock engine: the live implementation of the Scheduler seam.

:class:`WallClockEngine` exposes the exact scheduling surface of
:class:`~repro.simulation.engine.SimulationEngine` — ``now``,
``schedule_at`` / ``schedule_after`` / ``schedule_periodic``, ``stop``,
the observer hook, and the telemetry counters — but its time axis is
``time.monotonic()`` anchored at a shared *epoch*, and its events fire
from a :class:`~repro.runtime.timeouts.TimeoutManager` pumped by an
asyncio task instead of a virtual-time loop.

Because every node process of one cluster is handed the *same* epoch
(Linux ``CLOCK_MONOTONIC`` is system-wide), all their engines agree on
the axis: ``engine.now`` is the cluster's shared true-time oracle, which
is what lets the live invariant probes check rule MM-1 exactly as the
simulator's oracle does.

Two deliberate semantic deltas from the simulated engine, both inherent
to a physical clock:

* ``schedule_at`` with a time already past **clamps to now** (fires as
  soon as the pump runs) instead of raising — on a wall axis, time moves
  between computing a deadline and arming it, so "in the past" is a
  race, not a sign bug.  ``schedule_after`` still raises on a *negative
  delay*, which is the actual sign-bug class.
* ``run`` is a coroutine: the engine shares its event loop with the UDP
  transports, so firing and packet delivery interleave on one thread.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..simulation.engine import PeriodicTask, SchedulingError
from ..simulation.events import Event, EventCallback
from .timeouts import TimeoutManager

__all__ = ["WallClockEngine"]


class WallClockEngine:
    """A live engine over ``time.monotonic()``.

    Args:
        epoch: The ``time.monotonic()`` reading that is axis time zero.
            Pass one shared value to every process of a cluster so all
            engines agree on the axis; defaults to "now" (a fresh,
            process-local axis).
    """

    def __init__(self, *, epoch: Optional[float] = None) -> None:
        self._epoch = time.monotonic() if epoch is None else float(epoch)
        self.timeouts = TimeoutManager(self._wall_now)
        self._observer: Optional[Callable[["WallClockEngine", Event], None]] = None
        self._events_processed = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------ time

    def _wall_now(self) -> float:
        return time.monotonic() - self._epoch

    @property
    def epoch(self) -> float:
        """The ``time.monotonic()`` origin of this engine's axis."""
        return self._epoch

    @property
    def now(self) -> float:
        """Seconds since the epoch, read from the monotonic clock."""
        return time.monotonic() - self._epoch

    @property
    def events_processed(self) -> int:
        """Callbacks fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Active deadlines still armed."""
        return self.timeouts.pending

    @property
    def heap_depth(self) -> int:
        """Raw deadline-heap size (cancelled included) — for telemetry."""
        return self.timeouts.heap_depth

    def set_observer(
        self, observer: Optional[Callable[["WallClockEngine", Event], None]]
    ) -> None:
        """Install a per-event observer (same contract as the simulator)."""
        self._observer = observer

    # ------------------------------------------------------------ scheduling

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Arm ``callback`` at absolute axis time ``time`` (past ⇒ asap)."""
        when = max(float(time), self._wall_now())
        return self.timeouts.schedule(when, callback, label)

    def schedule_after(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Arm ``callback`` ``delay`` seconds from now.

        Raises:
            SchedulingError: If ``delay`` is negative (a sign bug; wall
                racing is handled by the clamp in :meth:`schedule_at`).
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        return self.timeouts.schedule(
            self._wall_now() + delay, callback, label
        )

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        *,
        first_at: Optional[float] = None,
        label: str = "",
        jitter: Optional[Callable[[], float]] = None,
    ) -> PeriodicTask:
        """Arm a recurring callback (the simulator's own
        :class:`~repro.simulation.engine.PeriodicTask` drives it — each
        firing schedules the next through this engine, so the chain is
        identical in both planes)."""
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period}")
        task = PeriodicTask(self, period, callback, label=label, jitter=jitter)
        start = self._wall_now() + period if first_at is None else first_at
        task.start(start)
        return task

    # --------------------------------------------------------------- running

    def stop(self) -> None:
        """Ask a running :meth:`run` loop to exit after the current event."""
        self._stopped = True
        self.timeouts._notify()

    async def run(self, until: Optional[float] = None) -> None:
        """Pump deadlines until :meth:`stop` (or the ``until`` horizon).

        Unlike the simulator, an empty heap does **not** end the run —
        a live node idles, waiting for packets to schedule new work.
        """
        self._stopped = False
        self._running = True
        observer = None
        if self._observer is not None:
            observer = lambda event: self._note_fired(event)  # noqa: E731
        try:
            while not self._stopped:
                fired = self.timeouts.fire_due(observer)
                if observer is None:
                    self._events_processed += fired
                # Re-check before sleeping: a fired callback calling
                # stop() sets the wake flag, which sleep_until_due would
                # otherwise clear and then wait on forever.
                if self._stopped:
                    break
                if until is not None and self._wall_now() >= until:
                    break
                await self.timeouts.sleep_until_due(horizon=until)
        finally:
            self._running = False

    def _note_fired(self, event: Event) -> None:
        self._events_processed += 1
        if self._observer is not None:
            self._observer(self, event)
