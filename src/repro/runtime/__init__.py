"""The live runtime plane: real processes, real sockets, real time.

Everything under this package realises the simulator's contracts on the
wall clock so the *untouched* policy core — MM/IM/FT-IM, hardening,
admission control, the security hooks — runs as live UDP processes:

* :mod:`repro.runtime.timeouts` — :class:`TimeoutManager`, the
  wall-clock deadline heap (``time.monotonic()``) behind every retry,
  adaptive EWMA timeout, and round deadline;
* :mod:`repro.runtime.engine` — :class:`WallClockEngine`, the live
  implementation of the :class:`~repro.simulation.scheduler.Scheduler`
  seam;
* :mod:`repro.runtime.wire` — the UDP packet codec over the security
  layer's canonical message encoding;
* :mod:`repro.runtime.transport` — :class:`UdpTransport`, the
  asyncio/UDP implementation of the transport-facing contract of
  :class:`~repro.network.transport.Network`;
* :mod:`repro.runtime.node` — one server process (``python -m
  repro.runtime.node config.json``) with live invariant probes and a
  control plane;
* :mod:`repro.runtime.supervisor` — :class:`ClusterSupervisor`: spawn,
  crash detection, exponential-backoff restart, liveness watchdogs,
  graceful drain;
* :mod:`repro.runtime.proxy` — :class:`ChaosProxy`, the netem-style UDP
  relay interpreting the fault-schedule DSL against real packets.

See ``docs/runtime.md`` for the architecture and the sim-vs-live parity
table.
"""

from .engine import WallClockEngine
from .proxy import ChaosProxy
from .supervisor import ClusterSupervisor, NodeSpec, RestartPolicy
from .timeouts import TimeoutManager
from .transport import UdpTransport

__all__ = [
    "ChaosProxy",
    "ClusterSupervisor",
    "NodeSpec",
    "RestartPolicy",
    "TimeoutManager",
    "UdpTransport",
    "WallClockEngine",
]
