"""Process supervision for a live cluster.

:class:`ClusterSupervisor` owns N node processes (``python -m
repro.runtime.node``): it writes their config files, spawns them,
detects crashes (process exit *and* liveness-watchdog silence), restarts
with exponential backoff, scrapes their control planes, and drains them
gracefully at the end of a run.

The supervisor's control socket is plain JSON-over-UDP on loopback; the
request/response plumbing matches replies to requests by a token, so a
slow node cannot satisfy another node's probe.

Crash injection in the gauntlet goes through :meth:`kill` — a raw
``SIGKILL`` with **no** internal bookkeeping shortcut: recovery runs
through the same crash-detection + backoff-restart path as a real fault,
so the experiment exercises the machinery end to end.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import repro

from . import wire

__all__ = ["ClusterSupervisor", "NodeSpec", "RestartPolicy"]

Address = Tuple[str, int]


@dataclass(frozen=True)
class RestartPolicy:
    """Exponential backoff between restarts of one node.

    Attributes:
        base: Delay before the first restart (seconds).
        factor: Multiplier applied per consecutive restart.
        max_delay: Backoff ceiling.
        max_restarts: Give up on a node after this many restarts
            (``None`` = never give up; the gauntlet's default).
    """

    base: float = 0.2
    factor: float = 2.0
    max_delay: float = 5.0
    max_restarts: Optional[int] = None

    def delay(self, restarts: int) -> float:
        """Backoff before restart number ``restarts + 1``."""
        return min(self.max_delay, self.base * self.factor ** restarts)


@dataclass
class NodeSpec:
    """One node's launch description (becomes its config JSON)."""

    name: str
    config: Dict[str, Any]
    restarts: int = 0
    watchdog_restarts: int = 0
    missed_pings: int = 0
    process: Optional[subprocess.Popen] = None
    config_path: Optional[Path] = None
    restart_at: Optional[float] = None  # wall monotonic; None = running
    gave_up: bool = False
    ready: bool = False  # heard from since the last (re)spawn
    spawned_at: float = field(default_factory=time.monotonic)
    last_seen: float = field(default_factory=time.monotonic)


class _ControlProtocol(asyncio.DatagramProtocol):
    def __init__(self, supervisor: "ClusterSupervisor") -> None:
        self._owner = supervisor

    def datagram_received(self, data: bytes, addr: Address) -> None:
        try:
            payload = wire.decode_control(data)
        except ValueError:
            return
        self._owner._on_control(payload, addr)


class ClusterSupervisor:
    """Spawn and babysit the node processes of one live cluster.

    Args:
        specs: The nodes to run.
        restart: Backoff policy applied to crash *and* watchdog restarts.
        ping_period: Liveness probe interval (seconds).
        ping_misses: Consecutive unanswered pings before a node is
            declared wedged and killed (its exit then follows the normal
            crash-restart path).
        startup_grace: How long a freshly (re)spawned node may stay
            silent before the watchdog counts it as wedged.  Interpreter
            start-up is seconds-slow under the contention of a whole
            cluster booting at once — pinging a node that is still
            importing numpy and killing it for not answering just
            compounds the contention with a restart storm.
        workdir: Where node config files are written (a temp dir when
            omitted).
        host: Loopback interface everything binds to.
    """

    def __init__(
        self,
        specs: List[NodeSpec],
        *,
        restart: Optional[RestartPolicy] = None,
        ping_period: float = 0.5,
        ping_misses: int = 4,
        startup_grace: float = 15.0,
        workdir: Optional[Path] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.specs: Dict[str, NodeSpec] = {spec.name: spec for spec in specs}
        self.restart_policy = restart if restart is not None else RestartPolicy()
        self.ping_period = ping_period
        self.ping_misses = ping_misses
        self.startup_grace = startup_grace
        self.host = host
        self._workdir = workdir
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.address: Optional[Address] = None
        self._tokens = itertools.count(1)
        self._waiters: Dict[Any, asyncio.Future] = {}
        self._monitor: Optional[asyncio.Task] = None
        self.crash_restarts = 0
        self.hellos = 0

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the control socket and spawn every node."""
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _ControlProtocol(self), local_addr=(self.host, 0)
        )
        sock = self._transport.get_extra_info("sockname")
        self.address = (sock[0], sock[1])
        if self._workdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-live-")
            self._workdir = Path(self._tmpdir.name)
        for spec in self.specs.values():
            spec.config["control"] = list(self.address)
            self._spawn(spec)
        self._monitor = asyncio.ensure_future(self._monitor_loop())

    def _spawn(self, spec: NodeSpec) -> None:
        assert self._workdir is not None
        spec.config_path = self._workdir / f"{spec.name}.json"
        spec.config_path.write_text(json.dumps(spec.config, indent=1))
        src_root = Path(repro.__file__).resolve().parents[1]
        spec.process = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.node", str(spec.config_path)],
            cwd=str(self._workdir),
            env=self._env(src_root),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        spec.restart_at = None
        spec.missed_pings = 0
        spec.ready = False
        spec.spawned_at = time.monotonic()
        spec.last_seen = time.monotonic()

    @staticmethod
    def _env(src_root: Path) -> Dict[str, str]:
        import os

        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{src_root}{os.pathsep}{existing}" if existing else str(src_root)
        )
        return env

    # -------------------------------------------------------------- monitor

    async def _monitor_loop(self) -> None:
        try:
            while True:
                self._check_exits()
                await self._ping_round()
                await asyncio.sleep(self.ping_period)
        except asyncio.CancelledError:
            pass

    def _check_exits(self) -> None:
        now = time.monotonic()
        for spec in self.specs.values():
            if spec.gave_up:
                continue
            proc = spec.process
            if proc is not None and proc.poll() is not None and spec.restart_at is None:
                limit = self.restart_policy.max_restarts
                if limit is not None and spec.restarts >= limit:
                    spec.gave_up = True
                    continue
                spec.restart_at = now + self.restart_policy.delay(spec.restarts)
                spec.restarts += 1
                spec.ready = False  # don't let the dead incarnation's
                self.crash_restarts += 1  # liveness linger through backoff
            if spec.restart_at is not None and now >= spec.restart_at:
                self._spawn(spec)

    async def _ping_round(self) -> None:
        for spec in list(self.specs.values()):
            if spec.gave_up or spec.restart_at is not None or spec.process is None:
                continue
            if spec.process.poll() is not None:
                continue
            if not spec.ready and time.monotonic() - spec.spawned_at < self.startup_grace:
                # Still booting: don't burn ping budget (or patience) on
                # a node that hasn't finished importing its interpreter.
                continue
            reply = await self.request(spec.name, {"op": "ping"}, timeout=self.ping_period)
            if reply is None:
                spec.missed_pings += 1
                if spec.missed_pings >= self.ping_misses:
                    # Wedged: kill it; the exit check above restarts it
                    # through the ordinary backoff path.
                    spec.watchdog_restarts += 1
                    spec.missed_pings = 0
                    spec.process.kill()
            else:
                spec.missed_pings = 0
                spec.ready = True
                spec.last_seen = time.monotonic()

    async def wait_ready(self, *, timeout: float = 30.0) -> bool:
        """Wait until every node has been heard from since its spawn.

        Experiments call this before opening their measurement window so
        interpreter start-up time is not mistaken for cluster downtime.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(spec.ready or spec.gave_up for spec in self.specs.values()):
                return True
            await asyncio.sleep(0.1)
        return all(spec.ready or spec.gave_up for spec in self.specs.values())

    # ----------------------------------------------------------- control ops

    def _node_address(self, name: str) -> Address:
        host, port = self.specs[name].config["host"], self.specs[name].config["port"]
        return (host, int(port))

    def _on_control(self, payload: Dict[str, Any], addr: Address) -> None:
        name = payload.get("name")
        if name in self.specs:
            spec = self.specs[name]
            spec.ready = True
            spec.last_seen = time.monotonic()
        if payload.get("op") == "hello":
            self.hellos += 1
            return
        token = payload.get("token")
        waiter = self._waiters.pop(token, None)
        if waiter is not None and not waiter.done():
            waiter.set_result(payload)

    async def request(
        self, name: str, payload: Dict[str, Any], *, timeout: float = 1.0
    ) -> Optional[Dict[str, Any]]:
        """One control round trip to a node; None on timeout."""
        if self._transport is None:
            return None
        token = next(self._tokens)
        message = dict(payload)
        message["token"] = token
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[token] = future
        self._transport.sendto(wire.encode_control(message), self._node_address(name))
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._waiters.pop(token, None)
            return None

    async def scrape(self, *, timeout: float = 1.0) -> Dict[str, Optional[Dict[str, Any]]]:
        """A stats snapshot from every node (None where unreachable)."""
        results: Dict[str, Optional[Dict[str, Any]]] = {}
        for name in self.specs:
            results[name] = await self.request(name, {"op": "stats"}, timeout=timeout)
        return results

    async def metrics(self, *, timeout: float = 1.0) -> Dict[str, Optional[str]]:
        """Prometheus text from every node's registry."""
        results: Dict[str, Optional[str]] = {}
        for name in self.specs:
            reply = await self.request(name, {"op": "metrics"}, timeout=timeout)
            results[name] = reply.get("text") if reply else None
        return results

    def kill(self, name: str) -> bool:
        """Crash a node (SIGKILL); the monitor restarts it with backoff."""
        spec = self.specs[name]
        if spec.process is None or spec.process.poll() is not None:
            return False
        spec.process.send_signal(signal.SIGKILL)
        return True

    # ------------------------------------------------------------- shutdown

    async def drain(self, *, grace: float = 2.0) -> Dict[str, bool]:
        """Graceful shutdown: drain every node, then reap stragglers.

        Returns per-node ``True`` when the node acknowledged the drain
        and exited within the grace period on its own.
        """
        if self._monitor is not None:
            self._monitor.cancel()
            try:
                await self._monitor
            except asyncio.CancelledError:
                pass
            self._monitor = None
        acked: Dict[str, bool] = {}
        for name, spec in self.specs.items():
            if spec.process is None or spec.process.poll() is not None:
                acked[name] = False
                continue
            reply = await self.request(name, {"op": "drain"}, timeout=grace)
            acked[name] = reply is not None
        deadline = time.monotonic() + grace
        for name, spec in self.specs.items():
            proc = spec.process
            if proc is None:
                continue
            while proc.poll() is None and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            if proc.poll() is None:
                acked[name] = False
                proc.terminate()
                try:
                    proc.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        self.close()
        return acked

    def close(self) -> None:
        """Tear down sockets and any stragglers (idempotent)."""
        if self._monitor is not None:
            self._monitor.cancel()
            self._monitor = None
        for spec in self.specs.values():
            proc = spec.process
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
