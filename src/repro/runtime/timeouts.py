"""The wall-clock deadline plane.

:class:`TimeoutManager` is the live counterpart of the simulation
engine's event heap: the same :class:`~repro.simulation.events.Event`
objects (so cancellation semantics are identical), ordered by
``(time, seq)``, but *fired by the wall clock* — deadlines are armed
against ``time.monotonic()`` and an asyncio wait wakes the pump either
when the nearest deadline arrives or when a new, earlier deadline is
scheduled mid-sleep.

Every per-neighbour retry, adaptive EWMA timeout, and round deadline the
hardened server computes lands here (via
:class:`~repro.runtime.engine.WallClockEngine`), so the durations the
policy layer reasons about are measured against real round trips.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Callable, List, Optional

from ..simulation.events import Event, EventCallback, EventSequencer

__all__ = ["TimeoutManager"]


class TimeoutManager:
    """A monotonic-clock deadline heap with an asyncio wake-up.

    Args:
        time_source: Zero-argument callable returning the current time on
            the axis deadlines are expressed in (seconds).  The engine
            passes its epoch-anchored ``time.monotonic()`` reading.
    """

    def __init__(self, time_source: Callable[[], float]) -> None:
        self._time = time_source
        self._heap: List[Event] = []
        self._sequencer = EventSequencer()
        # Created lazily inside the running loop (asyncio primitives are
        # loop-bound); before the pump runs, scheduling just heaps.
        self._wakeup: Optional[asyncio.Event] = None
        self.fired = 0

    # ------------------------------------------------------------ scheduling

    def schedule(
        self, when: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Arm ``callback`` at absolute axis time ``when``.

        Returns the :class:`~repro.simulation.events.Event`, which the
        caller may ``cancel()`` exactly as in the simulator.
        """
        event = Event(float(when), self._sequencer.next(), callback, label)
        heapq.heappush(self._heap, event)
        self._notify()
        return event

    def _notify(self) -> None:
        """Wake a pump sleeping past the (possibly new) nearest deadline."""
        if self._wakeup is not None:
            self._wakeup.set()

    # ------------------------------------------------------------ inspection

    @property
    def pending(self) -> int:
        """Active (non-cancelled) deadlines still armed."""
        return sum(1 for event in self._heap if event.active)

    @property
    def heap_depth(self) -> int:
        """Raw heap size, cancelled entries included — O(1), telemetry."""
        return len(self._heap)

    def next_deadline(self) -> Optional[float]:
        """Axis time of the nearest active deadline, or None when idle.

        Cancelled heap heads are dropped on the way (lazy cancellation,
        same as the simulator's engine).
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    # ---------------------------------------------------------------- firing

    def fire_due(self, observer=None) -> int:
        """Fire every deadline at or before the current axis time.

        Args:
            observer: Optional ``(event) -> None`` called after each
                callback (the engine threads its telemetry observer
                through here).

        Returns:
            How many callbacks ran.
        """
        count = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > self._time():
                break
            heapq.heappop(self._heap)
            head.callback()
            self.fired += 1
            count += 1
            if observer is not None:
                observer(head)
        return count

    async def sleep_until_due(self, horizon: Optional[float] = None) -> None:
        """Sleep until the nearest deadline, a new earlier one, or ``horizon``.

        Args:
            horizon: Optional absolute axis time to wake by regardless of
                deadlines (the engine's ``run(until=...)``).
        """
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        self._wakeup.clear()
        deadline = self.next_deadline()
        if horizon is not None:
            deadline = horizon if deadline is None else min(deadline, horizon)
        if deadline is None:
            await self._wakeup.wait()
            return
        timeout = deadline - self._time()
        if timeout <= 0:
            # Already due; yield once so transports/subprocess futures can
            # make progress even under a saturated deadline stream.
            await asyncio.sleep(0)
            return
        try:
            await asyncio.wait_for(self._wakeup.wait(), timeout)
        except asyncio.TimeoutError:
            pass
