"""The asyncio/UDP implementation of the transport-facing contract.

:class:`UdpTransport` presents the exact surface the policy core already
programs against on :class:`~repro.network.transport.Network` —
``send`` / ``broadcast`` / ``neighbours`` / ``register`` / ``process`` /
``link`` / ``xi`` / ``names`` / ``graph`` / ``stats`` / taps /
``partition`` / ``heal`` / ``add_edge`` / ``remove_edge`` /
``topology_version`` — but moves real datagrams: each transport owns one
UDP socket, an address book maps server names to ``(host, port)``, and
deliveries happen when the peer's socket actually receives the packet.

Where the simulator *samples* link delays, the live plane *declares*
them: :meth:`link` hands out a :class:`LiveLink` whose
:class:`~repro.network.delay.DelayModel` states the operator's one-way
bound for the path.  That declared physics is exactly what the security
layer's delay guard judges measured RTTs against — same code path, real
round trips.

A transport-level :class:`RttTracker` stamps every outgoing
``TimeRequest`` and matches the returning ``TimeReply`` on
``(server, request_id)``, yielding the live ξ measurement (max observed
round trip) independently of any policy internals.
"""

from __future__ import annotations

import asyncio
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..network.delay import DelayModel, UniformDelay
from ..network.transport import MessageTap, NetworkStats
from ..service.messages import TimeReply, TimeRequest
from . import wire

__all__ = ["LiveLink", "RttTracker", "UdpTransport"]

Address = Tuple[str, int]

#: Callback invoked with ``(payload, addr)`` for every control packet.
ControlHandler = Callable[[Dict[str, Any], Address], None]


class LiveLink:
    """A live edge: declared delay physics instead of sampled delays.

    Duck-types the two attributes the security layer's delay guard reads
    from a simulator :class:`~repro.network.link.Link` — ``delay`` and
    ``reverse_delay`` — so :meth:`AuthenticationMixin._link_delay_models`
    works unchanged against real sockets.
    """

    def __init__(self, delay: DelayModel, reverse_delay: Optional[DelayModel] = None) -> None:
        self.delay = delay
        self.reverse_delay = reverse_delay


class RttTracker:
    """Match request send-stamps to reply arrivals; summarise round trips.

    Args:
        time_source: Zero-argument callable giving the current axis time.
        max_samples: Cap on retained individual samples (the summary
            counters keep counting past the cap).
    """

    def __init__(self, time_source: Callable[[], float], max_samples: int = 4096) -> None:
        self._time = time_source
        self._max_samples = max_samples
        self._outstanding: Dict[Tuple[str, int], float] = {}
        self.samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def note_request(self, destination: str, request_id: int) -> None:
        """Stamp an outgoing request (re-sends overwrite the stamp, so a
        retried exchange measures the successful attempt)."""
        self._outstanding[(destination, request_id)] = self._time()
        # Unanswered stamps are garbage-collected wholesale rather than
        # per-deadline: the dict stays small under any sane retry policy.
        if len(self._outstanding) > 4 * self._max_samples:
            self._outstanding.clear()

    def note_reply(self, server: str, request_id: int) -> Optional[float]:
        """Record the round trip for a matching reply; None if unmatched."""
        sent = self._outstanding.pop((server, request_id), None)
        if sent is None:
            return None
        rtt = self._time() - sent
        self.count += 1
        self.total += rtt
        if rtt > self.max:
            self.max = rtt
        if len(self.samples) < self._max_samples:
            self.samples.append(rtt)
        return rtt

    def summary(self) -> Dict[str, Any]:
        """Count / mean / max / p95 over observed round trips (seconds)."""
        if not self.count:
            return {"count": 0, "mean": None, "max": None, "p95": None}
        ordered = sorted(self.samples)
        p95 = ordered[min(len(ordered) - 1, math.ceil(0.95 * len(ordered)) - 1)] if ordered else None
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "max": self.max,
            "p95": p95,
        }


class _Protocol(asyncio.DatagramProtocol):
    def __init__(self, transport: "UdpTransport") -> None:
        self._owner = transport

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._owner._datagram_received(data, addr)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self._owner.stats.dropped += 1


class UdpTransport:
    """One UDP socket speaking the cluster's wire format.

    Args:
        engine: The node's :class:`~repro.runtime.engine.WallClockEngine`
            (supplies the time axis and schedules tap-delayed sends).
        graph: The cluster topology; nodes are server names.  Drives
            ``neighbours``/``names``/edge existence exactly as in the
            simulator.
        addresses: Name → ``(host, port)`` for every cluster member.
        one_way_bound: The operator's declared one-way delay bound for
            every path (seconds); ``xi`` is twice this, and the delay
            guard judges measured RTTs against it.
        via: When set, all *data* packets are sent to this address (the
            chaos proxy) instead of the destination's own — the proxy
            routes them onward.  Control packets always bypass it.
        on_control: Handler for incoming control packets.
    """

    def __init__(
        self,
        engine,
        graph: nx.Graph,
        *,
        addresses: Dict[str, Address],
        one_way_bound: float,
        via: Optional[Address] = None,
        on_control: Optional[ControlHandler] = None,
    ) -> None:
        if one_way_bound <= 0:
            raise ValueError(f"one_way_bound must be positive, got {one_way_bound}")
        self.engine = engine
        self.graph = graph
        self._addresses = {name: (host, int(port)) for name, (host, port) in addresses.items()}
        self._one_way = float(one_way_bound)
        self._via = via
        self._on_control = on_control
        self._processes: Dict[str, Any] = {}
        self._links: Dict[Tuple[str, str], LiveLink] = {}
        self._taps: List[MessageTap] = []
        self._partition: Optional[Dict[str, int]] = None
        self._topology_version = 0
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.stats = NetworkStats()
        self.rtt = RttTracker(lambda: engine.now)
        self.decode_errors = 0

    # -------------------------------------------------------------- lifecycle

    async def start(self, bind: Address) -> Address:
        """Bind the socket; returns the actual local address (for port 0)."""
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _Protocol(self), local_addr=bind
        )
        sock = self._transport.get_extra_info("sockname")
        return (sock[0], sock[1])

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # ------------------------------------------------------------- plumbing

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def register(self, process) -> None:
        """Attach a local endpoint (same contract as the simulator).

        Raises:
            KeyError: If the name is not a node of the topology.
            ValueError: If the name is already registered.
        """
        if process.name not in self.graph:
            raise KeyError(f"{process.name!r} is not a node of the topology")
        if process.name in self._processes:
            raise ValueError(f"{process.name!r} already registered")
        self._processes[process.name] = process

    def process(self, name: str):
        """The *locally* registered endpoint for ``name``."""
        return self._processes[name]

    def link(self, a: str, b: str) -> LiveLink:
        """The live link for edge ``(a, b)`` (KeyError when absent)."""
        if not self.graph.has_edge(a, b):
            raise KeyError(f"no edge between {a!r} and {b!r}")
        key = self._key(a, b)
        live = self._links.get(key)
        if live is None:
            live = LiveLink(UniformDelay(self._one_way))
            self._links[key] = live
        return live

    def neighbours(self, name: str) -> list[str]:
        """Sorted neighbour names of ``name``."""
        return sorted(self.graph.neighbors(name))

    @property
    def names(self) -> list[str]:
        """All server names, sorted."""
        return sorted(self.graph.nodes)

    @property
    def xi(self) -> float:
        """The declared service-wide round-trip bound: ``2 × one-way``."""
        return 2.0 * self._one_way

    @property
    def topology_version(self) -> int:
        return self._topology_version

    def add_edge(self, a: str, b: str, *, kind: Optional[str] = None) -> None:
        for name in (a, b):
            if name not in self.graph:
                raise KeyError(f"{name!r} is not a node of the topology")
        if a == b:
            raise ValueError(f"cannot add a self-edge on {a!r}")
        if self.graph.has_edge(a, b):
            return
        self.graph.add_edge(a, b, kind=kind or "lan")
        self._topology_version += 1

    def remove_edge(self, a: str, b: str) -> None:
        if not self.graph.has_edge(a, b):
            return
        self.graph.remove_edge(a, b)
        self._topology_version += 1

    def add_tap(self, tap: MessageTap) -> None:
        self._taps.append(tap)

    def remove_tap(self, tap: MessageTap) -> None:
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Client-side partition: outbound sends crossing groups drop.

        The chaos proxy enforces partitions on-path for the gauntlet;
        this local gate keeps the simulator API complete for code that
        calls it directly on a transport.
        """
        membership: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                membership[name] = index
        self._partition = membership

    def heal(self) -> None:
        self._partition = None

    # --------------------------------------------------------------- sending

    def send(self, source: str, destination: str, message: Any) -> bool:
        """Encode and transmit one message; True when handed to the OS."""
        self.stats.sent += 1
        if self._transport is None or destination not in self._addresses:
            self.stats.dropped += 1
            return False
        if not self.graph.has_edge(source, destination):
            self.stats.dropped += 1
            return False
        if self._partition is not None:
            same = (
                source in self._partition
                and destination in self._partition
                and self._partition[source] == self._partition[destination]
            )
            if not same:
                self.stats.dropped += 1
                return False
        deliveries: List[Tuple[Any, float]] = [(message, 0.0)]
        if self._taps:
            for tap in self._taps:
                rewritten: List[Tuple[Any, float]] = []
                for msg, dly in deliveries:
                    out = tap(source, destination, msg, dly)
                    if out is None:
                        rewritten.append((msg, dly))
                    else:
                        self.stats.tapped += 1
                        rewritten.extend(out)
                deliveries = rewritten
            if not deliveries:
                self.stats.dropped += 1
                return False
        for msg, dly in deliveries:
            if isinstance(msg, TimeRequest):
                self.rtt.note_request(msg.destination, msg.request_id)
            payload = wire.encode_message(msg)
            if dly > 0:
                self.engine.schedule_after(
                    dly,
                    lambda p=payload, d=destination: self._transmit(p, d),
                    label=f"{source}->{destination}",
                )
            else:
                self._transmit(payload, destination)
        return True

    def _transmit(self, payload: bytes, destination: str) -> None:
        if self._transport is None:
            return
        target = self._via if self._via is not None else self._addresses[destination]
        self._transport.sendto(payload, target)

    def broadcast(self, source: str, message_factory, targets: Optional[Iterable[str]] = None) -> int:
        """Directed broadcast: send to each target (default: neighbours)."""
        recipients = list(targets) if targets is not None else self.neighbours(source)
        accepted = 0
        for destination in recipients:
            if self.send(source, destination, message_factory(destination)):
                accepted += 1
        return accepted

    def send_control(self, payload: Dict[str, Any], addr: Address) -> None:
        """Send one control packet directly (never through the proxy)."""
        if self._transport is not None:
            self._transport.sendto(wire.encode_control(payload), addr)

    # -------------------------------------------------------------- receiving

    def _datagram_received(self, data: bytes, addr: Address) -> None:
        kind = wire.packet_kind(data)
        if kind == "control":
            try:
                payload = wire.decode_control(data)
            except ValueError:
                self.decode_errors += 1
                return
            if self._on_control is not None:
                self._on_control(payload, addr)
            return
        try:
            message = wire.decode_message(data)
        except ValueError:
            # Garbage (or proxy-mangled beyond framing): a real network
            # drops what it cannot parse; admission never sees it.
            self.decode_errors += 1
            self.stats.dropped += 1
            return
        if isinstance(message, TimeReply):
            self.rtt.note_reply(message.server, message.request_id)
        target = self._processes.get(message.destination)
        if target is None:
            self.stats.dropped += 1
            return
        self.stats.delivered += 1
        target.deliver(message, None)
