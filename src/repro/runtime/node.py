"""One live time-server process.

``python -m repro.runtime.node <config.json>`` boots a single server of
the cluster: a :class:`~repro.runtime.engine.WallClockEngine` on the
cluster's shared monotonic epoch, a
:class:`~repro.runtime.transport.UdpTransport` bound to the node's port,
and the *unmodified* policy stack — plain
:class:`~repro.service.server.TimeServer`,
:class:`~repro.service.hardening.HardenedTimeServer`, or
:class:`~repro.security.server.AuthenticatedTimeServer` — polling
neighbours with rule MM-2 over real datagrams.

Two live-plane additions:

* **Slew-honest MM-1 accounting** — hardened/authenticated nodes read
  time through a :class:`~repro.clocks.slewing.SlewingClock`, so a reset
  is *applied* gradually.  Until the slew drains, the displayed clock
  differs from the policy's target by up to ``slew_remaining``; the
  ``_SlewAwareMixin`` charges that pending correction to ``ε_i`` at
  reset time (the same pattern as the holdover subsystem), keeping the
  advertised interval a true bound *during* the slew.
* **Live invariant probes** — a periodic engine task checks, against the
  shared true-time axis, that rule MM-1 holds (``|C_i(t) − t| ≤ E_i(t)``
  within a read-skew slack) and that the displayed clock never runs
  backwards.  Violation counters are exported over the control plane and
  scraped by the gauntlet.

The control plane is a tiny JSON-over-UDP surface (``ping`` / ``stats``
/ ``metrics`` / ``drain`` / ``halt``) the supervisor uses for liveness
watchdogs, telemetry scraping, and graceful shutdown; it never crosses
the chaos proxy.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import networkx as nx
import numpy as np

from ..clocks.drift import DriftingClock
from ..clocks.slewing import SlewingClock
from ..core.mm import MMPolicy
from ..security.auth import Keyring
from ..security.server import AuthenticatedTimeServer, SecurityConfig
from ..service.hardening import HardenedTimeServer
from ..service.server import TimeServer
from ..telemetry.exporters import to_prometheus_text
from ..telemetry.instruments import ServiceTelemetry
from .engine import WallClockEngine
from .transport import UdpTransport

__all__ = ["LiveNode", "build_node", "load_config", "run_node"]

#: Allowance for the non-atomic read of (clock, axis) in a probe and for
#: float noise — far below any injected fault (tamper offsets are ~0.3 s).
PROBE_SLACK = 1e-3


class _SlewAwareMixin:
    """Charge pending slew to ``ε_i`` at reset (cf. holdover server)."""

    def _apply_reset(self, *args, **kwargs):
        result = super()._apply_reset(*args, **kwargs)
        pending = getattr(self.clock, "slew_remaining", 0.0)
        if pending:
            self._epsilon += abs(pending)
        return result


class LiveHardenedServer(_SlewAwareMixin, HardenedTimeServer):
    """Hardened server with slew-honest MM-1 accounting."""


class LiveAuthenticatedServer(_SlewAwareMixin, AuthenticatedTimeServer):
    """Authenticated + hardened server with slew-honest MM-1 accounting."""


class InvariantProbe:
    """Periodic live oracle: MM-1 validity and display monotonicity."""

    def __init__(self, engine: WallClockEngine, server: TimeServer, period: float) -> None:
        self.engine = engine
        self.server = server
        self.period = period
        self.probes = 0
        self.mm1_violations = 0
        self.monotonicity_violations = 0
        self.max_true_error = 0.0
        self.max_excess = 0.0  # worst |C−t| − E seen (negative when valid)
        self._last_value: Optional[float] = None
        self._task = None

    def start(self) -> None:
        self._task = self.engine.schedule_periodic(
            self.period, self._probe, label=f"probe/{self.server.name}"
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _probe(self) -> None:
        value, error = self.server.report()
        now = self.engine.now
        self.probes += 1
        offset = abs(value - now)
        if offset > self.max_true_error:
            self.max_true_error = offset
        excess = offset - error
        if excess > self.max_excess:
            self.max_excess = excess
        if excess > PROBE_SLACK:
            self.mm1_violations += 1
        if self._last_value is not None and value < self._last_value:
            self.monotonicity_violations += 1
        self._last_value = value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "probes": self.probes,
            "mm1_violations": self.mm1_violations,
            "monotonicity_violations": self.monotonicity_violations,
            "max_true_error": self.max_true_error,
            "max_excess": self.max_excess,
        }


def load_config(path) -> Dict[str, Any]:
    """Read and minimally validate a node config file."""
    config = json.loads(Path(path).read_text())
    for field in ("name", "host", "port", "peers", "edges"):
        if field not in config:
            raise ValueError(f"node config missing {field!r}")
    return config


def _build_graph(config: Dict[str, Any]) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(config["peers"].keys())
    for name in config.get("extra_nodes", []):
        graph.add_node(name)
    for a, b in config["edges"]:
        graph.add_edge(a, b)
    return graph


class LiveNode:
    """The assembled process: engine + transport + server + probes."""

    def __init__(self, config: Dict[str, Any]) -> None:
        self.config = config
        self.name: str = config["name"]
        self.kind: str = config.get("kind", "hardened")
        self.engine = WallClockEngine(epoch=config.get("epoch"))
        self.telemetry = ServiceTelemetry(spans=False, oracle=False)
        graph = _build_graph(config)
        addresses = {
            name: (host, int(port))
            for name, (host, port) in config["peers"].items()
        }
        via = config.get("via")
        self.transport = UdpTransport(
            self.engine,
            graph,
            addresses=addresses,
            one_way_bound=float(config.get("one_way_bound", 0.25)),
            via=(via[0], int(via[1])) if via else None,
            on_control=self._on_control,
        )
        self.server = self._build_server()
        self.transport.register(self.server)
        self.probe = InvariantProbe(
            self.engine, self.server, float(config.get("probe_period", 0.05))
        )
        self._control_addr: Optional[Tuple[str, int]] = None
        ctl = config.get("control")
        if ctl:
            self._control_addr = (ctl[0], int(ctl[1]))

    # -------------------------------------------------------------- assembly

    def _build_clock(self):
        skew = float(self.config.get("skew", 0.0))
        offset = float(self.config.get("initial_offset", 0.0))
        inner = DriftingClock(skew, epoch=0.0, initial=offset)
        if self.kind == "plain":
            return inner
        return SlewingClock(
            inner,
            slew_rate=float(self.config.get("slew_rate", 0.05)),
            panic_threshold=float(self.config.get("panic_threshold", 0.5)),
            sanity_bound=float(self.config.get("sanity_bound", 1000.0)),
        )

    def _build_server(self) -> TimeServer:
        cfg = self.config
        common = dict(
            initial_error=float(cfg.get("initial_error", 0.05)),
            first_poll_at=self.engine.now + float(cfg.get("poll_phase", 0.25)),
            telemetry=self.telemetry.server(self.name),
        )
        clock = self._build_clock()
        delta = float(cfg.get("delta", 1e-4))
        tau = float(cfg.get("tau", 0.75))
        policy = MMPolicy()
        if self.kind == "plain":
            return TimeServer(
                self.engine, self.name, clock, delta, self.transport,
                policy, tau, **common,
            )
        rng = np.random.default_rng(int(cfg.get("seed", 0)))
        if self.kind == "hardened":
            return LiveHardenedServer(
                self.engine, self.name, clock, delta, self.transport,
                policy, tau, hardening_rng=rng, **common,
            )
        if self.kind == "authenticated":
            security = SecurityConfig(
                keyring=Keyring.from_secret(cfg.get("secret", "repro-live"))
            )
            return LiveAuthenticatedServer(
                self.engine, self.name, clock, delta, self.transport,
                policy, tau, hardening_rng=rng, security=security, **common,
            )
        raise ValueError(f"unknown node kind {self.kind!r}")

    # --------------------------------------------------------- control plane

    def _on_control(self, payload: Dict[str, Any], addr) -> None:
        op = payload.get("op")
        token = payload.get("token")
        if op == "ping":
            self.transport.send_control(
                {"op": "pong", "token": token, "name": self.name}, addr
            )
        elif op == "stats":
            snap = self.stats_snapshot()
            snap.update({"op": "stats", "token": token})
            self.transport.send_control(snap, addr)
        elif op == "metrics":
            text = to_prometheus_text(self.telemetry.registry)
            self.transport.send_control(
                {"op": "metrics", "token": token, "name": self.name,
                 "text": text[:60000]},
                addr,
            )
        elif op == "drain":
            self.probe.stop()
            self.server.stop()
            self.transport.send_control(
                {"op": "drained", "token": token, "name": self.name}, addr
            )
            # Let the ack datagram flush before the loop winds down.
            self.engine.schedule_after(0.05, self.engine.stop, label="drain")
        elif op == "halt":
            self.engine.stop()

    def stats_snapshot(self) -> Dict[str, Any]:
        """Everything the gauntlet scrapes, JSON-safe."""
        value, error = self.server.report()
        stats = self.server.stats
        snap: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "now": self.engine.now,
            "clock_value": value,
            "error_bound": error,
            "true_error": self.server.true_error(),
            "is_correct": self.server.is_correct(),
            "rounds": stats.rounds,
            "resets": stats.resets,
            "rejects": stats.rejects,
            "replies_handled": stats.replies_handled,
            "invalid_replies": stats.invalid_replies,
            "requests_answered": stats.requests_answered,
            "events_processed": self.engine.events_processed,
            "net": {
                "sent": self.transport.stats.sent,
                "delivered": self.transport.stats.delivered,
                "dropped": self.transport.stats.dropped,
                "decode_errors": self.transport.decode_errors,
            },
            "rtt": self.transport.rtt.summary(),
            "rtt_samples": list(self.transport.rtt.samples[:256]),
            "invariants": self.probe.snapshot(),
        }
        security = getattr(self.server, "security_stats", None)
        if security is not None:
            snap["security"] = {
                "auth_failures": security.auth_failures,
                "replay_drops": security.replay_drops,
                "delay_attack_detections": security.delay_attack_detections,
                "delay_widens": security.delay_widens,
            }
        slew = self.server.clock
        if isinstance(slew, SlewingClock):
            snap["slew"] = {
                "slewed_out": slew.slewed_out,
                "steps": slew.steps,
                "insane_resets": slew.insane_resets,
            }
        return snap

    # -------------------------------------------------------------- lifecycle

    async def run(self) -> None:
        host, port = self.config["host"], int(self.config["port"])
        await self.transport.start((host, port))
        self.server.start()
        self.probe.start()
        if self._control_addr is not None:
            self.transport.send_control(
                {"op": "hello", "name": self.name, "pid": 0}, self._control_addr
            )
        try:
            await self.engine.run()
        finally:
            self.probe.stop()
            self.server.stop()
            self.transport.close()


async def run_node(config: Dict[str, Any]) -> None:
    node = LiveNode(config)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, node.engine.stop)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    await node.run()


def build_node(config: Dict[str, Any]) -> LiveNode:
    """Assemble a node without running it (tests drive these in-process)."""
    return LiveNode(config)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.runtime.node <config.json>", file=sys.stderr)
        return 2
    config = load_config(argv[0])
    asyncio.run(run_node(config))
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
