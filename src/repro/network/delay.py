"""Message-delay models.

Section 2.2 assumes the one-way delay is "nondeterministic and bounded by
ξ" with minimum zero, and notes both algorithms extend easily to a nonzero
minimum.  A :class:`DelayModel` samples one-way delays and *declares* its
bound, so experiments can feed the same ξ into the theorem-bound
calculators that the simulator actually enforces.

``σ`` (request leg) and ``ρ`` (reply leg) are sampled independently per
message, matching the paper's symbols.
"""

from __future__ import annotations

import abc

import numpy as np


class DelayModel(abc.ABC):
    """Samples one-way message delays with a hard upper bound.

    Attributes:
        minimum: Smallest possible one-way delay (paper default 0).
        bound: Largest possible one-way delay.  Note the paper's ξ bounds
            the *round trip*; a network built from a one-way model with
            bound ``d`` has ``ξ = 2d``.
    """

    minimum: float = 0.0
    bound: float = 0.0

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one one-way delay in ``[minimum, bound]``."""

    @property
    def round_trip_bound(self) -> float:
        """ξ for a symmetric link using this model on both legs."""
        return 2.0 * self.bound


class ConstantDelay(DelayModel):
    """A degenerate model: every message takes exactly ``value`` seconds."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"delay must be non-negative, got {value}")
        self.minimum = float(value)
        self.bound = float(value)
        self._value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self._value


class UniformDelay(DelayModel):
    """One-way delay uniform on ``[minimum, bound]`` — the paper's model.

    With ``minimum=0`` this is exactly the Section 2.2 assumption.
    """

    def __init__(self, bound: float, minimum: float = 0.0) -> None:
        if minimum < 0:
            raise ValueError(f"minimum must be non-negative, got {minimum}")
        if bound < minimum:
            raise ValueError(
                f"bound {bound} must be at least the minimum {minimum}"
            )
        self.minimum = float(minimum)
        self.bound = float(bound)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.minimum, self.bound))


class TruncatedExponentialDelay(DelayModel):
    """Exponential delays rejected above ``bound`` — realistic queueing tails.

    Most packets are fast, a few approach the bound; the declared ξ stays
    valid because samples above the bound are redrawn.
    """

    def __init__(self, mean: float, bound: float, minimum: float = 0.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if minimum < 0:
            raise ValueError(f"minimum must be non-negative, got {minimum}")
        if bound <= minimum:
            raise ValueError(
                f"bound {bound} must exceed the minimum {minimum}"
            )
        self.mean = float(mean)
        self.minimum = float(minimum)
        self.bound = float(bound)

    def sample(self, rng: np.random.Generator) -> float:
        while True:
            value = self.minimum + rng.exponential(self.mean)
            if value <= self.bound:
                return float(value)


class BimodalDelay(DelayModel):
    """Mixture of a fast and a slow uniform mode (LAN hop vs. congested hop).

    Args:
        fast: Model for the common case.
        slow: Model for the congested case.
        slow_probability: Probability a message takes the slow mode.
    """

    def __init__(
        self, fast: DelayModel, slow: DelayModel, slow_probability: float
    ) -> None:
        if not 0.0 <= slow_probability <= 1.0:
            raise ValueError(
                f"slow_probability must be in [0, 1], got {slow_probability}"
            )
        self.fast = fast
        self.slow = slow
        self.slow_probability = float(slow_probability)
        self.minimum = min(fast.minimum, slow.minimum)
        self.bound = max(fast.bound, slow.bound)

    def sample(self, rng: np.random.Generator) -> float:
        if rng.uniform() < self.slow_probability:
            return self.slow.sample(rng)
        return self.fast.sample(rng)
