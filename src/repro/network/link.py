"""Links: delay + loss + availability for one edge of the topology.

A :class:`Link` bundles everything the transport needs to know about one
communication path: the one-way delay model for each direction, a loss
probability, and an up/down flag (used both for injected link failures and
for network partitions).

Chaos hooks: :attr:`Link.fault_loss`, :attr:`Link.delay_scale` and
:attr:`Link.delay_extra` let a fault injector superimpose loss bursts and
delay spikes on a live link without replacing its delay models; at their
defaults they are exact no-ops (same RNG draws, same sampled delays), so
fault-free runs are bit-identical with or without the hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .delay import DelayModel, UniformDelay


@dataclass
class LinkStats:
    """Per-link delivery counters."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    blocked: int = 0  # link down or partitioned


class Link:
    """State and behaviour of one bidirectional communication path.

    Args:
        delay: One-way delay model (applied independently per message and
            direction, giving the paper's independent σ and ρ legs).
        loss_probability: Chance an individual message is silently dropped.
        up: Initial availability.
        reverse_delay: Optional distinct delay model for the *reverse*
            direction (see :meth:`try_send`'s ``forward`` flag), modelling
            asymmetric paths — the case midpoint-compensating algorithms
            cannot detect but interval algorithms tolerate by construction.
    """

    def __init__(
        self,
        delay: DelayModel | None = None,
        loss_probability: float = 0.0,
        up: bool = True,
        reverse_delay: DelayModel | None = None,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        self.delay = delay if delay is not None else UniformDelay(0.05)
        self.reverse_delay = reverse_delay
        self.loss_probability = float(loss_probability)
        self.up = bool(up)
        self.partitioned = False
        self.stats = LinkStats()
        # Fault-injection knobs (see module docstring); no-ops at defaults.
        self.fault_loss = 0.0
        self.delay_scale = 1.0
        self.delay_extra = 0.0

    @property
    def available(self) -> bool:
        """Whether messages can currently cross this link."""
        return self.up and not self.partitioned

    def take_down(self) -> None:
        """Fail the link (messages are blocked until :meth:`bring_up`)."""
        self.up = False

    def bring_up(self) -> None:
        """Repair the link."""
        self.up = True

    def try_send(self, rng: np.random.Generator, forward: bool = True) -> float | None:
        """Attempt one message crossing.

        Args:
            rng: Random stream for loss and delay sampling.
            forward: Direction flag; the reverse direction uses
                ``reverse_delay`` when configured (symmetric otherwise).

        Returns:
            The sampled one-way delay, or None if the message was blocked
            (link down/partitioned) or lost.
        """
        self.stats.sent += 1
        if not self.available:
            self.stats.blocked += 1
            return None
        # Independent native-loss and fault-burst coin flips so that a
        # fault_loss of 0 draws exactly the same RNG sequence as before.
        if self.loss_probability > 0.0 and rng.uniform() < self.loss_probability:
            self.stats.lost += 1
            return None
        if self.fault_loss > 0.0 and rng.uniform() < self.fault_loss:
            self.stats.lost += 1
            return None
        self.stats.delivered += 1
        model = self.delay
        if not forward and self.reverse_delay is not None:
            model = self.reverse_delay
        return model.sample(rng) * self.delay_scale + self.delay_extra
