"""Simulated internetwork: topologies, delays, links, transport.

Substitute for the paper's Xerox Research Internet — the algorithms only
observe bounded round-trip delays and message payloads, which is exactly
the interface this package provides.
"""

from .delay import (
    BimodalDelay,
    ConstantDelay,
    DelayModel,
    TruncatedExponentialDelay,
    UniformDelay,
)
from .link import Link, LinkStats
from .topology import (
    full_mesh,
    line,
    neighbours,
    random_connected,
    ring,
    star,
    two_level_internet,
    validate_topology,
)
from .transport import Network, NetworkStats

__all__ = [
    "BimodalDelay",
    "ConstantDelay",
    "DelayModel",
    "Link",
    "LinkStats",
    "Network",
    "NetworkStats",
    "TruncatedExponentialDelay",
    "UniformDelay",
    "full_mesh",
    "line",
    "neighbours",
    "random_connected",
    "ring",
    "star",
    "two_level_internet",
    "validate_topology",
]
