"""Service topologies.

Section 3 defines "a graph in which time servers are nodes and
communication paths are edges", assumed connected; each server synchronizes
with its *neighbours*.  This module builds those graphs (as ``networkx``
graphs over server-name strings) for the shapes the experiments need,
including a two-level internetwork generator modelled on the paper's
setting (the Xerox Research Internet: local networks of servers joined by
inter-network gateway links).
"""

from __future__ import annotations

from typing import Optional, Sequence

import networkx as nx
import numpy as np


def _names(count: int, prefix: str) -> list[str]:
    if count < 1:
        raise ValueError(f"need at least one server, got {count}")
    return [f"{prefix}{index + 1}" for index in range(count)]


def full_mesh(count: int, prefix: str = "S") -> nx.Graph:
    """A fully-connected service — the topology of Theorems 2 and 3."""
    graph: nx.Graph = nx.complete_graph(count)
    return nx.relabel_nodes(graph, dict(enumerate(_names(count, prefix))))


def ring(count: int, prefix: str = "S") -> nx.Graph:
    """A cycle of servers; each polls exactly two neighbours."""
    if count < 3:
        raise ValueError(f"a ring needs at least 3 servers, got {count}")
    graph: nx.Graph = nx.cycle_graph(count)
    return nx.relabel_nodes(graph, dict(enumerate(_names(count, prefix))))


def line(count: int, prefix: str = "S") -> nx.Graph:
    """A path of servers; the diameter-maximising connected topology."""
    graph: nx.Graph = nx.path_graph(count)
    return nx.relabel_nodes(graph, dict(enumerate(_names(count, prefix))))


def star(count: int, prefix: str = "S") -> nx.Graph:
    """One hub (``S1``) connected to every other server."""
    if count < 2:
        raise ValueError(f"a star needs at least 2 servers, got {count}")
    graph: nx.Graph = nx.star_graph(count - 1)
    return nx.relabel_nodes(graph, dict(enumerate(_names(count, prefix))))


def random_connected(
    count: int,
    edge_probability: float,
    rng: np.random.Generator,
    prefix: str = "S",
) -> nx.Graph:
    """An Erdős–Rényi graph patched to be connected.

    Disconnected components are stitched by adding one edge between a random
    node of each successive component pair, preserving the graph's sparsity
    while satisfying the paper's connectivity assumption.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    names = _names(count, prefix)
    graph = nx.Graph()
    graph.add_nodes_from(names)
    for i in range(count):
        for j in range(i + 1, count):
            if rng.uniform() < edge_probability:
                graph.add_edge(names[i], names[j])
    components = [sorted(c) for c in nx.connected_components(graph)]
    for first, second in zip(components, components[1:]):
        a = first[int(rng.integers(len(first)))]
        b = second[int(rng.integers(len(second)))]
        graph.add_edge(a, b)
    return graph


def two_level_internet(
    networks: int,
    servers_per_network: int,
    rng: Optional[np.random.Generator] = None,
    extra_gateway_links: int = 0,
) -> nx.Graph:
    """A Xerox-internet-like topology: full-mesh LANs joined by gateways.

    Each local network ``k`` is a full mesh over servers ``Nk-S1 ..
    Nk-Sm``; the first server of each network doubles as its gateway, and
    gateways form a ring (plus ``extra_gateway_links`` random chords).
    Edges carry a ``kind`` attribute (``"lan"`` or ``"wan"``) so the
    transport can assign slower delay models to inter-network hops.

    Args:
        networks: Number of local networks (>= 1).
        servers_per_network: Servers on each local network (>= 1).
        rng: Needed only when ``extra_gateway_links`` > 0.
        extra_gateway_links: Random extra WAN chords between gateways.
    """
    if networks < 1:
        raise ValueError(f"need at least one network, got {networks}")
    if servers_per_network < 1:
        raise ValueError(
            f"need at least one server per network, got {servers_per_network}"
        )
    graph = nx.Graph()
    gateways: list[str] = []
    for net in range(networks):
        names = [
            f"N{net + 1}-S{index + 1}" for index in range(servers_per_network)
        ]
        graph.add_nodes_from(names)
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                graph.add_edge(names[i], names[j], kind="lan")
        gateways.append(names[0])
    if networks >= 2:
        for a, b in zip(gateways, gateways[1:]):
            graph.add_edge(a, b, kind="wan")
        if networks > 2:
            graph.add_edge(gateways[-1], gateways[0], kind="wan")
    if extra_gateway_links > 0:
        if rng is None:
            raise ValueError("extra_gateway_links requires an rng")
        added = 0
        attempts = 0
        while added < extra_gateway_links and attempts < 100 * extra_gateway_links:
            attempts += 1
            a = gateways[int(rng.integers(len(gateways)))]
            b = gateways[int(rng.integers(len(gateways)))]
            if a != b and not graph.has_edge(a, b):
                graph.add_edge(a, b, kind="wan")
                added += 1
    return graph


def stratum_hierarchy(
    total: int,
    *,
    core: int = 4,
    fanout: int = 8,
    prefix: str = "T",
) -> nx.Graph:
    """An N-level stratum hierarchy for planet-scale experiments.

    Stratum 1 is a full mesh of ``core`` servers; each further stratum
    grows by up to ``fanout`` children per parent until ``total`` servers
    exist.  Every child polls its parent (edge kind ``"uplink"``) and its
    adjacent siblings under the same parent (kind ``"lateral"``), so
    degrees stay bounded (≈ ``fanout + 3``) while errors propagate down
    the strata exactly as Lemma 1 / Theorem 8 describe: stratum ``s``
    inherits stratum ``s−1``'s error plus per-hop round-trip slack.

    Node names are ``{prefix}{stratum}-{index:06d}``; recover the stratum
    with :func:`stratum_of`.  The geometric growth keeps the level count
    below 10 for any ``total`` this codebase runs, so lexicographic name
    order groups servers by stratum.

    Args:
        total: Total server count (>= 1).
        core: Stratum-1 mesh size (clamped to ``total``).
        fanout: Maximum children per parent (>= 1).
    """
    if total < 1:
        raise ValueError(f"need at least one server, got {total}")
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    core = min(core, total)
    graph = nx.Graph()
    core_names = [f"{prefix}1-{i:06d}" for i in range(core)]
    graph.add_nodes_from(core_names)
    for i in range(core):
        for j in range(i + 1, core):
            graph.add_edge(core_names[i], core_names[j], kind="core")
    levels = [core_names]
    count = core
    stratum = 1
    while count < total:
        stratum += 1
        parents = levels[-1]
        size = min(total - count, len(parents) * fanout)
        names = [f"{prefix}{stratum}-{i:06d}" for i in range(size)]
        graph.add_nodes_from(names)
        groups: dict[str, list[str]] = {}
        for i, name in enumerate(names):
            parent = parents[i % len(parents)]
            graph.add_edge(name, parent, kind="uplink")
            groups.setdefault(parent, []).append(name)
        for group in groups.values():
            for a, b in zip(group, group[1:]):
                graph.add_edge(a, b, kind="lateral")
        levels.append(names)
        count += size
    return graph


def stratum_of(name: str, prefix: str = "T") -> int:
    """The stratum encoded in a :func:`stratum_hierarchy` node name."""
    head = name[len(prefix) :]
    return int(head.split("-", 1)[0])


def validate_topology(
    graph: nx.Graph, *, present: Optional[Sequence[str]] = None
) -> None:
    """Check the paper's standing assumptions: non-empty and connected.

    Safe to re-run on a live, mutated graph — the dynamic-topology
    subsystem calls it after every edge or membership change.  When
    ``present`` is given, the check is restricted to the induced subgraph
    over those servers: departed members may be transiently unreachable
    without violating the connectivity assumption for the servers still
    in the service.

    Raises:
        ValueError: If the graph is empty or disconnected.  The
            disconnection error names the smallest isolated component so
            a failing churn schedule can be diagnosed from the message
            alone.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("topology has no servers")
    view = graph if present is None else graph.subgraph(present)
    if present is not None and view.number_of_nodes() == 0:
        raise ValueError("topology has no present servers")
    if nx.is_connected(view):
        return
    components = sorted(
        (sorted(component) for component in nx.connected_components(view)),
        key=lambda names: (len(names), names),
    )
    isolated = components[0]
    raise ValueError(
        "the paper assumes a connected service topology; "
        f"isolated component: {{{', '.join(isolated)}}} "
        f"({len(isolated)} of {view.number_of_nodes()} servers)"
    )


def neighbours(graph: nx.Graph, name: str) -> list[str]:
    """Sorted neighbour names of a server (sorted for determinism)."""
    return sorted(graph.neighbors(name))
