"""Message transport over a topology.

:class:`Network` glues the pieces together: a topology graph, one
:class:`~repro.network.link.Link` per edge, a registry of
:class:`~repro.simulation.process.SimProcess` endpoints, and the engine that
schedules deliveries.  It exposes:

* :meth:`Network.send` — unicast along an edge (or, optionally, a long-haul
  path to a non-adjacent server, modelling the internetwork routing the
  paper's recovery anecdote relies on);
* :meth:`Network.broadcast` — the "directed broadcasting" primitive
  [Boggs 82] the paper assumes for data collection: one message to every
  neighbour;
* partition control (:meth:`partition` / :meth:`heal`) used by the
  fault-injection experiments;
* message taps (:meth:`add_tap` / :meth:`remove_tap`) — an interception
  hook the chaos injector uses to corrupt, duplicate, reorder, or drop
  individual messages in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..simulation.engine import SimulationEngine
from ..simulation.process import SimProcess
from ..simulation.rng import RngRegistry
from .delay import DelayModel
from .link import Link
from .topology import validate_topology


@dataclass
class NetworkStats:
    """Aggregate message counters across all links."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    tapped: int = 0  # deliveries rewritten (or multiplied) by a message tap


#: A message tap: called with ``(source, destination, message, delay)`` for
#: every message the transport accepted.  Return ``None`` to pass the
#: message through untouched, or a list of ``(message, delay)`` deliveries
#: replacing it — ``[]`` drops it, one entry modifies/delays it, several
#: entries duplicate it.
MessageTap = Callable[[str, str, Any, float], Optional[List[Tuple[Any, float]]]]


class Network:
    """The simulated internetwork connecting the time servers.

    Args:
        engine: Simulation engine used to schedule deliveries.
        graph: Topology; nodes are server names.  Edge attribute ``kind``
            (``"lan"``/``"wan"``), when present, selects between
            ``lan_delay`` and ``wan_delay``.
        rng: Registry supplying per-link random streams.
        lan_delay: Delay model for ordinary (or unlabelled) edges.
        wan_delay: Delay model for edges labelled ``kind="wan"``; defaults
            to ``lan_delay``.
        loss_probability: Default per-message loss on every link.
        long_haul: When set, :meth:`send` between *non-adjacent* servers is
            permitted using this delay model (modelling multi-hop internet
            routing); when None such sends are dropped.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        graph: nx.Graph,
        rng: RngRegistry,
        *,
        lan_delay: DelayModel,
        wan_delay: Optional[DelayModel] = None,
        loss_probability: float = 0.0,
        long_haul: Optional[DelayModel] = None,
    ) -> None:
        validate_topology(graph)
        self.engine = engine
        self.graph = graph
        self._rng = rng
        self._lan_delay = lan_delay
        self._wan_delay = wan_delay if wan_delay is not None else lan_delay
        self._long_haul = long_haul
        self._loss_probability = float(loss_probability)
        self._processes: Dict[str, SimProcess] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._taps: List[MessageTap] = []
        self._topology_version = 0
        self._xi_cache: Optional[Tuple[int, float]] = None
        self.stats = NetworkStats()
        for a, b, data in graph.edges(data=True):
            delay = self._wan_delay if data.get("kind") == "wan" else self._lan_delay
            self._links[self._key(a, b)] = Link(
                delay=delay, loss_probability=loss_probability
            )

    # ------------------------------------------------------------- plumbing

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def register(self, process: SimProcess) -> None:
        """Attach a process as the endpoint for its (topology node) name.

        Raises:
            KeyError: If the name is not a node of the topology.
            ValueError: If the name is already registered.
        """
        if process.name not in self.graph:
            raise KeyError(f"{process.name!r} is not a node of the topology")
        if process.name in self._processes:
            raise ValueError(f"{process.name!r} already registered")
        self._processes[process.name] = process

    def process(self, name: str) -> SimProcess:
        """The registered endpoint for ``name``."""
        return self._processes[name]

    def link(self, a: str, b: str) -> Link:
        """The link object for edge ``(a, b)``.

        Raises:
            KeyError: If the edge does not exist.
        """
        return self._links[self._key(a, b)]

    def neighbours(self, name: str) -> list[str]:
        """Sorted neighbour names of ``name``."""
        return sorted(self.graph.neighbors(name))

    # ------------------------------------------------------- live mutation

    @property
    def topology_version(self) -> int:
        """Monotonic counter bumped on every live topology mutation.

        Consumers that cache per-edge state (the telemetry sampler's
        gauge rows, for instance) compare this against their last seen
        value instead of re-scanning the edge set every sample.
        """
        return self._topology_version

    def add_edge(self, a: str, b: str, *, kind: Optional[str] = None) -> None:
        """Create a live edge between two existing nodes.

        Idempotent: adding an existing edge is a no-op.  When the edge
        existed before (was removed by churn), its old :class:`Link` is
        reused — brought up, but keeping its delay model — so a restored
        path behaves like the same physical link coming back.

        Args:
            a: One endpoint (must be a topology node).
            b: The other endpoint.
            kind: ``"lan"``/``"wan"`` delay class for a brand-new edge;
                defaults to lan.  Ignored when reusing a prior link.

        Raises:
            KeyError: If either endpoint is not a node of the topology.
            ValueError: If ``a == b``.
        """
        for name in (a, b):
            if name not in self.graph:
                raise KeyError(f"{name!r} is not a node of the topology")
        if a == b:
            raise ValueError(f"cannot add a self-edge on {a!r}")
        if self.graph.has_edge(a, b):
            return
        self.graph.add_edge(a, b, kind=kind or "lan")
        key = self._key(a, b)
        link = self._links.get(key)
        if link is None:
            delay = self._wan_delay if kind == "wan" else self._lan_delay
            self._links[key] = Link(
                delay=delay, loss_probability=self._loss_probability
            )
        else:
            link.bring_up()
        self._topology_version += 1

    def remove_edge(self, a: str, b: str) -> None:
        """Remove a live edge; a no-op when the edge does not exist.

        The underlying :class:`Link` object is kept (unreachable — sends
        gate on the graph) so a later :meth:`add_edge` restores the same
        link and its fault state stays attributable.
        """
        if not self.graph.has_edge(a, b):
            return
        self.graph.remove_edge(a, b)
        self._topology_version += 1

    # ------------------------------------------------------------------ taps

    def add_tap(self, tap: MessageTap) -> None:
        """Install a message tap (taps run in installation order)."""
        self._taps.append(tap)

    def remove_tap(self, tap: MessageTap) -> None:
        """Remove a previously installed tap; unknown taps are ignored."""
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    @property
    def names(self) -> list[str]:
        """All server names, sorted."""
        return sorted(self.graph.nodes)

    @property
    def xi(self) -> float:
        """The service-wide round-trip bound ξ implied by the delay models.

        The worst case over the link classes *actually present* in the
        topology, plus long-haul when configured.  Cached per topology
        version: validators consult ξ on every reply, and rescanning the
        edge set each time dominated the hardened hot path.
        """
        cached = self._xi_cache
        if cached is not None and cached[0] == self._topology_version:
            return cached[1]
        bounds = [self._lan_delay.round_trip_bound]
        if any(
            data.get("kind") == "wan" for _a, _b, data in self.graph.edges(data=True)
        ):
            bounds.append(self._wan_delay.round_trip_bound)
        if self._long_haul is not None:
            bounds.append(self._long_haul.round_trip_bound)
        value = max(bounds)
        self._xi_cache = (self._topology_version, value)
        return value

    # -------------------------------------------------------------- sending

    def send(self, source: str, destination: str, message: Any) -> bool:
        """Send one message; returns whether it was accepted for delivery.

        Adjacent servers use their link (delay, loss, partition state).
        Non-adjacent servers use the long-haul model when configured, and
        are otherwise dropped — the paper's servers only talk to
        neighbours, except during other-network recovery.
        """
        self.stats.sent += 1
        if destination not in self._processes:
            self.stats.dropped += 1
            return False
        rng = self._rng.stream(f"net/{source}->{destination}")
        if self.graph.has_edge(source, destination):
            # "Forward" is the canonical key direction (lexicographically
            # smaller endpoint first); reverse traffic may use a distinct
            # delay model on asymmetric links.
            forward = self._key(source, destination)[0] == source
            delay = self.link(source, destination).try_send(rng, forward=forward)
        elif self._long_haul is not None and source != destination:
            delay = self._long_haul.sample(rng)
        else:
            delay = None
        if delay is None:
            self.stats.dropped += 1
            return False
        deliveries: List[Tuple[Any, float]] = [(message, delay)]
        if self._taps:
            for tap in self._taps:
                rewritten: List[Tuple[Any, float]] = []
                for msg, dly in deliveries:
                    out = tap(source, destination, msg, dly)
                    if out is None:
                        rewritten.append((msg, dly))
                    else:
                        self.stats.tapped += 1
                        rewritten.extend(out)
                deliveries = rewritten
            if not deliveries:
                self.stats.dropped += 1
                return False
        target = self._processes[destination]
        sender = self._processes.get(source)
        for msg, dly in deliveries:
            self.engine.schedule_after(
                dly,
                lambda m=msg: self._deliver(target, m, sender),
                label=f"{source}->{destination}",
            )
        return True

    def _deliver(self, target: SimProcess, message: Any, sender: Optional[SimProcess]) -> None:
        self.stats.delivered += 1
        target.deliver(message, sender)  # type: ignore[arg-type]

    def broadcast(self, source: str, message_factory, targets: Optional[Iterable[str]] = None) -> int:
        """Directed broadcast: send to each target (default: all neighbours).

        Args:
            source: Sending server.
            message_factory: Callable ``(destination) -> message`` so each
                copy can carry its addressee (needed for reply matching).
            targets: Explicit recipient list; defaults to the topology
                neighbours of ``source``.

        Returns:
            Number of messages accepted for delivery.
        """
        recipients = list(targets) if targets is not None else self.neighbours(source)
        accepted = 0
        for destination in recipients:
            if self.send(source, destination, message_factory(destination)):
                accepted += 1
        return accepted

    # ----------------------------------------------------------- partitions

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Partition the network: block links crossing between the groups.

        Servers in the same group keep communicating; links between
        different groups (and to servers in no group) are marked
        partitioned.  Long-haul sends are unaffected by partitions only if
        both ends are in the same group.
        """
        membership: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                membership[name] = index
        for (a, b), link in self._links.items():
            same = (
                a in membership
                and b in membership
                and membership[a] == membership[b]
            )
            link.partitioned = not same

    def heal(self) -> None:
        """Remove any partition (link up/down flags are untouched)."""
        for link in self._links.values():
            link.partitioned = False
