"""Open-loop client workload generation.

A flash crowd is an *open-loop* phenomenon: arrivals keep coming at the
offered rate no matter how slowly the service answers — which is exactly
why a closed-loop generator (next request only after the last reply)
cannot reproduce overload collapse.  :class:`WorkloadGenerator` drives a
client with a non-homogeneous Poisson arrival process shaped by a
:class:`FlashCrowdProfile`: a calm base rate that ramps into a crowd
plateau and back down.

Arrival times are drawn by Lewis–Shedler thinning against the profile's
peak rate, so the process is exact for any rate shape and fully
deterministic under a seeded RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..service.client import QueryStrategy, TimeClient
from ..simulation.engine import SimulationEngine
from ..simulation.process import SimProcess


@dataclass(frozen=True)
class FlashCrowdProfile:
    """A piecewise-linear offered-rate shape: base → ramp → crowd → ramp → base.

    Attributes:
        base_rate: Queries per second outside the crowd.
        crowd_rate: Queries per second at the crowd plateau.
        crowd_start: When the up-ramp begins.
        crowd_end: When the down-ramp ends.
        ramp: Seconds each ramp takes (linear).
    """

    base_rate: float = 5.0
    crowd_rate: float = 200.0
    crowd_start: float = 30.0
    crowd_end: float = 70.0
    ramp: float = 2.0

    def __post_init__(self) -> None:
        if self.base_rate < 0 or self.crowd_rate <= 0:
            raise ValueError("rates must be non-negative (crowd positive)")
        if self.ramp < 0:
            raise ValueError(f"ramp must be non-negative, got {self.ramp}")
        if not self.crowd_start + self.ramp <= self.crowd_end - self.ramp:
            raise ValueError("crowd window too short for its ramps")

    @property
    def peak_rate(self) -> float:
        """The majorising rate used for thinning."""
        return max(self.base_rate, self.crowd_rate)

    def rate_at(self, t: float) -> float:
        """Offered rate at time ``t``."""
        if t < self.crowd_start or t >= self.crowd_end:
            return self.base_rate
        up_done = self.crowd_start + self.ramp
        down_from = self.crowd_end - self.ramp
        if t < up_done:
            frac = (t - self.crowd_start) / max(self.ramp, 1e-12)
            return self.base_rate + frac * (self.crowd_rate - self.base_rate)
        if t >= down_from:
            frac = (self.crowd_end - t) / max(self.ramp, 1e-12)
            return self.base_rate + frac * (self.crowd_rate - self.base_rate)
        return self.crowd_rate

    def in_crowd(self, t: float) -> bool:
        """Whether ``t`` lies in the full-rate crowd plateau."""
        return self.crowd_start + self.ramp <= t < self.crowd_end - self.ramp


class WorkloadGenerator(SimProcess):
    """Drives one client with Poisson arrivals shaped by a profile.

    Each arrival issues one ``client.ask`` to a uniformly drawn server
    (one server per query — the resilient client's retry logic, not a
    broadcast, is what provides redundancy).

    Args:
        engine: The simulation engine.
        name: Process name (for event labels).
        client: The client to drive.
        servers: Candidate servers handed to each ``ask``.
        profile: The offered-rate shape.
        rng: Seeded RNG stream — the only source of randomness.
        strategy: Query strategy passed through to ``ask``.
        stop_at: No arrivals are generated at or beyond this time
            (None: run for as long as the simulation does).
        servers_per_ask: How many candidates each ``ask`` receives; the
            base client broadcasts to all of them, the resilient client
            rotates through them, so 1 keeps the plain arm honest while
            the controlled arm typically wants the full list.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        client: TimeClient,
        servers: Sequence[str],
        profile: FlashCrowdProfile,
        rng: np.random.Generator,
        *,
        strategy: QueryStrategy = QueryStrategy.FIRST_REPLY,
        stop_at: Optional[float] = None,
        servers_per_ask: int = 1,
    ) -> None:
        super().__init__(engine, name)
        if not servers:
            raise ValueError("the workload needs at least one server")
        if not 1 <= servers_per_ask <= len(servers):
            raise ValueError(
                f"servers_per_ask must be in [1, {len(servers)}], got "
                f"{servers_per_ask}"
            )
        self.client = client
        self.servers = tuple(servers)
        self.profile = profile
        self.rng = rng
        self.strategy = strategy
        self.stop_at = stop_at
        self.servers_per_ask = servers_per_ask
        self.issued = 0
        self.issued_in_crowd = 0

    def on_start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        """Lewis–Shedler thinning: candidate gaps at the peak rate,
        accepted with probability ``rate(t)/peak`` — exact and O(1) memory.
        """
        peak = self.profile.peak_rate
        t = self.now
        while True:
            t += float(self.rng.exponential(1.0 / peak))
            if self.stop_at is not None and t >= self.stop_at:
                return
            if float(self.rng.uniform()) <= self.profile.rate_at(t) / peak:
                break
        self.call_at(t, self._arrive)

    def _arrive(self) -> None:
        self.issued += 1
        if self.profile.in_crowd(self.now):
            self.issued_in_crowd += 1
        if self.servers_per_ask == len(self.servers):
            chosen = list(self.servers)
        else:
            start = int(self.rng.integers(len(self.servers)))
            chosen = [
                self.servers[(start + i) % len(self.servers)]
                for i in range(self.servers_per_ask)
            ]
        self.client.ask(chosen, strategy=self.strategy)
        self._schedule_next()
