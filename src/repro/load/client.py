"""A client built for an overloaded service.

:class:`ResilientTimeClient` replaces the base client's one-shot
broadcast with the retry discipline a production client needs when
servers can shed, degrade, or stall:

* each query is a sequence of single-server *attempts*, every attempt
  carrying its own request id (a late reply to attempt 1 can never be
  mistaken for an answer to attempt 3);
* failed attempts retry on the next server with jittered exponential
  backoff — jitter so a shed crowd does not return in lockstep;
* BUSY replies honour the server's ``retry_after`` hint (backing off at
  least that long) instead of counting as server death;
* per-server circuit breakers stop the client hammering a peer that has
  stopped answering, probing it again after a cool-down;
* optionally, a *hedge*: if an attempt has gone unanswered for a while
  but has not yet timed out, a duplicate attempt is sent to a different
  server and the first usable answer wins;
* a query that exhausts its attempt budget produces an **explicit**
  failed :class:`~repro.service.client.ClientResult` — never a silent
  drop.

DEGRADED replies are accepted as answers: their interval is wider but —
by construction (:meth:`repro.load.server.LoadAwareServer
._answer_degraded`) — still contains true time.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..service.client import ClientResult, QueryStrategy, TimeClient
from ..service.idspace import ATTEMPT_ID_SPACE, RequestIdAllocator
from ..service.messages import ReplyStatus, RequestKind, TimeReply, TimeRequest
from ..simulation.events import Event


# ----------------------------------------------------------------- backoff


@dataclass(frozen=True)
class BackoffPolicy:
    """Jittered exponential backoff between attempts.

    Attributes:
        base: Delay before the first retry, in seconds.
        factor: Multiplier per further retry.
        max_delay: Cap on the un-jittered delay.
        jitter: Fractional jitter: the delay is scaled by a uniform
            draw from ``[1 − jitter, 1 + jitter]``.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"base must be positive, got {self.base}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_delay < self.base:
            raise ValueError("max_delay must be >= base")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, rng: Optional[np.random.Generator]) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.max_delay, self.base * self.factor ** max(0, attempt - 1))
        if rng is not None and self.jitter > 0.0:
            raw *= 1.0 + self.jitter * (2.0 * float(rng.uniform()) - 1.0)
        return max(1e-6, raw)


# ---------------------------------------------------------- circuit breaker


class CircuitState(enum.Enum):
    """The classic three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Per-server breaker knobs.

    Attributes:
        failure_threshold: Consecutive attempt timeouts that trip the
            breaker open.
        reset_timeout: Seconds an open breaker waits before letting one
            probe attempt through (half-open).
    """

    failure_threshold: int = 3
    reset_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be positive, got {self.reset_timeout}"
            )


class CircuitBreaker:
    """One server's breaker: closed → open on failures, probe to close."""

    def __init__(self, config: CircuitBreakerConfig) -> None:
        self.config = config
        self.state = CircuitState.CLOSED
        self.failures = 0
        self.opened_at = -math.inf
        self.trips = 0

    def allow(self, now: float) -> bool:
        """Whether an attempt to this server may be sent right now."""
        if self.state is CircuitState.CLOSED:
            return True
        if self.state is CircuitState.OPEN:
            if now - self.opened_at >= self.config.reset_timeout:
                self.state = CircuitState.HALF_OPEN
                return True
            return False
        return True  # half-open: the probe (and its hedges) may fly

    def record_success(self) -> None:
        self.state = CircuitState.CLOSED
        self.failures = 0

    def record_failure(self, now: float) -> None:
        if self.state is CircuitState.HALF_OPEN:
            # The probe failed: straight back to open, timer restarted.
            self.state = CircuitState.OPEN
            self.opened_at = now
            self.trips += 1
            return
        self.failures += 1
        if (
            self.state is CircuitState.CLOSED
            and self.failures >= self.config.failure_threshold
        ):
            self.state = CircuitState.OPEN
            self.opened_at = now
            self.trips += 1


# ------------------------------------------------------------ configuration


@dataclass(frozen=True)
class ResilienceConfig:
    """The resilient client's knob bundle.

    Attributes:
        max_attempts: Total attempts (hedges included) per query.
        attempt_timeout: Seconds before one attempt is given up on.
        backoff: Retry backoff policy.
        breaker: Per-server circuit-breaker config; None disables
            breakers.
        hedge_after: Send a duplicate attempt to another server if the
            current one is still unanswered after this many seconds
            (must be < ``attempt_timeout``); None disables hedging.
        honor_retry_after: Back off at least a BUSY reply's
            ``retry_after`` hint before the next attempt.
    """

    max_attempts: int = 4
    attempt_timeout: float = 0.25
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    breaker: Optional[CircuitBreakerConfig] = field(
        default_factory=CircuitBreakerConfig
    )
    hedge_after: Optional[float] = None
    honor_retry_after: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.attempt_timeout <= 0:
            raise ValueError(
                f"attempt_timeout must be positive, got {self.attempt_timeout}"
            )
        if self.hedge_after is not None and not (
            0.0 < self.hedge_after < self.attempt_timeout
        ):
            raise ValueError(
                "hedge_after must be in (0, attempt_timeout), got "
                f"{self.hedge_after}"
            )


@dataclass
class ResilienceStats:
    """What the retry machinery did across all queries."""

    attempts: int = 0
    retries: int = 0
    hedges: int = 0
    busy_received: int = 0
    attempt_timeouts: int = 0
    degraded_accepted: int = 0
    breaker_skips: int = 0  # candidate servers skipped on an open breaker


# ------------------------------------------------------------- query state


@dataclass
class _Attempt:
    """One in-flight single-server attempt."""

    request_id: int
    query: "_ResilientQuery"
    server: str
    sent_local: float
    timeout_event: Optional[Event] = None
    hedge_event: Optional[Event] = None
    done: bool = False

    def cancel_timers(self) -> None:
        if self.timeout_event is not None:
            self.timeout_event.cancel()
            self.timeout_event = None
        if self.hedge_event is not None:
            self.hedge_event.cancel()
            self.hedge_event = None


@dataclass
class _ResilientQuery:
    """One logical query: a budgeted sequence of attempts."""

    query_id: int
    servers: tuple
    callback: Callable[[ClientResult], None]
    started: float
    attempts_launched: int = 0
    rotation: int = 0
    inflight: Dict[int, _Attempt] = field(default_factory=dict)
    retry_event: Optional[Event] = None
    done: bool = False


# ----------------------------------------------------------------- client


class ResilientTimeClient(TimeClient):
    """A :class:`TimeClient` that retries, breaks circuits, and hedges.

    ``ask`` keeps the base signature but changes semantics: servers are
    a *candidate rotation*, each attempt asks exactly one of them, and
    the first usable reply (OK or DEGRADED) completes the query.  The
    ``strategy``/``faults`` arguments are accepted for interface
    compatibility and ignored — a single reply needs no combining.

    Args:
        resilience: The retry/breaker/hedge configuration.
        rng: RNG stream for backoff jitter (None → deterministic,
            un-jittered backoff).

    Remaining arguments are :class:`TimeClient`'s.
    """

    def __init__(
        self,
        *args,
        resilience: Optional[ResilienceConfig] = None,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.breakers: Dict[str, CircuitBreaker] = {}
        self.load_stats = ResilienceStats()
        self._rng = rng
        self._rqueries: Dict[int, _ResilientQuery] = {}
        self._attempts: Dict[int, _Attempt] = {}
        # Attempt ids live in their own space so a reply to an attempt can
        # never be routed to a base-client query and vice versa (shared
        # bookkeeping: repro.service.idspace).
        self._attempt_ids = RequestIdAllocator(ATTEMPT_ID_SPACE)

    # --------------------------------------------------------------- queries

    def ask(
        self,
        servers: Sequence[str],
        strategy: QueryStrategy = QueryStrategy.FIRST_REPLY,
        callback: Optional[Callable[[ClientResult], None]] = None,
        faults: int = 0,
    ) -> int:
        if not servers:
            raise ValueError("a query needs at least one server")
        rquery = _ResilientQuery(
            query_id=self._query_ids.allocate(),
            servers=tuple(servers),
            callback=callback if callback is not None else (lambda result: None),
            started=self.now,
        )
        self._rqueries[rquery.query_id] = rquery
        self._launch_attempt(rquery)
        return rquery.query_id

    def _breaker(self, server: str) -> Optional[CircuitBreaker]:
        if self.resilience.breaker is None:
            return None
        breaker = self.breakers.get(server)
        if breaker is None:
            breaker = CircuitBreaker(self.resilience.breaker)
            self.breakers[server] = breaker
        return breaker

    def _choose_server(self, rquery: _ResilientQuery) -> str:
        """Next candidate in rotation, skipping open breakers and servers
        already in flight for this query; falls back to the plain rotation
        choice when every candidate is vetoed (some answer may beat none).
        """
        candidates = rquery.servers
        busy_now = {attempt.server for attempt in rquery.inflight.values()}
        for offset in range(len(candidates)):
            server = candidates[(rquery.rotation + offset) % len(candidates)]
            if server in busy_now and len(candidates) > len(busy_now):
                continue
            breaker = self._breaker(server)
            if breaker is not None and not breaker.allow(self.now):
                self.load_stats.breaker_skips += 1
                continue
            rquery.rotation = (rquery.rotation + offset + 1) % len(candidates)
            return server
        server = candidates[rquery.rotation % len(candidates)]
        rquery.rotation = (rquery.rotation + 1) % len(candidates)
        return server

    def _launch_attempt(
        self, rquery: _ResilientQuery, *, hedge: bool = False
    ) -> None:
        if rquery.done:
            return
        if rquery.attempts_launched >= self.resilience.max_attempts:
            if not rquery.inflight or all(
                attempt.done for attempt in rquery.inflight.values()
            ):
                self._fail(rquery)
            return
        rquery.attempts_launched += 1
        self.load_stats.attempts += 1
        if hedge:
            self.load_stats.hedges += 1
        server = self._choose_server(rquery)
        attempt = _Attempt(
            request_id=self._attempt_ids.allocate(),
            query=rquery,
            server=server,
            sent_local=self.clock.read(self.now),
        )
        rquery.inflight[attempt.request_id] = attempt
        self._attempts[attempt.request_id] = attempt
        self.network.send(
            self.name,
            server,
            TimeRequest(
                request_id=attempt.request_id,
                origin=self.name,
                destination=server,
                kind=RequestKind.CLIENT,
            ),
        )
        attempt.timeout_event = self.call_after(
            self.resilience.attempt_timeout,
            lambda: self._attempt_timed_out(attempt),
        )
        if (
            self.resilience.hedge_after is not None
            and not hedge
            and len(rquery.servers) > 1
        ):
            attempt.hedge_event = self.call_after(
                self.resilience.hedge_after,
                lambda: self._maybe_hedge(attempt),
            )

    # --------------------------------------------------------------- replies

    def on_message(self, message, sender) -> None:
        if (
            isinstance(message, TimeReply)
            and message.request_id in self._attempts
        ):
            self._on_attempt_reply(message)
            return
        super().on_message(message, sender)

    def _on_attempt_reply(self, reply: TimeReply) -> None:
        attempt = self._attempts[reply.request_id]
        rquery = attempt.query
        if rquery.done or attempt.done or reply.server != attempt.server:
            return
        attempt.done = True
        attempt.cancel_timers()
        if reply.status is ReplyStatus.BUSY:
            self.load_stats.busy_received += 1
            # BUSY proves the server alive; only timeouts feed the breaker.
            delay = self.resilience.backoff.delay(
                rquery.attempts_launched, self._rng
            )
            if self.resilience.honor_retry_after:
                delay = max(delay, reply.retry_after)
            self._schedule_retry(rquery, delay)
            return
        breaker = self._breaker(attempt.server)
        if breaker is not None:
            breaker.record_success()
        if reply.status is ReplyStatus.DEGRADED:
            self.load_stats.degraded_accepted += 1
        local_now = self.clock.read(self.now)
        rtt_local = max(0.0, local_now - attempt.sent_local)
        interval = self._aged_interval(reply, rtt_local, local_now, local_now)
        prefix = "degraded:" if reply.status is ReplyStatus.DEGRADED else ""
        result = ClientResult(
            estimate=interval.center,
            error=interval.error,
            true_time=self.now,
            replies_used=1,
            source=f"{prefix}{reply.server}",
            latency=self.now - rquery.started,
        )
        self._conclude(rquery)
        self.results.append(result)
        rquery.callback(result)

    def _attempt_timed_out(self, attempt: _Attempt) -> None:
        rquery = attempt.query
        if rquery.done or attempt.done:
            return
        attempt.done = True
        attempt.cancel_timers()
        self.load_stats.attempt_timeouts += 1
        breaker = self._breaker(attempt.server)
        if breaker is not None:
            breaker.record_failure(self.now)
        if any(not other.done for other in rquery.inflight.values()):
            return  # a hedge is still in the air; let it race
        delay = self.resilience.backoff.delay(rquery.attempts_launched, self._rng)
        self._schedule_retry(rquery, delay)

    def _maybe_hedge(self, attempt: _Attempt) -> None:
        rquery = attempt.query
        if rquery.done or attempt.done:
            return
        self._launch_attempt(rquery, hedge=True)

    # ------------------------------------------------------------ completion

    def _schedule_retry(self, rquery: _ResilientQuery, delay: float) -> None:
        if rquery.done or rquery.retry_event is not None:
            return
        if rquery.attempts_launched >= self.resilience.max_attempts:
            self._fail(rquery)
            return
        self.load_stats.retries += 1

        def fire() -> None:
            rquery.retry_event = None
            self._launch_attempt(rquery)

        rquery.retry_event = self.call_after(delay, fire)

    def _conclude(self, rquery: _ResilientQuery) -> None:
        """Tear down a finished query: timers cancelled, maps cleared."""
        rquery.done = True
        if rquery.retry_event is not None:
            rquery.retry_event.cancel()
            rquery.retry_event = None
        for request_id, attempt in rquery.inflight.items():
            attempt.cancel_timers()
            attempt.done = True
            self._attempts.pop(request_id, None)
        rquery.inflight.clear()
        self._rqueries.pop(rquery.query_id, None)

    def _fail(self, rquery: _ResilientQuery) -> None:
        if rquery.done:
            return
        result = ClientResult(
            estimate=math.nan,
            error=math.inf,
            true_time=self.now,
            replies_used=0,
            source="failed",
            failed=True,
            latency=self.now - rquery.started,
        )
        self._conclude(rquery)
        self.failures.append(result)
        rquery.callback(result)
