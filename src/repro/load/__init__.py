"""Overload robustness: capacity, admission control, graceful degradation.

The paper's servers answer instantly and for free; this package gives
them a finite request path and the defences to survive a client flash
crowd without losing the synchronization that makes them a time service:

* :mod:`repro.load.capacity` — service-time model, bounded priority run
  queue, per-class accounting;
* :mod:`repro.load.admission` — token-bucket admission, pluggable
  shedding policies, queue-delay EWMA overload detection;
* :mod:`repro.load.server` — :class:`LoadAwareServer`, whose degraded
  mode sheds *precision* instead of availability (a stale ``⟨C, E⟩``
  with ``E`` inflated by ``age/(1 − δ)`` still contains true time);
* :mod:`repro.load.client` — :class:`ResilientTimeClient`: retries with
  jittered backoff, per-attempt request ids, circuit breakers, hedging,
  retry-after hints, and explicit failure outcomes;
* :mod:`repro.load.workload` — open-loop Poisson flash-crowd generation.
"""

from .admission import (
    DeadlineAwareShed,
    DropTail,
    OverloadConfig,
    OverloadDetector,
    RandomEarlyShed,
    SHEDDING_POLICIES,
    SheddingPolicy,
    TokenBucket,
    TokenBucketConfig,
    make_shedding_policy,
)
from .capacity import (
    CapacityConfig,
    QueuedItem,
    QueueStats,
    RequestQueue,
    ServiceClass,
)
from .client import (
    BackoffPolicy,
    CircuitBreaker,
    CircuitBreakerConfig,
    CircuitState,
    ResilienceConfig,
    ResilienceStats,
    ResilientTimeClient,
)
from .server import LoadAwareServer, LoadPolicy, LoadStats
from .workload import FlashCrowdProfile, WorkloadGenerator

__all__ = [
    "BackoffPolicy",
    "CapacityConfig",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "CircuitState",
    "DeadlineAwareShed",
    "DropTail",
    "FlashCrowdProfile",
    "LoadAwareServer",
    "LoadPolicy",
    "LoadStats",
    "OverloadConfig",
    "OverloadDetector",
    "QueueStats",
    "QueuedItem",
    "RandomEarlyShed",
    "RequestQueue",
    "ResilienceConfig",
    "ResilienceStats",
    "ResilientTimeClient",
    "SHEDDING_POLICIES",
    "ServiceClass",
    "SheddingPolicy",
    "TokenBucket",
    "TokenBucketConfig",
    "WorkloadGenerator",
    "make_shedding_policy",
]
