"""A time server with a finite request path.

:class:`LoadAwareServer` wraps :class:`~repro.service.server.TimeServer`'s
message handling in the capacity model of :mod:`repro.load.capacity`:
every delivered message enters a bounded run queue and costs simulated
CPU before it is processed.  On top of that physics it layers the
defences from :mod:`repro.load.admission`:

* client-plane arrivals pass a token bucket and a shedding policy before
  they may queue; refused requests get a BUSY reply with a retry-after
  hint (or are silently dropped when ``busy_replies`` is off — the
  "plain" configuration);
* sync-plane arrivals (peer polls, recovery fetches, and this server's
  own poll replies) are never shed; on a full queue they may evict the
  youngest queued client request instead;
* when the queue-delay EWMA says the server is overloaded, client
  requests are answered from a stale cache — the paper's rule MM-1
  "answer with a large E" taken literally: the cached ``⟨C₀, E₀⟩`` is
  aged by the local clock ticks since it was taken and served with its
  error inflated by ``δ·age/(1 − δ)`` (the ``ρ·age`` drift allowance),
  which provably still contains true time — no reset intervened,
  because resets refresh the cache.

The *plain* arm of the flash-crowd experiment is this same server with
every defence disabled (:meth:`LoadPolicy.plain`): a single FIFO queue
with drop-tail overflow and no BUSY replies — the realistic baseline
whose poll rounds a client crowd can starve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..service.messages import ReplyStatus, RequestKind, TimeReply, TimeRequest
from ..service.server import TimeServer
from ..telemetry.registry import CounterBackedStats, CounterField
from .admission import (
    OverloadConfig,
    OverloadDetector,
    SheddingPolicy,
    TokenBucket,
    TokenBucketConfig,
    make_shedding_policy,
)
from .capacity import CapacityConfig, QueuedItem, RequestQueue, ServiceClass


@dataclass(frozen=True)
class LoadPolicy:
    """Which overload defences a :class:`LoadAwareServer` runs.

    Attributes:
        admission: Token-bucket config gating client-plane arrivals; None
            disables the bucket.
        shedding: Registry name of the queue shedding policy
            (see :data:`repro.load.admission.SHEDDING_POLICIES`).
        shedding_kwargs: Keyword arguments for the shedding policy.
        overload: Queue-delay EWMA detector config; None disables
            detection (and therefore degraded mode).
        degraded: Serve client requests from the stale cache while the
            detector says overloaded.
        busy_replies: Send BUSY/retry-after replies for shed requests;
            off, shed requests are silently dropped (clients time out).
    """

    admission: Optional[TokenBucketConfig] = field(
        default_factory=TokenBucketConfig
    )
    shedding: str = "deadline"
    shedding_kwargs: dict = field(default_factory=dict)
    overload: Optional[OverloadConfig] = field(default_factory=OverloadConfig)
    degraded: bool = True
    busy_replies: bool = True

    @staticmethod
    def plain() -> "LoadPolicy":
        """The undefended baseline: FIFO drop-tail, nothing else."""
        return LoadPolicy(
            admission=None,
            shedding="drop-tail",
            overload=None,
            degraded=False,
            busy_replies=False,
        )


class LoadStats(CounterBackedStats):
    """What the request path did, beyond the queue's own accounting.

    Registry-backed (see :class:`~repro.telemetry.registry.
    CounterBackedStats`): attribute reads and ``+=`` behave exactly as
    the old dataclass integers did, while the values export as
    ``repro_load_*_total`` counter families when telemetry is on.
    """

    prefix = "repro_load_"

    fresh_replies = CounterField("Client requests answered with a live report")
    degraded_replies = CounterField("Client requests answered from the cache")
    # ... whose interval contained true time (oracle).
    degraded_correct = CounterField("Degraded replies that were correct")
    busy_replies = CounterField("BUSY replies sent (admission, shedding, eviction)")
    shed_silent = CounterField("Shed without the courtesy of a BUSY reply")
    sync_evictions = CounterField("Client entries evicted for sync-plane arrivals")
    sync_drops = CounterField("Sync-plane arrivals lost to a full queue")


class LoadAwareServer(TimeServer):
    """A :class:`TimeServer` whose requests cost CPU and may be shed.

    Args:
        capacity: The service-time/queue physics (required).
        load_policy: The defence configuration; defaults to everything on.
        load_rng: RNG stream for the random shedding policy's draws; only
            needed when ``load_policy.shedding == "random"``.

    All other arguments are :class:`~repro.service.server.TimeServer`'s.
    """

    def __init__(
        self,
        *args,
        capacity: CapacityConfig,
        load_policy: Optional[LoadPolicy] = None,
        load_rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.capacity = capacity
        self.load_policy = load_policy if load_policy is not None else LoadPolicy()
        self.queue = RequestQueue(capacity.queue_limit, capacity.prioritized)
        self.bucket: Optional[TokenBucket] = (
            TokenBucket(self.load_policy.admission)
            if self.load_policy.admission is not None
            else None
        )
        self.shedder: SheddingPolicy = make_shedding_policy(
            self.load_policy.shedding, **self.load_policy.shedding_kwargs
        )
        self.detector: Optional[OverloadDetector] = (
            OverloadDetector(self.load_policy.overload)
            if self.load_policy.overload is not None
            else None
        )
        self.load_stats = LoadStats(self.telemetry.stats_registry())
        self._load_rng = load_rng
        self._cpu_busy = False
        # The degraded-mode cache: the last fresh ⟨C, E⟩ this server
        # computed, keyed by the local clock reading at that instant.
        self._cache: Optional[tuple[float, float]] = None

    # ------------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        super().on_start()
        self._refresh_cache()

    def leave(self) -> None:
        # Drain the queue: a departed server answers nothing.
        while self.queue.pop() is not None:
            pass
        super().leave()

    # ----------------------------------------------------------- degradation

    def _refresh_cache(self) -> None:
        value, error = self.report()
        self._cache = (value, error)

    def _apply_reset(self, decision, kind: str) -> None:
        super()._apply_reset(decision, kind)
        # A reset may move the clock backward; the cache's age arithmetic
        # assumes a monotone clock since the cache was taken, so retake it.
        self._refresh_cache()

    def _answer(self, request: TimeRequest) -> None:
        super()._answer(request)
        # Answering computed a fresh report anyway — keep the cache warm.
        self._refresh_cache()
        if request.kind is RequestKind.CLIENT:
            self.load_stats.fresh_replies += 1

    def _answer_degraded(self, request: TimeRequest) -> None:
        """Serve a client request from the stale cache, correctly.

        The cached pair ``⟨C₀, E₀⟩`` contained true time when it was
        taken: ``|C₀ − t₀| ≤ E₀``.  Since then the local clock advanced
        ``age = C(now) − C₀`` ticks (monotone — no reset intervened,
        because resets refresh the cache), which brackets real elapsed
        time ``e`` by ``age/(1 + δ) ≤ e ≤ age/(1 − δ)``.  Serving the
        *aged* centre ``C₀ + age`` therefore misses ``t₀ + e`` by at
        most ``E₀ + |age − e| ≤ E₀ + δ·age/(1 − δ)`` — rule MM-1's
        ``ρ·age`` drift allowance.  Precision is shed (``E₀`` is the
        error as of the last fresh answer, not now), correctness is
        not.  Note ``δ/(1 − δ)``, not ``δ`` — the latter under-covers.
        """
        assert self._cache is not None
        value, error = self._cache
        age = max(0.0, self.clock_value() - value)
        served = value + age
        if self.delta < 1.0:
            inflated = error + age * self.delta / (1.0 - self.delta)
        else:  # a claimed drift ≥ 100% makes local age meaningless
            inflated = math.inf
        self.stats.requests_answered += 1
        self.load_stats.degraded_replies += 1
        if served - inflated <= self.now <= served + inflated:
            self.load_stats.degraded_correct += 1
        reply = TimeReply(
            request_id=request.request_id,
            server=self.name,
            destination=request.origin,
            clock_value=served,
            error=inflated,
            kind=request.kind,
            delta=self.delta,
            status=ReplyStatus.DEGRADED,
        )
        self.network.send(self.name, request.origin, reply)

    def _send_busy(self, request: TimeRequest) -> None:
        """Refuse a client request, cheaply.

        BUSY replies cost ``busy_time`` of front-door latency but do not
        occupy the serving CPU — shedding that was as expensive as
        serving would be no defence.  With ``busy_replies`` off the
        request is dropped without a word (the client times out).
        """
        if not self.load_policy.busy_replies:
            self.load_stats.shed_silent += 1
            return
        self.load_stats.busy_replies += 1
        hint = (
            self.bucket.retry_after(self.now) if self.bucket is not None else 0.0
        )
        reply = TimeReply(
            request_id=request.request_id,
            server=self.name,
            destination=request.origin,
            clock_value=0.0,
            error=math.inf,
            kind=request.kind,
            delta=self.delta,
            status=ReplyStatus.BUSY,
            retry_after=hint,
        )
        origin = request.origin
        self.call_after(
            self.capacity.busy_time,
            lambda: self.network.send(self.name, origin, reply),
        )

    # --------------------------------------------------------- request path

    @staticmethod
    def _classify(message: Any) -> Optional[ServiceClass]:
        """Which plane a delivered message belongs to (None: not ours)."""
        if isinstance(message, (TimeRequest, TimeReply)):
            if message.kind is RequestKind.CLIENT:
                return ServiceClass.CLIENT
            if message.kind is RequestKind.RECOVERY:
                return ServiceClass.RECOVERY
            return ServiceClass.POLL
        return None

    def on_message(self, message, sender) -> None:
        if self._departed:
            return
        service_class = self._classify(message)
        if service_class is None:
            return
        if service_class is ServiceClass.CLIENT:
            if not self._admit_client(message):
                return
        elif self.queue.full:
            evicted = (
                self.queue.evict_youngest_client()
                if self.capacity.sync_evicts_client
                else None
            )
            if evicted is None:
                # The sync-plane message itself is lost — the starvation
                # the priority queue + eviction exist to prevent.
                self.queue.note_overflow(service_class)
                self.load_stats.sync_drops += 1
                return
            self.load_stats.sync_evictions += 1
            if isinstance(evicted.message, TimeRequest):
                self._send_busy(evicted.message)
        self.queue.push(
            QueuedItem(
                service_class=service_class,
                message=message,
                sender=sender,
                arrived=self.now,
            )
        )
        self._pump()

    def _admit_client(self, message: Any) -> bool:
        """Run a client-plane arrival through the bucket and the shedder."""
        is_request = isinstance(message, TimeRequest)
        if (
            is_request
            and self.bucket is not None
            and not self.bucket.try_admit(self.now)
        ):
            self._send_busy(message)
            return False
        if not self.shedder.admit(self.queue, self.now, self._load_rng):
            self.queue.note_overflow(ServiceClass.CLIENT)
            if is_request:
                self._send_busy(message)
            else:
                self.load_stats.shed_silent += 1
            return False
        return True

    def _pump(self) -> None:
        """Start serving the next queued message, if the CPU is free."""
        if self._cpu_busy:
            return
        item = self.queue.pop()
        if item is None:
            return
        self._cpu_busy = True
        if self.detector is not None:
            self.detector.observe(item.waited(self.now))
        degraded = (
            self.detector is not None
            and self.detector.overloaded
            and self.load_policy.degraded
            and item.service_class is ServiceClass.CLIENT
            and isinstance(item.message, TimeRequest)
        )
        cost = (
            self.capacity.degraded_time if degraded else self.capacity.service_time
        )
        self.call_after(cost, lambda: self._finish_service(item, degraded))

    def _finish_service(self, item: QueuedItem, degraded: bool) -> None:
        self._cpu_busy = False
        if not self._departed:
            if degraded:
                self._answer_degraded(item.message)
            else:
                # The paper's full message handling, paid for in CPU time.
                super().on_message(item.message, item.sender)
        self._pump()
