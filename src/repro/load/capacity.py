"""The server capacity model: requests cost simulated CPU.

The paper's :class:`~repro.service.server.TimeServer` services every
message the instant it is delivered, so no amount of client traffic can
ever starve the MM/IM synchronization rounds.  Real servers have a finite
request path: each message costs CPU, waiting requests queue, and queues
are bounded.  This module supplies that physics:

* :class:`ServiceClass` — the three traffic planes, ordered by priority:
  synchronization polls and Section-3 recovery fetches strictly above
  ordinary client queries.
* :class:`CapacityConfig` — the declarative knob bundle (service times,
  queue bound, whether the queue respects priorities).
* :class:`RequestQueue` — a bounded, optionally priority-ordered run
  queue with per-class accounting, the single structure the overload
  experiments observe.

Nothing here decides *what to shed* — that is
:mod:`repro.load.admission`'s job; the queue only refuses what it is told
to refuse and keeps the books.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


class ServiceClass(enum.IntEnum):
    """Priority classes of the request path (lower value = served first).

    ``POLL`` and ``RECOVERY`` are the *sync plane*: the traffic that rules
    MM-2/IM-2 and Section 3 recovery need to keep the service synchronized.
    ``CLIENT`` is the *client plane*: the open-ended traffic of
    applications asking the time.  Admission control and shedding apply
    only to the client plane; the whole point of the split is that a
    client flash crowd must never starve the sync plane.
    """

    POLL = 0
    RECOVERY = 1
    CLIENT = 2

    @property
    def sync_plane(self) -> bool:
        """Whether this class belongs to the protected sync plane."""
        return self is not ServiceClass.CLIENT


@dataclass(frozen=True)
class CapacityConfig:
    """Declarative capacity/service-time model for one server.

    Attributes:
        service_time: Simulated CPU seconds to fully process one message
            (answer a request with a fresh rule MM-1 report, or run a poll
            reply through the synchronization policy).
        degraded_time: CPU seconds to answer a client request from the
            overload cache instead (must be ≤ ``service_time``; the gap is
            the capacity that graceful degradation buys back).
        busy_time: CPU seconds to emit a BUSY rejection (shedding must be
            cheap or it is no defence at all).
        queue_limit: Bound on queued messages; arrivals beyond it are
            subject to the shedding policy.
        prioritized: Serve the queue in :class:`ServiceClass` priority
            order (the sync-plane isolation).  False degenerates to a
            single FIFO — the "plain" arm of the flash-crowd experiment.
        sync_evicts_client: When a sync-plane message arrives at a full
            queue, evict the youngest queued client-plane entry to make
            room rather than dropping the sync message.  Only meaningful
            with ``prioritized``.
    """

    service_time: float = 0.008
    degraded_time: float = 0.0015
    busy_time: float = 0.0002
    queue_limit: int = 128
    prioritized: bool = True
    sync_evicts_client: bool = True

    def __post_init__(self) -> None:
        if self.service_time <= 0:
            raise ValueError(
                f"service_time must be positive, got {self.service_time}"
            )
        if not 0 < self.degraded_time <= self.service_time:
            raise ValueError(
                "degraded_time must be in (0, service_time], got "
                f"{self.degraded_time}"
            )
        if self.busy_time < 0:
            raise ValueError(f"busy_time must be non-negative, got {self.busy_time}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")

    @property
    def fresh_capacity(self) -> float:
        """Requests per second the fresh answer path can sustain."""
        return 1.0 / self.service_time

    @property
    def degraded_capacity(self) -> float:
        """Requests per second the stale-cache path can sustain."""
        return 1.0 / self.degraded_time


@dataclass
class QueuedItem:
    """One message waiting for CPU.

    Attributes:
        service_class: Which plane the message belongs to.
        message: The wire message (request or reply).
        sender: The transport-provided sender process (opaque here).
        arrived: Real time the message entered the queue.
    """

    service_class: ServiceClass
    message: Any
    sender: Any
    arrived: float

    def waited(self, now: float) -> float:
        """Queue delay accumulated so far."""
        return max(0.0, now - self.arrived)


@dataclass
class QueueStats:
    """Per-class accounting of everything the queue ever saw."""

    enqueued: Dict[ServiceClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in ServiceClass}
    )
    served: Dict[ServiceClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in ServiceClass}
    )
    overflowed: Dict[ServiceClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in ServiceClass}
    )
    evicted: Dict[ServiceClass, int] = field(
        default_factory=lambda: {cls: 0 for cls in ServiceClass}
    )
    peak_depth: int = 0

    def total(self, counters: Dict[ServiceClass, int]) -> int:
        """Sum one of the per-class counter maps."""
        return sum(counters.values())


class RequestQueue:
    """A bounded run queue, optionally ordered by :class:`ServiceClass`.

    Entries are (priority, seq) heap-ordered when ``prioritized`` — FIFO
    within a class, sync plane ahead of client plane — and plain FIFO
    otherwise.  The queue never sheds on its own: callers must check
    :meth:`full` and use :meth:`push` / :meth:`evict_youngest_client`
    according to their shedding policy, so every drop is an explicit,
    counted decision.
    """

    def __init__(self, limit: int, prioritized: bool = True) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self.prioritized = prioritized
        self.stats = QueueStats()
        self._heap: List[tuple[int, int, QueuedItem]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[QueuedItem]:
        return (entry[2] for entry in sorted(self._heap))

    @property
    def full(self) -> bool:
        """Whether the next push would exceed the bound."""
        return len(self._heap) >= self.limit

    def depth(self, service_class: Optional[ServiceClass] = None) -> int:
        """Current occupancy, optionally restricted to one class."""
        if service_class is None:
            return len(self._heap)
        return sum(
            1 for _p, _s, item in self._heap if item.service_class is service_class
        )

    def push(self, item: QueuedItem) -> None:
        """Enqueue; raises :class:`OverflowError` when full.

        Overflow is the caller's decision point, not a silent drop — use
        :meth:`note_overflow` to record what the shedding policy refused.
        """
        if self.full:
            raise OverflowError("request queue full")
        priority = int(item.service_class) if self.prioritized else 0
        heapq.heappush(self._heap, (priority, next(self._seq), item))
        self.stats.enqueued[item.service_class] += 1
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._heap))

    def pop(self) -> Optional[QueuedItem]:
        """Dequeue the next item to serve (None when empty)."""
        if not self._heap:
            return None
        _priority, _seq, item = heapq.heappop(self._heap)
        self.stats.served[item.service_class] += 1
        return item

    def note_overflow(self, service_class: ServiceClass) -> None:
        """Record an arrival the shedding policy refused at the door."""
        self.stats.overflowed[service_class] += 1

    def evict_youngest_client(self) -> Optional[QueuedItem]:
        """Remove and return the youngest queued CLIENT entry, if any.

        Used when a sync-plane message must enter a full queue: the
        youngest client entry has waited least, so evicting it wastes the
        least already-sunk queueing delay.
        """
        best_index: Optional[int] = None
        best_seq = -1
        for index, (_priority, seq, item) in enumerate(self._heap):
            if item.service_class is ServiceClass.CLIENT and seq > best_seq:
                best_index = index
                best_seq = seq
        if best_index is None:
            return None
        _priority, _seq, item = self._heap.pop(best_index)
        heapq.heapify(self._heap)
        self.stats.evicted[item.service_class] += 1
        return item

    def stale_client_items(self, now: float, deadline: float) -> List[QueuedItem]:
        """Queued CLIENT entries that have already waited past ``deadline``."""
        return [
            item
            for _p, _s, item in sorted(self._heap)
            if item.service_class is ServiceClass.CLIENT
            and item.waited(now) > deadline
        ]

    def remove(self, item: QueuedItem) -> bool:
        """Remove a specific queued entry (identity match); True if found."""
        for index, (_priority, _seq, queued) in enumerate(self._heap):
            if queued is item:
                self._heap.pop(index)
                heapq.heapify(self._heap)
                self.stats.evicted[item.service_class] += 1
                return True
        return False
