"""Admission control: token buckets, shedding policies, overload detection.

Three independent mechanisms a :class:`~repro.load.server.LoadAwareServer`
composes, all deterministic under a seeded RNG stream:

* :class:`TokenBucket` — the admission limiter at the door.  Client-plane
  requests spend a token; an empty bucket means the request is shed with
  a BUSY reply carrying a ``retry_after`` hint (the time until the next
  token accrues), so clients back off instead of hammering.
* Shedding policies — what to do when the *queue* (not the bucket) is the
  contended resource: :class:`DropTail` refuses newcomers,
  :class:`RandomEarlyShed` sheds probabilistically before the queue is
  full (RED-style, de-synchronising retry storms), and
  :class:`DeadlineAwareShed` evicts queued requests that have already
  waited past the client's useful deadline — their replies would be
  thrown away anyway, so serving them is pure waste.
* :class:`OverloadDetector` — a queue-delay EWMA with hysteresis.  The
  detector decides when the server flips into degraded (stale-cache)
  serving and when it recovers; hysteresis stops it flapping on the
  boundary.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .capacity import QueuedItem, RequestQueue, ServiceClass


# ------------------------------------------------------------ token bucket


@dataclass(frozen=True)
class TokenBucketConfig:
    """Admission-rate knobs.

    Attributes:
        rate: Tokens (admitted client requests) per second.
        burst: Bucket capacity — the largest instantaneous burst admitted.
    """

    rate: float = 100.0
    burst: float = 20.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")


class TokenBucket:
    """The classic leaky-bucket admission limiter.

    Tokens accrue continuously at ``rate`` up to ``burst``; admitting a
    request spends one.  :meth:`retry_after` converts the deficit into the
    BUSY reply's back-off hint.
    """

    def __init__(self, config: TokenBucketConfig, now: float = 0.0) -> None:
        self.config = config
        self._tokens = float(config.burst)
        self._updated = now
        self.admitted = 0
        self.refused = 0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(
            float(self.config.burst), self._tokens + elapsed * self.config.rate
        )

    def tokens(self, now: float) -> float:
        """Current token level (after refill)."""
        self._refill(now)
        return self._tokens

    def try_admit(self, now: float) -> bool:
        """Spend one token if available; returns whether admitted."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return True
        self.refused += 1
        return False

    def retry_after(self, now: float) -> float:
        """Seconds until one full token will have accrued."""
        self._refill(now)
        deficit = max(0.0, 1.0 - self._tokens)
        return deficit / self.config.rate


# --------------------------------------------------------- shedding policies


class SheddingPolicy(abc.ABC):
    """Decides the fate of a client-plane arrival contending for the queue.

    ``admit`` may mutate the queue (evict a stale entry) to make room.
    Returning False sheds the arrival; the caller sends the BUSY reply and
    does the counting.  Sync-plane messages never pass through a shedding
    policy — their isolation is handled by the server itself.
    """

    #: Registry name used by configs and the CLI.
    name: str = "abstract"

    @abc.abstractmethod
    def admit(
        self,
        queue: RequestQueue,
        now: float,
        rng: Optional[np.random.Generator],
    ) -> bool:
        """Whether a new CLIENT arrival may enter ``queue`` at ``now``."""


class DropTail(SheddingPolicy):
    """Refuse newcomers only when the queue is actually full."""

    name = "drop-tail"

    def admit(
        self,
        queue: RequestQueue,
        now: float,
        rng: Optional[np.random.Generator],
    ) -> bool:
        return not queue.full


class RandomEarlyShed(SheddingPolicy):
    """RED-style probabilistic early shedding.

    Below ``threshold``·limit occupancy every arrival is admitted; above
    it the shed probability rises linearly to 1 at a full queue.  Early
    random shedding spreads the pain across clients instead of
    synchronising a whole crowd's retries on the instant the queue frees.
    """

    name = "random"

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self.threshold = threshold

    def admit(
        self,
        queue: RequestQueue,
        now: float,
        rng: Optional[np.random.Generator],
    ) -> bool:
        if queue.full:
            return False
        knee = self.threshold * queue.limit
        depth = len(queue)
        if depth <= knee:
            return True
        probability = (depth - knee) / max(1e-9, queue.limit - knee)
        draw = 1.0 if rng is None else float(rng.uniform())
        return draw >= probability


class DeadlineAwareShed(SheddingPolicy):
    """Evict queued requests whose reply would be discarded anyway.

    A client that asked with timeout ``T`` has no use for a reply served
    after ``T``; a queued request older than ``deadline`` (set at or below
    the client timeout, minus the return flight) is dead weight.  On a
    full queue the policy evicts the *oldest* such stale entry to admit
    the newcomer; with no stale entry it behaves like drop-tail.
    """

    name = "deadline"

    def __init__(self, deadline: float = 0.5) -> None:
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.deadline = deadline

    def admit(
        self,
        queue: RequestQueue,
        now: float,
        rng: Optional[np.random.Generator],
    ) -> bool:
        if not queue.full:
            return True
        stale = queue.stale_client_items(now, self.deadline)
        if not stale:
            return False
        oldest = max(stale, key=lambda item: item.waited(now))
        return queue.remove(oldest)


SHEDDING_POLICIES = {
    DropTail.name: DropTail,
    RandomEarlyShed.name: RandomEarlyShed,
    DeadlineAwareShed.name: DeadlineAwareShed,
}


def make_shedding_policy(name: str, **kwargs) -> SheddingPolicy:
    """Build a shedding policy by registry name."""
    try:
        cls = SHEDDING_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown shedding policy {name!r}; try one of "
            f"{sorted(SHEDDING_POLICIES)}"
        ) from None
    return cls(**kwargs)


# --------------------------------------------------------- overload detector


@dataclass(frozen=True)
class OverloadConfig:
    """Queue-delay EWMA detector knobs.

    Attributes:
        alpha: EWMA gain per observation.
        enter_threshold: Smoothed queue delay (s) above which the server
            is declared overloaded.
        exit_threshold: Smoothed delay below which it recovers; must be
            below ``enter_threshold`` (the hysteresis band).
    """

    alpha: float = 0.2
    enter_threshold: float = 0.05
    exit_threshold: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.enter_threshold <= 0:
            raise ValueError(
                f"enter_threshold must be positive, got {self.enter_threshold}"
            )
        if not 0.0 <= self.exit_threshold < self.enter_threshold:
            raise ValueError(
                "exit_threshold must be in [0, enter_threshold), got "
                f"{self.exit_threshold}"
            )


class OverloadDetector:
    """Hysteretic queue-delay EWMA: are we overloaded right now?

    Feed it the queue delay of every message as it *starts service*
    (arrival-to-service, the quantity clients actually experience); read
    :attr:`overloaded`.  Transitions are counted so experiments can report
    how often the server flipped modes.
    """

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.ewma: Optional[float] = None
        self.overloaded = False
        self.onsets = 0
        self.recoveries = 0

    def observe(self, queue_delay: float) -> bool:
        """Fold in one observation; returns the post-update state."""
        if self.ewma is None:
            self.ewma = queue_delay
        else:
            self.ewma += self.config.alpha * (queue_delay - self.ewma)
        if not self.overloaded and self.ewma > self.config.enter_threshold:
            self.overloaded = True
            self.onsets += 1
        elif self.overloaded and self.ewma < self.config.exit_threshold:
            self.overloaded = False
            self.recoveries += 1
        return self.overloaded


__all__ = [
    "DeadlineAwareShed",
    "DropTail",
    "OverloadConfig",
    "OverloadDetector",
    "QueuedItem",
    "RandomEarlyShed",
    "SHEDDING_POLICIES",
    "ServiceClass",
    "SheddingPolicy",
    "TokenBucket",
    "TokenBucketConfig",
    "make_shedding_policy",
]
