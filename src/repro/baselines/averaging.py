"""Baselines: median and fault-tolerant mean [Lamport 82].

Section 1.2 cites "the median clock value and the mean value of the clocks"
as the synchronization functions behind very fault-tolerant algorithms
(Lamport & Melliar-Smith's interactive convergence / CNV family).  These
keep clocks *mutually* synchronized under Byzantine faults but, unlike MM
and IM, carry no per-clock error semantics — the service is only as
accurate as the population average.

Both policies measure each neighbour's offset with Cristian-style midpoint
delay compensation::

    offset_j = C_j + ξ^i_j / 2 - C_i

include the self-offset 0, and adjust the local clock by the combined
offset.  :class:`MeanPolicy` implements interactive convergence's fault
filter: offsets beyond ``discard_threshold`` are replaced by 0 (the
algorithm's "substitute own value" rule).
"""

from __future__ import annotations

import statistics
from typing import Sequence

from ..core.sync import (
    LocalState,
    Reply,
    ResetDecision,
    RoundOutcome,
    SynchronizationPolicy,
)


def _offsets(state: LocalState, replies: Sequence[Reply]) -> list[tuple[str, float]]:
    pairs = [("self", 0.0)]
    for reply in replies:
        offset = reply.clock_value + reply.rtt_local / 2.0 - state.clock_value
        pairs.append((reply.server, offset))
    return pairs


def _error_bookkeeping(state: LocalState, replies: Sequence[Reply]) -> float:
    """Charitable error accounting for point baselines: the median of the
    inflated reply errors (these algorithms make no correctness claim, so
    any accounting is heuristic; oracle metrics are what the benchmarks
    compare)."""
    if not replies:
        return state.error
    return statistics.median(
        reply.inflated_error(state.delta) for reply in replies
    )


class MedianPolicy(SynchronizationPolicy):
    """Adjust the clock by the median measured offset (self included).

    The median tolerates up to half the neighbours being arbitrarily wrong
    without chasing them, at the price of ignoring the precision information
    intervals would carry.
    """

    name = "median"
    incremental = False

    def on_round_complete(
        self, state: LocalState, replies: Sequence[Reply]
    ) -> RoundOutcome:
        if not replies:
            return RoundOutcome(consistent=True)
        offsets = [offset for _name, offset in _offsets(state, replies)]
        adjustment = statistics.median(offsets)
        if adjustment == 0.0:
            return RoundOutcome(consistent=True)
        decision = ResetDecision(
            clock_value=state.clock_value + adjustment,
            inherited_error=_error_bookkeeping(state, replies),
            source="median",
        )
        return RoundOutcome(consistent=True, decision=decision)


class MeanPolicy(SynchronizationPolicy):
    """Interactive-convergence mean: average offsets, zeroing outliers.

    Args:
        discard_threshold: Offsets with magnitude beyond this are replaced
            by 0 before averaging ([Lamport 82]'s egocentric substitution);
            None disables the filter (plain mean).
    """

    name = "mean"
    incremental = False

    def __init__(self, discard_threshold: float | None = None) -> None:
        if discard_threshold is not None and discard_threshold <= 0:
            raise ValueError(
                f"discard_threshold must be positive, got {discard_threshold}"
            )
        self.discard_threshold = discard_threshold

    def on_round_complete(
        self, state: LocalState, replies: Sequence[Reply]
    ) -> RoundOutcome:
        if not replies:
            return RoundOutcome(consistent=True)
        offsets = [offset for _name, offset in _offsets(state, replies)]
        if self.discard_threshold is not None:
            offsets = [
                offset if abs(offset) <= self.discard_threshold else 0.0
                for offset in offsets
            ]
        adjustment = sum(offsets) / len(offsets)
        if adjustment == 0.0:
            return RoundOutcome(consistent=True)
        decision = ResetDecision(
            clock_value=state.clock_value + adjustment,
            inherited_error=_error_bookkeeping(state, replies),
            source="mean",
        )
        return RoundOutcome(consistent=True, decision=decision)
