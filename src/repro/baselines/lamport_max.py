"""Baseline: Lamport's maximum synchronization function [Lamport 78].

Section 1.2 names "the maximum value of the clocks" as the simple function
that preserves monotonicity: a clock is never set backwards, only forwards
to the largest clock heard.  The cost, as the paper notes, is that the
service's time is driven by its *fastest* clock — the error with respect to
a standard grows at the largest positive skew in the system — and a single
racing clock drags everyone with it (no notion of consistency exists to
reject it).

The policy is batch (it could be incremental, but evaluating at round end
keeps one reset per round, which is what [Lamport 78] message-driven
adjustment amounts to under periodic exchange).
"""

from __future__ import annotations

from typing import Sequence

from ..core.sync import (
    LocalState,
    Reply,
    ResetDecision,
    RoundOutcome,
    SynchronizationPolicy,
)


class LamportMaxPolicy(SynchronizationPolicy):
    """Set the clock to the maximum of all clocks heard (never backwards).

    Args:
        compensate_delay: Add half the locally-measured round trip to each
            reply before comparing (Cristian-style midpoint compensation);
            [Lamport 78] adds the known minimum delay, which is zero here.

    Error bookkeeping: the inherited error is the adopted reply's error
    inflated by the full round trip, as in MM — the baseline predates
    interval semantics, so this is the charitable accounting that keeps the
    comparison on oracle metrics fair.
    """

    name = "lamport-max"
    incremental = False

    def __init__(self, compensate_delay: bool = True) -> None:
        self.compensate_delay = compensate_delay

    def on_round_complete(
        self, state: LocalState, replies: Sequence[Reply]
    ) -> RoundOutcome:
        if not replies:
            return RoundOutcome(consistent=True)
        best_value = state.clock_value
        best: Reply | None = None
        for reply in replies:
            value = reply.clock_value
            if self.compensate_delay:
                value += reply.rtt_local / 2.0
            if value > best_value:
                best_value = value
                best = reply
        if best is None:
            return RoundOutcome(consistent=True)  # we are already the max
        decision = ResetDecision(
            clock_value=best_value,
            inherited_error=best.inflated_error(state.delta),
            source=best.server,
        )
        return RoundOutcome(consistent=True, decision=decision)
