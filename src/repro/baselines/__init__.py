"""Baseline synchronization functions the paper compares against.

[Lamport 78]'s maximum, [Lamport 82]'s median/mean family, and the
introduction's first-reply strawman — all as
:class:`~repro.core.sync.SynchronizationPolicy` implementations pluggable
into the same :class:`~repro.service.server.TimeServer`.
"""

from .averaging import MeanPolicy, MedianPolicy
from .first_reply import FirstReplyPolicy
from .lamport_max import LamportMaxPolicy

__all__ = [
    "FirstReplyPolicy",
    "LamportMaxPolicy",
    "MeanPolicy",
    "MedianPolicy",
]
