"""Baseline: adopt the first reply (the introduction's naive service).

"Usually the client simply requests the time from any subset of the time
servers making up the service, and uses the first reply."  Promoted to a
synchronization function, this means: every round, unconditionally reset to
the first reply that arrives (with midpoint delay compensation).  It is the
weakest sensible baseline — the service performs a random walk among its
members' clocks — and gives the benchmarks their floor.
"""

from __future__ import annotations

from typing import Sequence

from ..core.sync import (
    LocalState,
    Reply,
    ResetDecision,
    RoundOutcome,
    SynchronizationPolicy,
)


class FirstReplyPolicy(SynchronizationPolicy):
    """Unconditionally reset to the first reply of each round.

    The server's pending-reply list preserves arrival order, so
    ``replies[0]`` is the genuinely first reply.  The inherited error uses
    the MM accounting (reply error plus inflated round trip) to keep the
    reported intervals honest even though the *selection* ignores them.
    """

    name = "first-reply"
    incremental = False

    def on_round_complete(
        self, state: LocalState, replies: Sequence[Reply]
    ) -> RoundOutcome:
        if not replies:
            return RoundOutcome(consistent=True)
        first = replies[0]
        decision = ResetDecision(
            clock_value=first.clock_value + first.rtt_local / 2.0,
            inherited_error=first.inflated_error(state.delta),
            source=first.server,
        )
        return RoundOutcome(consistent=True, decision=decision)
