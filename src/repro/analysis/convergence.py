"""Theorem 4 convergence analysis.

Theorem 4: in a service where no server resets to a clock with a worse
error than its own, there is a finite time ``t_x`` after which the server
with the smallest error (``S_M``) belongs to ``S_min`` — the set of servers
with the smallest drift bound δ.  After convergence the service "derives
its behavior from the most accurate clocks".

This module provides the *predicted* worst-case convergence time from the
theorem's construction,

    t_x^0 = t_0 + max over (S_i in S_min, S_k not in S_min) of
            (E_i(t_0) - E_k(t_0)) / (δ_k - δ_i)

and the *measured* convergence time extracted from a snapshot series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..service.builder import ServiceSnapshot


def s_min(deltas: Dict[str, float], tolerance: float = 0.0) -> set[str]:
    """The set ``S_min`` of servers with the smallest drift bound.

    Args:
        deltas: Claimed δ by server name.
        tolerance: Servers within ``tolerance`` of the minimum also count
            (useful when δ's are floats from a sweep).
    """
    if not deltas:
        return set()
    minimum = min(deltas.values())
    return {name for name, delta in deltas.items() if delta <= minimum + tolerance}


def predicted_convergence_time(
    errors_at_t0: Dict[str, float], deltas: Dict[str, float], t0: float = 0.0
) -> float:
    """Theorem 4's worst-case bound ``t_x^0``.

    Returns ``t0`` when every server is already in ``S_min`` (nothing to
    overtake) — convergence is immediate.

    Raises:
        ValueError: If the name sets disagree.
    """
    if set(errors_at_t0) != set(deltas):
        raise ValueError("errors and deltas must cover the same servers")
    best = s_min(deltas)
    worst = t0
    for name_i in best:
        for name_k in deltas:
            if name_k in best:
                continue
            gap = deltas[name_k] - deltas[name_i]
            if gap <= 0:
                continue
            candidate = t0 + (errors_at_t0[name_i] - errors_at_t0[name_k]) / gap
            worst = max(worst, candidate)
    return worst


@dataclass(frozen=True)
class ConvergenceReport:
    """Measured Theorem 4 behaviour over a snapshot series.

    Attributes:
        converged: Whether, from some snapshot on, the min-error server was
            always in ``S_min``.
        measured_time: First snapshot time after which membership held for
            the rest of the horizon (None when never converged).
        predicted_time: Theorem 4's ``t_x^0`` computed from the first
            snapshot.
        holder_series: The min-error server's name at each snapshot.
    """

    converged: bool
    measured_time: Optional[float]
    predicted_time: float
    holder_series: tuple[str, ...]


def analyze_convergence(
    snapshots: Sequence[ServiceSnapshot], deltas: Dict[str, float]
) -> ConvergenceReport:
    """Extract Theorem 4's prediction and measurement from a run.

    Raises:
        ValueError: On an empty snapshot series.
    """
    if not snapshots:
        raise ValueError("analyze_convergence needs at least one snapshot")
    best = s_min(deltas)
    holders = []
    for snap in snapshots:
        holder = min(snap.errors, key=lambda name: (snap.errors[name], name))
        holders.append(holder)
    # Find the first index from which every holder is in S_min.
    measured_time: Optional[float] = None
    for index in range(len(holders)):
        if all(holder in best for holder in holders[index:]):
            measured_time = snapshots[index].time
            break
    predicted = predicted_convergence_time(
        dict(snapshots[0].errors), deltas, t0=snapshots[0].time
    )
    return ConvergenceReport(
        converged=measured_time is not None,
        measured_time=measured_time,
        predicted_time=predicted,
        holder_series=tuple(holders),
    )
