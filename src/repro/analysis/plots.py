"""ASCII rendering of interval diagrams and series.

The paper's figures are interval diagrams: horizontal bars per server with
the true time marked by a dashed line (Figures 1–4).  The benchmark harness
regenerates them as text so the reproduction is self-contained in a
terminal.  Nothing here affects the algorithms; it only renders.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.intervals import TimeInterval


def render_intervals(
    intervals: Dict[str, TimeInterval],
    *,
    true_time: Optional[float] = None,
    width: int = 72,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render named intervals as aligned ASCII bars.

    Args:
        intervals: Bars to draw, keyed by label; drawn in sorted-key order.
        true_time: When given, a ``|`` column marks the correct time (the
            paper's dashed line).
        width: Character width of the plotting area.
        lo: Left edge of the plotting window (default: min edge, padded).
        hi: Right edge of the plotting window (default: max edge, padded).

    Returns:
        A multi-line string; each bar is ``[=====]`` with ``*`` at the
        centre (the clock value ``C``).
    """
    if not intervals:
        return "(no intervals)"
    edges_lo = min(interval.lo for interval in intervals.values())
    edges_hi = max(interval.hi for interval in intervals.values())
    if true_time is not None:
        edges_lo = min(edges_lo, true_time)
        edges_hi = max(edges_hi, true_time)
    span = max(edges_hi - edges_lo, 1e-12)
    pad = 0.05 * span
    window_lo = lo if lo is not None else edges_lo - pad
    window_hi = hi if hi is not None else edges_hi + pad
    window = max(window_hi - window_lo, 1e-12)

    def column(value: float) -> int:
        fraction = (value - window_lo) / window
        return max(0, min(width - 1, int(round(fraction * (width - 1)))))

    label_width = max(len(name) for name in intervals)
    lines = []
    mark = column(true_time) if true_time is not None else None
    for name in sorted(intervals):
        interval = intervals[name]
        row = [" "] * width
        start, stop = column(interval.lo), column(interval.hi)
        for index in range(start, stop + 1):
            row[index] = "="
        row[start] = "["
        row[stop] = "]"
        centre = column(interval.center)
        row[centre] = "*"
        if mark is not None and row[mark] == " ":
            row[mark] = "|"
        lines.append(f"{name:>{label_width}} {''.join(row)}")
    if mark is not None:
        ruler = [" "] * width
        ruler[mark] = "|"
        lines.append(f"{'true':>{label_width}} {''.join(ruler)}")
    return "\n".join(lines)


def render_series(
    t: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 12,
    title: str = "",
) -> str:
    """Render one or more time series as a crude ASCII line chart.

    Each series gets a distinct glyph; rows are value buckets (top = max).
    Intended for benchmark output (error growth curves, asynchronism), not
    publication graphics.
    """
    if not series or not t:
        return "(no data)"
    glyphs = "ox+#%@&$"
    all_values = [value for values in series.values() for value in values]
    vmin, vmax = min(all_values), max(all_values)
    span = max(vmax - vmin, 1e-12)
    tmin, tmax = min(t), max(t)
    tspan = max(tmax - tmin, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(sorted(series.items())):
        glyph = glyphs[index % len(glyphs)]
        for time, value in zip(t, values):
            col = int(round((time - tmin) / tspan * (width - 1)))
            row = int(round((vmax - value) / span * (height - 1)))
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{vmax:.3e} ┐")
    for row in grid:
        lines.append("          │" + "".join(row))
    lines.append(f"{vmin:.3e} ┘" + "─" * width)
    legend = "   ".join(
        f"{glyphs[index % len(glyphs)]}={name}"
        for index, name in enumerate(sorted(series))
    )
    lines.append("          " + legend)
    return "\n".join(lines)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, precision: int = 4
) -> str:
    """Render a small results table with aligned columns.

    Floats are formatted to ``precision`` significant digits; everything
    else via ``str``.
    """

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}g}"
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in text_rows))
        if text_rows
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[col]) for col, header in enumerate(headers)),
        "  ".join("-" * widths[col] for col in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(row[col].ljust(widths[col]) for col in range(len(row))))
    return "\n".join(lines)
