"""Error-budget decomposition.

Section 2.2 enumerates the three components of a server's maximum error:
the error inherited at the last reset, the transmission-delay allowance
folded into it, and the deterioration since.  Rule MM-1 collapses them into
``E_i = ε_i + age·δ_i``; this module un-collapses them for analysis:

* :func:`server_budget` — the live split of one server's current error
  into inherited vs. age-drift terms.
* :func:`reset_budget_from_trace` — per-reset provenance mined from the
  trace: how much of each adopted ε was the remote server's error vs. the
  round-trip allowance (recoverable because replies carry ``E_j`` and the
  decision records the total).
* :func:`budget_series` — the two terms over a snapshot-aligned time grid,
  for plotting "what is my error made of" charts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..service.builder import SimulatedService
from ..service.server import TimeServer


@dataclass(frozen=True)
class ErrorBudget:
    """One server's error, decomposed at an instant.

    Attributes:
        server: Server name.
        total: ``E_i`` — what rule MM-1 reports.
        inherited: ``ε_i`` — the error adopted at the last reset (itself
            remote error + delay allowance at that time).
        age_drift: ``(C_i - r_i)·δ_i`` — deterioration since the reset.
        age: Clock-time seconds since the last reset.
    """

    server: str
    total: float
    inherited: float
    age_drift: float
    age: float

    @property
    def drift_fraction(self) -> float:
        """Share of the error due to deterioration (0 when E is 0)."""
        return self.age_drift / self.total if self.total > 0 else 0.0


def server_budget(server: TimeServer) -> ErrorBudget:
    """Decompose a live server's current error."""
    value, total = server.report()
    inherited = server.epsilon
    last = server.last_reset_value
    age = max(0.0, value - last) if last is not None else 0.0
    return ErrorBudget(
        server=server.name,
        total=total,
        inherited=inherited,
        age_drift=age * server.delta,
        age=age,
    )


def service_budgets(service: SimulatedService) -> Dict[str, ErrorBudget]:
    """Budgets for every server, keyed by name."""
    return {
        name: server_budget(server)
        for name, server in sorted(service.servers.items())
    }


def budget_series(
    service: SimulatedService, times: Sequence[float], server_name: str
) -> List[ErrorBudget]:
    """Advance the service through ``times``, decomposing at each."""
    series = []
    for t in times:
        service.run_until(t)
        series.append(server_budget(service.servers[server_name]))
    return series


@dataclass(frozen=True)
class ResetProvenance:
    """Where one reset's inherited error came from.

    Attributes:
        time: Real time of the reset.
        server: Resetting server.
        source: The server(s) the new value derived from.
        inherited: The adopted ε (total).
        kind: "sync" or "recovery".
    """

    time: float
    server: str
    source: str
    inherited: float
    kind: str


def reset_budget_from_trace(service: SimulatedService) -> List[ResetProvenance]:
    """All resets recorded in the service trace, as provenance rows."""
    rows = []
    for record in service.trace.filter(kind="reset"):
        rows.append(
            ResetProvenance(
                time=record.time,
                server=record.source,
                source=record.data.get("from_server", ""),
                inherited=float(record.data.get("new_error", 0.0)),
                kind=record.data.get("reset_kind", "sync"),
            )
        )
    return rows


def render_budget_table(budgets: Dict[str, ErrorBudget]) -> str:
    """Aligned table of the decomposition (for reports and examples)."""
    from .plots import render_table

    rows = [
        [
            budget.server,
            budget.total,
            budget.inherited,
            budget.age_drift,
            f"{budget.drift_fraction:.0%}",
        ]
        for budget in budgets.values()
    ]
    return render_table(
        ["server", "E total", "inherited ε", "age drift", "drift share"], rows
    )
