"""Whole-service textual reports.

:func:`service_report` condenses a running
:class:`~repro.service.builder.SimulatedService` into the operator's view:
per-server state and counters, network health, consistency-group structure,
and (when rate-tracking servers are present) the consonance diagnosis.  The
CLI's ``--report`` flag prints it; tests assert on its structure.
"""

from __future__ import annotations

from typing import List

from ..service.builder import SimulatedService
from ..service.rate_tracking import RateTrackingServer
from .consistency_graph import consistency_groups
from .plots import render_intervals, render_table


def service_report(
    service: SimulatedService,
    *,
    include_diagram: bool = True,
    include_oracle: bool = True,
    include_budget: bool = False,
) -> str:
    """Render the operator's report for the service's current state.

    Args:
        service: The service to report on (observed at ``engine.now``).
        include_diagram: Append the interval diagram.
        include_oracle: Include truth-referenced columns (offset, correct);
            disable for the "what a real operator could see" view.
        include_budget: Append the error-budget decomposition (inherited ε
            vs age drift per server).

    Returns:
        A multi-line string.
    """
    snap = service.snapshot()
    sections: List[str] = []

    # --- headline
    sections.append(
        f"time service report @ t = {snap.time:.3f} s "
        f"({len(service.servers)} servers, ξ = {service.xi:g} s"
        + (f", τ = {service.tau:g} s)" if service.tau else ")")
    )

    # --- per-server table
    headers = ["server", "policy", "C_i", "E_i", "rounds", "resets", "incons"]
    if include_oracle:
        headers += ["offset", "correct"]
    rows = []
    for name in sorted(service.servers):
        server = service.servers[name]
        state = "departed" if server.departed else (
            server.policy.name if server.policy else "answer-only"
        )
        row = [
            name,
            state,
            snap.values[name],
            snap.errors[name],
            server.stats.rounds,
            server.stats.resets,
            server.stats.inconsistencies,
        ]
        if include_oracle:
            row += [snap.offsets[name], snap.correct[name]]
        rows.append(row)
    sections.append(render_table(headers, rows, precision=6))

    # --- service-level aggregates
    sections.append(
        f"asynchronism: {snap.asynchronism * 1e3:.3f} ms | "
        f"min/max error: {snap.min_error:.6g} / {snap.max_error:.6g} s | "
        f"consistent: {snap.consistent}"
        + (f" | all correct: {snap.all_correct}" if include_oracle else "")
    )

    # --- consistency groups (only interesting when partitioned)
    groups = consistency_groups(snap.intervals())
    if len(groups) > 1:
        sections.append(f"WARNING: service split into {len(groups)} consistency groups:")
        for group in groups:
            sections.append(
                f"  {{{', '.join(group.members)}}} ∩ = {group.intersection}"
            )

    # --- network
    stats = service.network.stats
    delivery = stats.delivered / stats.sent if stats.sent else 1.0
    sections.append(
        f"network: {stats.sent} sent, {stats.delivered} delivered "
        f"({delivery:.1%}), {stats.dropped} dropped"
    )

    # --- consonance diagnosis (rate-tracking servers only).  Each tracker
    # reports the neighbours it finds dissonant; a *bad* observer flags
    # everyone, so suspects are the servers flagged by at least half of the
    # other observers (majority voting over rate measurements is sound,
    # unlike over the non-transitive consistency relation).
    trackers = [
        server
        for server in service.servers.values()
        if isinstance(server, RateTrackingServer)
    ]
    if trackers:
        flag_counts: dict[str, int] = {}
        for tracker in trackers:
            for name in tracker.dissonant_neighbours():
                flag_counts[name] = flag_counts.get(name, 0) + 1
        # Strict majority of the *other* observers: a single bad observer
        # flags everyone, and must not be able to frame a healthy server.
        suspects_set = {
            name
            for name, count in flag_counts.items()
            if 2 * count > max(len(trackers) - 1, 1)
        }
        # A tracker seeing the whole service recede coherently implicates
        # itself (see RateTrackingServer.self_suspect).
        suspects_set.update(
            tracker.name for tracker in trackers if tracker.self_suspect()
        )
        suspects = sorted(suspects_set)
        if suspects:
            sections.append(
                "consonance diagnosis: dissonant servers "
                f"{suspects} (rates exceed claimed bounds; flagged by a "
                "majority of observers)"
            )
        else:
            sections.append("consonance diagnosis: all measured rates within bounds")

    if include_budget:
        from .error_budget import render_budget_table, service_budgets

        sections.append("error budget:")
        sections.append(render_budget_table(service_budgets(service)))

    if include_diagram:
        sections.append(
            render_intervals(
                snap.intervals(),
                true_time=snap.time if include_oracle else None,
            )
        )
    return "\n".join(sections)
