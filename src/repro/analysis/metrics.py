"""Metrics over simulation snapshots.

Experiments sample a service on a real-time grid
(:meth:`~repro.service.builder.SimulatedService.sample`) and feed the
snapshot list to these functions to get the series and scores the paper's
claims are judged by: error growth, asynchronism, correctness violations,
and theorem-bound compliance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.bounds import ServiceParameters
from ..service.builder import ServiceSnapshot


def times(snapshots: Sequence[ServiceSnapshot]) -> np.ndarray:
    """The snapshot times as an array."""
    return np.array([snap.time for snap in snapshots])


def error_series(snapshots: Sequence[ServiceSnapshot], name: str) -> np.ndarray:
    """``E_name(t)`` over the snapshots."""
    return np.array([snap.errors[name] for snap in snapshots])


def offset_series(snapshots: Sequence[ServiceSnapshot], name: str) -> np.ndarray:
    """Oracle offset ``C_name(t) - t`` over the snapshots."""
    return np.array([snap.offsets[name] for snap in snapshots])


def min_error_series(snapshots: Sequence[ServiceSnapshot]) -> np.ndarray:
    """``E_M(t)`` — the smallest error in the service at each snapshot."""
    return np.array([snap.min_error for snap in snapshots])


def max_error_series(snapshots: Sequence[ServiceSnapshot]) -> np.ndarray:
    """The largest error in the service at each snapshot."""
    return np.array([snap.max_error for snap in snapshots])


def asynchronism_series(snapshots: Sequence[ServiceSnapshot]) -> np.ndarray:
    """``max_{i,j} |C_i - C_j|`` at each snapshot."""
    return np.array([snap.asynchronism for snap in snapshots])


def worst_true_offset_series(snapshots: Sequence[ServiceSnapshot]) -> np.ndarray:
    """``max_i |C_i(t) - t|`` — the service's worst oracle error."""
    return np.array(
        [max(abs(offset) for offset in snap.offsets.values()) for snap in snapshots]
    )


def correctness_violations(
    snapshots: Sequence[ServiceSnapshot],
) -> List[tuple[float, List[str]]]:
    """Snapshots where some server's interval misses the true time.

    Returns:
        ``(time, offending server names)`` for each violating snapshot.
    """
    violations = []
    for snap in snapshots:
        bad = sorted(name for name, ok in snap.correct.items() if not ok)
        if bad:
            violations.append((snap.time, bad))
    return violations


def consistency_violations(
    snapshots: Sequence[ServiceSnapshot],
) -> List[float]:
    """Times at which the service-wide intersection was empty."""
    return [snap.time for snap in snapshots if not snap.consistent]


@dataclass(frozen=True)
class GrowthRate:
    """A least-squares linear fit of a time series.

    Attributes:
        slope: Fitted rate (units of the series per second).
        intercept: Fitted value at ``t = 0``.
        r_squared: Coefficient of determination (1.0 for a perfect line;
            0.0 when the series has no variance at all).
    """

    slope: float
    intercept: float
    r_squared: float


def growth_rate(t: np.ndarray, values: np.ndarray) -> GrowthRate:
    """Fit ``values ≈ slope·t + intercept``.

    The paper's "long term growth of the error" claims are about exactly
    this slope.

    Raises:
        ValueError: With fewer than two samples.
    """
    if len(t) < 2 or len(t) != len(values):
        raise ValueError(
            f"growth_rate needs matched series of length >= 2, got {len(t)}, {len(values)}"
        )
    slope, intercept = np.polyfit(t, values, deg=1)
    predicted = slope * t + intercept
    total = float(np.sum((values - values.mean()) ** 2))
    residual = float(np.sum((values - predicted) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return GrowthRate(float(slope), float(intercept), r_squared)


@dataclass(frozen=True)
class BoundCheck:
    """Result of checking a measured series against a theoretical bound.

    Attributes:
        samples: Number of points checked.
        violations: Points where the measurement exceeded the bound.
        max_ratio: Largest measured/bound ratio (``<= 1`` means the bound
            held everywhere; small values mean the bound is slack).
    """

    samples: int
    violations: int
    max_ratio: float

    @property
    def holds(self) -> bool:
        """Whether the bound held at every sample."""
        return self.violations == 0


def check_bound(measured: np.ndarray, bound: np.ndarray) -> BoundCheck:
    """Compare a measured series against a per-sample bound series."""
    if len(measured) != len(bound):
        raise ValueError(
            f"series lengths differ: {len(measured)} vs {len(bound)}"
        )
    if len(measured) == 0:
        return BoundCheck(samples=0, violations=0, max_ratio=0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(bound > 0, measured / bound, np.where(measured > 0, np.inf, 0.0))
    violations = int(np.sum(measured > bound + 1e-12))
    return BoundCheck(
        samples=len(measured),
        violations=violations,
        max_ratio=float(np.max(ratios)),
    )


def theorem2_bound_series(
    snapshots: Sequence[ServiceSnapshot],
    params: ServiceParameters,
    delta_of: Dict[str, float],
    name: str,
) -> np.ndarray:
    """The Theorem 2 bound ``E_M + ξ + δ_i(τ + 2ξ)`` at each snapshot."""
    delta = delta_of[name]
    return np.array(
        [params.mm_error_bound(snap.min_error, delta) for snap in snapshots]
    )


def theorem3_bound_series(
    snapshots: Sequence[ServiceSnapshot],
    params: ServiceParameters,
    delta_i: float,
    delta_j: float,
) -> np.ndarray:
    """The Theorem 3 bound at each snapshot."""
    return np.array(
        [
            params.mm_asynchronism_bound(snap.min_error, delta_i, delta_j)
            for snap in snapshots
        ]
    )


def pairwise_asynchronism(
    snapshots: Sequence[ServiceSnapshot], name_i: str, name_j: str
) -> np.ndarray:
    """``|C_i - C_j|`` over the snapshots for one server pair."""
    return np.array(
        [abs(snap.values[name_i] - snap.values[name_j]) for snap in snapshots]
    )
