"""Consistency graphs and consistency groups (Section 5, Figure 4).

When drift bounds are invalid the service can become globally inconsistent
while remaining *locally* consistent in patches: Figure 4 shows a six-server
service split into three "consistency groups" whose pairwise intersections
are non-empty within each group.  Because the consistency relation is not
transitive, recovering from this state is genuinely ambiguous — "it is not
apparent which set of servers (if any) is the correct one."

This module materialises that structure:

* :func:`consistency_graph` — nodes are servers, edges join consistent
  pairs.
* :func:`consistency_groups` — the maximal cliques of that graph with each
  group's common intersection.  (For 1-D intervals, a clique's pairwise
  overlaps imply a common point by Helly's theorem, so every maximal clique
  really is a candidate "correct" group.)
* :func:`largest_group` / :func:`group_of` — conveniences for recovery
  policies and the partition experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import networkx as nx

from ..core.intervals import TimeInterval, intersect_all


def consistency_graph(intervals: Dict[str, TimeInterval]) -> nx.Graph:
    """Build the graph whose edges join pairwise-consistent servers."""
    graph = nx.Graph()
    names = sorted(intervals)
    graph.add_nodes_from(names)
    for index, a in enumerate(names):
        for b in names[index + 1 :]:
            if intervals[a].intersects(intervals[b]):
                graph.add_edge(a, b)
    return graph


@dataclass(frozen=True)
class ConsistencyGroup:
    """A maximal mutually-consistent set of servers.

    Attributes:
        members: Server names (sorted tuple).
        intersection: The group's common interval — the shaded region of
            Figure 4.
    """

    members: tuple[str, ...]
    intersection: TimeInterval

    @property
    def size(self) -> int:
        """Number of member servers."""
        return len(self.members)


def consistency_groups(
    intervals: Dict[str, TimeInterval]
) -> List[ConsistencyGroup]:
    """All maximal consistency groups, largest first (ties: lexicographic).

    A globally consistent service yields exactly one group containing every
    server; the Figure 4 state yields its three overlapping groups.
    """
    graph = consistency_graph(intervals)
    groups = []
    for clique in nx.find_cliques(graph):
        members = tuple(sorted(clique))
        common = intersect_all(intervals[name] for name in members)
        # A clique of pairwise-intersecting 1-D intervals always has a
        # common point (Helly), so `common` cannot be None.
        assert common is not None
        groups.append(ConsistencyGroup(members=members, intersection=common))
    groups.sort(key=lambda group: (-group.size, group.members))
    return groups


def largest_group(intervals: Dict[str, TimeInterval]) -> ConsistencyGroup:
    """The biggest consistency group (the majority-ish candidate).

    Raises:
        ValueError: On an empty service.
    """
    groups = consistency_groups(intervals)
    if not groups:
        raise ValueError("no servers, no consistency groups")
    return groups[0]


def group_of(
    intervals: Dict[str, TimeInterval], name: str
) -> List[ConsistencyGroup]:
    """The groups containing a given server (a server can be in several)."""
    return [
        group for group in consistency_groups(intervals) if name in group.members
    ]


def is_partitioned(intervals: Dict[str, TimeInterval]) -> bool:
    """Whether the service has split into more than one consistency group."""
    return len(consistency_groups(intervals)) > 1


def groups_from_verdicts(
    nodes: Iterable[str], edges: Iterable[tuple[str, str]]
) -> List[tuple[str, ...]]:
    """Consistency groups from *pairwise verdicts* instead of intervals.

    The live census (:mod:`repro.recovery.census`) knows booleans, not
    intervals, so there is no Helly intersection to report — just the
    maximal cliques of the verdict graph.  Sorted largest-first with
    lexicographic ties, matching :func:`consistency_groups`.

    Args:
        nodes: Every server that should appear (isolated ones become
            singleton groups).
        edges: The pairs judged consistent.
    """
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    graph.add_edges_from(edges)
    groups = [tuple(sorted(clique)) for clique in nx.find_cliques(graph)]
    groups.sort(key=lambda members: (-len(members), members))
    return groups


def correct_groups(
    intervals: Dict[str, TimeInterval], true_time: float
) -> List[ConsistencyGroup]:
    """Oracle: the groups whose intersection contains the true time.

    The paper's point is that *without* the oracle these are
    indistinguishable from the incorrect groups; experiments use this to
    score recovery policies.
    """
    return [
        group
        for group in consistency_groups(intervals)
        if group.intersection.contains(true_time)
    ]
