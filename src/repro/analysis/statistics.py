"""Small statistics helpers shared by experiments and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-ish summary of a series.

    Attributes:
        count: Number of samples.
        mean: Arithmetic mean.
        std: Population standard deviation.
        minimum: Smallest sample.
        maximum: Largest sample.
        p50: Median.
        p95: 95th percentile.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Summary statistics of a non-empty series.

    Raises:
        ValueError: On empty input.
    """
    if len(values) == 0:
        raise ValueError("summarize() of empty series")
    array = np.asarray(values, dtype=float)
    return SeriesSummary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        maximum=float(array.max()),
        p50=float(np.percentile(array, 50)),
        p95=float(np.percentile(array, 95)),
    )


def ratio_of_rates(numerator: float, denominator: float) -> float:
    """Safe ratio used for "MM grows N× faster than IM" style claims.

    Returns ``inf`` when the denominator underflows to ~0 while the
    numerator does not, and 1.0 when both are ~0 (no growth on either side
    means the ratio carries no information).
    """
    eps = 1e-15
    if abs(denominator) < eps:
        return float("inf") if abs(numerator) >= eps else 1.0
    return numerator / denominator


def confidence_interval_mean(
    values: Sequence[float], z: float = 1.96
) -> tuple[float, float]:
    """Normal-approximation CI for the mean (benchmarks report spread).

    Raises:
        ValueError: On empty input.
    """
    if len(values) == 0:
        raise ValueError("confidence interval of empty series")
    array = np.asarray(values, dtype=float)
    half = z * array.std(ddof=1) / np.sqrt(array.size) if array.size > 1 else 0.0
    return float(array.mean() - half), float(array.mean() + half)
