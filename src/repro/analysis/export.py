"""Exporting traces and snapshot series to CSV/JSON.

Experiments produce :class:`~repro.simulation.trace.TraceRecorder` rows and
:class:`~repro.service.builder.ServiceSnapshot` series; downstream analysis
(pandas, gnuplot, spreadsheets) wants flat files.  Everything here writes
plain stdlib CSV/JSON — no optional dependencies.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence, Union

from ..service.builder import ServiceSnapshot
from ..simulation.trace import TraceRecord, TraceRecorder

PathLike = Union[str, Path]


def trace_to_csv(trace: Iterable[TraceRecord], path: PathLike) -> int:
    """Write trace rows to CSV.

    Columns: ``time, kind, source`` plus the union of all data keys (rows
    missing a key leave the cell empty).

    Returns:
        Number of rows written.
    """
    rows = list(trace)
    data_keys: list[str] = []
    seen = set()
    for row in rows:
        for key in row.data:
            if key not in seen:
                seen.add(key)
                data_keys.append(key)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "kind", "source", *data_keys])
        for row in rows:
            writer.writerow(
                [row.time, row.kind, row.source]
                + [row.data.get(key, "") for key in data_keys]
            )
    return len(rows)


def trace_to_json(trace: Iterable[TraceRecord], path: PathLike) -> int:
    """Write trace rows to a JSON array of objects.

    Returns:
        Number of rows written.
    """
    rows = list(trace)
    payload = [
        {"time": row.time, "kind": row.kind, "source": row.source, **row.data}
        for row in rows
    ]
    Path(path).write_text(json.dumps(payload, indent=2))
    return len(rows)


def snapshots_to_csv(
    snapshots: Sequence[ServiceSnapshot], path: PathLike
) -> int:
    """Write a snapshot series to long-form CSV.

    One row per (snapshot, server): ``time, server, clock_value, error,
    offset, correct`` — the layout plotting tools want.

    Returns:
        Number of rows written.
    """
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["time", "server", "clock_value", "error", "offset", "correct"]
        )
        for snap in snapshots:
            for name in sorted(snap.values):
                writer.writerow(
                    [
                        snap.time,
                        name,
                        snap.values[name],
                        snap.errors[name],
                        snap.offsets[name],
                        int(snap.correct[name]),
                    ]
                )
                count += 1
    return count


def snapshots_to_json(
    snapshots: Sequence[ServiceSnapshot], path: PathLike
) -> int:
    """Write a snapshot series to JSON (one object per snapshot).

    Returns:
        Number of snapshots written.
    """
    payload = [
        {
            "time": snap.time,
            "values": snap.values,
            "errors": snap.errors,
            "offsets": snap.offsets,
            "correct": snap.correct,
        }
        for snap in snapshots
    ]
    Path(path).write_text(json.dumps(payload, indent=2))
    return len(snapshots)
