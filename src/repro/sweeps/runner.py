"""Sweep execution and result tabulation.

:func:`run_sweep` maps a scenario function over a
:class:`~repro.sweeps.grid.ParameterGrid` (optionally with replications at
decorrelated seeds), collecting per-point metric dicts into a
:class:`SweepResult` that can slice, aggregate, and render itself.

The scenario function has the signature ``fn(seed=..., **point) -> Mapping
[str, float]`` — every experiment module's ``run`` can be adapted with a
small lambda.  Failures are captured per point (a sweep should report a
diverging cell, not die on it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .grid import ParameterGrid, point_label

#: A scenario: keyword grid parameters plus ``seed`` -> metric mapping.
ScenarioFn = Callable[..., Mapping[str, float]]


@dataclass(frozen=True)
class SweepPoint:
    """One executed grid point (one replication).

    Attributes:
        params: The grid parameters of this point.
        seed: The seed used for this replication.
        metrics: The scenario's returned metrics (empty on failure).
        error: The exception message when the scenario raised, else None.
        elapsed: Wall-clock seconds the scenario took.
    """

    params: Dict[str, Any]
    seed: int
    metrics: Dict[str, float]
    error: Optional[str]
    elapsed: float

    @property
    def ok(self) -> bool:
        """Whether the scenario completed."""
        return self.error is None

    @property
    def label(self) -> str:
        """The point's grid label (seed excluded)."""
        return point_label(self.params)


@dataclass
class SweepResult:
    """All executed points of a sweep, with aggregation helpers."""

    points: List[SweepPoint] = field(default_factory=list)

    @property
    def failures(self) -> List[SweepPoint]:
        """Points whose scenario raised."""
        return [point for point in self.points if not point.ok]

    def metric_names(self) -> List[str]:
        """Union of metric keys across successful points, sorted."""
        names: set[str] = set()
        for point in self.points:
            names.update(point.metrics)
        return sorted(names)

    def aggregate(
        self, statistic: Callable[[Sequence[float]], float] = np.mean
    ) -> List[Dict[str, Any]]:
        """Collapse replications: one row per grid label.

        Args:
            statistic: Reduction over each metric's replication values.

        Returns:
            Rows of ``{param..., metric...}`` dicts sorted by label, with
            a ``replications`` count per row.
        """
        by_label: Dict[str, List[SweepPoint]] = {}
        for point in self.points:
            if point.ok:
                by_label.setdefault(point.label, []).append(point)
        rows = []
        for label in sorted(by_label):
            group = by_label[label]
            row: Dict[str, Any] = dict(group[0].params)
            row["replications"] = len(group)
            for metric in self.metric_names():
                values = [
                    p.metrics[metric] for p in group if metric in p.metrics
                ]
                if values:
                    row[metric] = float(statistic(values))
            rows.append(row)
        return rows

    def to_table(self, precision: int = 4) -> str:
        """Render the aggregated sweep as an aligned text table."""
        from ..analysis.plots import render_table

        rows = self.aggregate()
        if not rows:
            return "(no successful sweep points)"
        headers = list(rows[0].keys())
        return render_table(
            headers,
            [[row.get(h, "") for h in headers] for row in rows],
            precision=precision,
        )


def run_sweep(
    scenario: ScenarioFn,
    grid: ParameterGrid,
    *,
    replications: int = 1,
    base_seed: int = 0,
    on_point: Optional[Callable[[SweepPoint], None]] = None,
) -> SweepResult:
    """Execute ``scenario`` over every grid point × replication.

    Args:
        scenario: ``fn(seed=..., **params) -> {metric: value}``.
        grid: The parameter grid.
        replications: Independent repeats per point; replication ``r`` of
            point ``p`` gets seed ``base_seed + 1009·r + stable_hash(p)``
            so seeds never collide across the grid.
        base_seed: Seed offset for the whole sweep.
        on_point: Optional progress callback per completed point.

    Returns:
        The collected :class:`SweepResult`.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    result = SweepResult()
    for index, params in enumerate(grid):
        for replication in range(replications):
            seed = base_seed + 1009 * replication + 9176 * index
            started = time.perf_counter()
            error: Optional[str] = None
            metrics: Dict[str, float] = {}
            try:
                metrics = dict(scenario(seed=seed, **params))
            except Exception as exc:  # noqa: BLE001 - sweeps must survive
                error = f"{type(exc).__name__}: {exc}"
            point = SweepPoint(
                params=dict(params),
                seed=seed,
                metrics=metrics,
                error=error,
                elapsed=time.perf_counter() - started,
            )
            result.points.append(point)
            if on_point is not None:
                on_point(point)
    return result
