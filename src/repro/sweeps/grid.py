"""Parameter grids for systematic studies.

A :class:`ParameterGrid` is an ordered mapping from parameter names to the
values each should take; iterating it yields one dict per point of the
Cartesian product, in a deterministic order.  Grids compose (:meth:`extend`)
and can be restricted (:meth:`subset`), and every point gets a stable,
filesystem-safe label for result keying.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Sequence


def point_label(point: Mapping[str, Any]) -> str:
    """A stable, human-readable label for one grid point.

    Example:
        >>> point_label({"n": 4, "tau": 60.0})
        'n=4,tau=60.0'
    """
    return ",".join(f"{key}={point[key]}" for key in sorted(point))


@dataclass(frozen=True)
class ParameterGrid:
    """The Cartesian product of named parameter value lists.

    Attributes:
        axes: Parameter name -> tuple of values.  Iteration order of the
            product follows the sorted parameter names, last axis fastest.
    """

    axes: tuple[tuple[str, tuple[Any, ...]], ...]

    @classmethod
    def of(cls, **axes: Sequence[Any]) -> "ParameterGrid":
        """Build a grid from keyword value-lists.

        Raises:
            ValueError: If any axis is empty.
        """
        for name, values in axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {name!r} has no values")
        ordered = tuple(
            (name, tuple(axes[name])) for name in sorted(axes)
        )
        return cls(axes=ordered)

    @property
    def names(self) -> tuple[str, ...]:
        """The parameter names, in iteration order."""
        return tuple(name for name, _values in self.axes)

    def __len__(self) -> int:
        total = 1
        for _name, values in self.axes:
            total *= len(values)
        return total

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        names = self.names
        value_lists = [values for _name, values in self.axes]
        for combo in itertools.product(*value_lists):
            yield dict(zip(names, combo))

    def extend(self, **axes: Sequence[Any]) -> "ParameterGrid":
        """A new grid with extra (or replaced) axes."""
        merged: Dict[str, Sequence[Any]] = {
            name: values for name, values in self.axes
        }
        merged.update(axes)
        return ParameterGrid.of(**merged)

    def subset(self, **fixed: Any) -> "ParameterGrid":
        """A new grid with some axes pinned to single values.

        Raises:
            KeyError: If a pinned name is not an axis.
            ValueError: If a pinned value is not in the axis's values.
        """
        merged: Dict[str, Sequence[Any]] = {
            name: values for name, values in self.axes
        }
        for name, value in fixed.items():
            if name not in merged:
                raise KeyError(f"{name!r} is not a grid axis")
            if value not in merged[name]:
                raise ValueError(f"{value!r} not among axis {name!r} values")
            merged[name] = [value]
        return ParameterGrid.of(**merged)
