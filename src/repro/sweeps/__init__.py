"""Parameter-sweep framework: grids, a fault-tolerant runner, and ready
scenarios over the simulated time service."""

from .grid import ParameterGrid, point_label
from .runner import ScenarioFn, SweepPoint, SweepResult, run_sweep
from .scenarios import growth_rate_comparison, mesh_steady_state

__all__ = [
    "ParameterGrid",
    "ScenarioFn",
    "SweepPoint",
    "SweepResult",
    "growth_rate_comparison",
    "mesh_steady_state",
    "point_label",
    "run_sweep",
]
