"""Ready-made sweep scenarios over the simulated service.

Each function here follows the :mod:`repro.sweeps.runner` scenario
signature — grid parameters as keywords plus ``seed`` — and returns a flat
metric dict, so studies like "how does IM's steady error move with n, τ,
ξ and δ jointly?" are one :func:`~repro.sweeps.runner.run_sweep` call.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from ..experiments.scenarios import MeshScenario, build_mesh_service, grid

POLICIES = {"MM": MMPolicy, "IM": IMPolicy}


def mesh_steady_state(
    *,
    seed: int,
    policy: str = "IM",
    n: int = 5,
    delta: float = 1e-5,
    tau: float = 60.0,
    one_way: float = 0.01,
    horizon_taus: float = 30.0,
) -> Dict[str, float]:
    """Steady-state metrics of one full-mesh service.

    Returns:
        ``mean_error``, ``max_error``, ``mean_asynchronism``,
        ``worst_offset``, ``correct`` (1.0/0.0), ``resets_per_round``.
    """
    scenario = MeshScenario(
        n=n, delta=delta, tau=tau, one_way=one_way, seed=seed
    )
    service = build_mesh_service(scenario, POLICIES[policy]())
    horizon = max(horizon_taus * tau, 600.0)
    snapshots = service.sample(grid(horizon / 2, horizon, 24))
    errors = [e for snap in snapshots for e in snap.errors.values()]
    offsets = [abs(o) for snap in snapshots for o in snap.offsets.values()]
    asyn = [snap.asynchronism for snap in snapshots]
    correct = all(snap.all_correct for snap in snapshots)
    rounds = sum(s.stats.rounds for s in service.servers.values())
    resets = sum(s.stats.resets for s in service.servers.values())
    return {
        "mean_error": float(np.mean(errors)),
        "max_error": float(np.max(errors)),
        "mean_asynchronism": float(np.mean(asyn)),
        "worst_offset": float(np.max(offsets)),
        "correct": 1.0 if correct else 0.0,
        "resets_per_round": resets / max(rounds, 1),
    }


def growth_rate_comparison(
    *,
    seed: int,
    n: int = 8,
    claimed_delta: float = 1e-4,
    fill: float = 0.9,
    tau: float = 60.0,
    horizon: float = 4.0 * 3600.0,
) -> Dict[str, float]:
    """MM vs IM error-growth slopes on one shared clock population.

    Returns:
        ``mm_growth``, ``im_growth``, ``ratio`` — the §4 experiment as a
        sweepable scenario (vary ``fill`` to map the overspecification
        curve).
    """
    from ..analysis.metrics import growth_rate, min_error_series, times

    skews = [
        fill * claimed_delta * (2.0 * k / (n - 1) - 1.0) for k in range(n)
    ]
    scenario = MeshScenario(
        n=n, delta=claimed_delta, skews=skews, tau=tau, one_way=0.002, seed=seed
    )
    sample_times = grid(tau * 2, horizon, 60)
    mm_snaps = build_mesh_service(scenario, MMPolicy()).sample(sample_times)
    im_snaps = build_mesh_service(scenario, IMPolicy()).sample(sample_times)
    mm_fit = growth_rate(times(mm_snaps), min_error_series(mm_snaps))
    im_fit = growth_rate(times(im_snaps), min_error_series(im_snaps))
    ratio = mm_fit.slope / im_fit.slope if im_fit.slope > 0 else float("inf")
    return {
        "mm_growth": mm_fit.slope,
        "im_growth": im_fit.slope,
        "ratio": ratio,
    }
