"""Authenticated time servers: the security layer composed into the stack.

:class:`AuthenticationMixin` threads the three guards through the
:class:`~repro.service.server.TimeServer` security hooks:

* outgoing requests and replies are signed (:meth:`_prepare_request` /
  :meth:`_prepare_reply`);
* inbound sync-plane requests must verify and be replay-fresh before
  they are answered (:meth:`_admit_request`) — client queries stay open
  by default, a real deployment's anonymous read path;
* inbound poll/recovery replies are judged once their RTT is known
  (:meth:`_admit_reply`): transit physics first (a reply faster than the
  link's declared floor is forged or pre-played — the delay attack's
  signature), then the MAC, then the replay window, then the declared
  delay ceiling (reject or widen per configuration).

Every security rejection feeds the same neighbour-health machinery the
hardened/Byzantine layers use: repeated failures decay the peer's health
score into quarantine, and on a Byzantine-tolerant server they also
register falseticker evidence — in-flight corruption is treated as part
of the Byzantine threat model, not a separate concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..byzantine.server import ByzantineTolerantServer
from ..network.delay import DelayModel
from ..service.hardening import HardenedTimeServer
from ..service.messages import RequestKind, TimeReply, TimeRequest
from ..telemetry.registry import CounterBackedStats, CounterField
from .auth import Keyring, MessageAuthenticator
from .delayguard import DelayGuard
from .replay import ReplayGuard

__all__ = [
    "AuthenticatedByzantineServer",
    "AuthenticatedTimeServer",
    "AuthenticationMixin",
    "SecurityConfig",
    "SecurityStats",
]


@dataclass
class SecurityConfig:
    """Knobs of the on-path security layer.

    Attributes:
        keyring: The cluster's shared MAC keyring (built per service by
            the builder when authentication is enabled).
        require_auth: Refuse unauthenticated/invalid sync-plane messages.
        authenticate_clients: Also require ``CLIENT`` requests to carry a
            valid MAC.  Off by default: the anonymous read path stays
            open, and a forged client *request* can at worst cost one
            reply (a residual risk documented in ``docs/security.md``).
        replay_window: Per-peer anti-replay window (sequence numbers).
        delay_guard: Judge reply RTTs against the links' declared
            :class:`~repro.network.delay.DelayModel` physics.
        delay_mode: ``"widen"`` tolerates a beyond-bound transit with the
            excess charged to the adopted error; ``"reject"`` drops it.
        delay_slack: Measurement slack (seconds) for the delay guard.
    """

    keyring: Keyring = field(default_factory=lambda: Keyring.from_secret("repro"))
    require_auth: bool = True
    authenticate_clients: bool = False
    replay_window: int = 64
    delay_guard: bool = True
    delay_mode: str = "widen"
    delay_slack: float = 1e-4


class SecurityStats(CounterBackedStats):
    """Counters of the security layer (``repro_*_total`` families)."""

    prefix = "repro_"

    auth_failures = CounterField(
        "Messages rejected by MAC verification (missing/unknown-key/bad-mac)"
    )
    replay_drops = CounterField("Messages rejected by the anti-replay window")
    delay_attack_detections = CounterField(
        "Replies rejected by the delay guard (too-fast or beyond-bound)"
    )
    delay_widens = CounterField(
        "Replies tolerated beyond the declared delay bound with the "
        "excess charged to the adopted error"
    )


class AuthenticationMixin:
    """Mixin adding MAC + replay + delay-guard enforcement to a server.

    Must precede a :class:`~repro.service.server.TimeServer` subclass in
    the MRO.  Accepts one extra keyword argument, ``security``.
    """

    def __init__(self, *args, security: Optional[SecurityConfig] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.security = security if security is not None else SecurityConfig()
        self.authenticator = MessageAuthenticator(self.security.keyring)
        self._request_replay = ReplayGuard(self.security.replay_window)
        self._reply_replay = ReplayGuard(self.security.replay_window)
        self._link_models: dict = {}
        self.security_stats = SecurityStats(self.telemetry.stats_registry())
        self._delay_guard = (
            DelayGuard(
                self.delta,
                mode=self.security.delay_mode,
                slack=self.security.delay_slack,
            )
            if self.security.delay_guard
            else None
        )
        registry = self.telemetry.stats_registry()
        self._key_epoch_gauge = (
            registry.gauge(
                "repro_security_key_epoch",
                "The keyring's rotation epoch (0 = initial keys)",
                ("server",),
            ).labels()
            if registry is not None
            else None
        )
        if self._key_epoch_gauge is not None:
            self._key_epoch_gauge.set(float(self.security.keyring.epoch))

    # ------------------------------------------------------------ keyring

    def rotate_key(self) -> int:
        """Rotate the cluster keyring's signing key (shared object: one
        rotation serves every server on the ring)."""
        new_id = self.security.keyring.rotate()
        if self._key_epoch_gauge is not None:
            self._key_epoch_gauge.set(float(self.security.keyring.epoch))
        self._trace("key_rotation", key_id=new_id)
        return new_id

    # ------------------------------------------------------------ signing

    def _prepare_request(self, request: TimeRequest) -> TimeRequest:
        return self.authenticator.sign(super()._prepare_request(request))

    def _prepare_reply(self, reply: TimeReply) -> TimeReply:
        reply = super()._prepare_reply(reply)
        if (
            reply.kind is RequestKind.CLIENT
            and not self.security.authenticate_clients
        ):
            # Anonymous clients share no cluster key: a MAC they cannot
            # check is pure hot-path cost.  With ``authenticate_clients``
            # the client plane is keyed, and answers are signed too.
            return reply
        return self.authenticator.sign(reply)

    # -------------------------------------------------------- enforcement

    def _note_security_rejection(self, peer: str, reason: str) -> None:
        """Feed a security rejection into health/reputation quarantine.

        Duck-typed against whichever stack this mixin sits on: the
        hardened server exposes ``hardening.quarantine``, the Byzantine
        server ``byzantine.quarantine`` plus a reputation tracker.
        """
        self._trace("security_rejection", server=peer, reason=reason)
        reputation = getattr(self, "reputation", None)
        if reputation is not None:
            reputation.observe_validation_failure(peer)
        byzantine = getattr(self, "byzantine", None)
        policy = None
        if byzantine is not None:
            policy = byzantine.quarantine
            demote = self._note_demotion
        else:
            hardening = getattr(self, "hardening", None)
            if hardening is not None:
                policy = hardening.quarantine
                demote = self._note_quarantine
        if policy is not None and self._health(peer).record_invalid(
            self.now, policy
        ):
            demote(peer)

    def _admit_request(self, request: TimeRequest) -> Optional[str]:
        refusal = super()._admit_request(request)
        if refusal is not None:
            return refusal
        cfg = self.security
        if not cfg.require_auth:
            return None
        if request.kind is RequestKind.CLIENT and not cfg.authenticate_clients:
            return None
        verdict = self.authenticator.verify(request)
        if verdict != "ok":
            self.security_stats.auth_failures += 1
            self._note_security_rejection(request.origin, f"auth:{verdict}")
            return f"auth:{verdict}"
        freshness = self._request_replay.admit(request.origin, request.auth[1])
        if freshness != "ok":
            self.security_stats.replay_drops += 1
            self._note_security_rejection(request.origin, f"replay:{freshness}")
            return f"replay:{freshness}"
        return None

    def _link_delay_models(
        self, peer: str
    ) -> tuple[Optional[DelayModel], Optional[DelayModel]]:
        """The declared (outbound, inbound) delay models of the peer link.

        Cached per peer: link objects (and their delay models) persist
        for the life of the topology — even across edge down/up cycles,
        which reuse the same :class:`~repro.network.link.Link`.
        """
        cached = self._link_models.get(peer)
        if cached is not None:
            return cached
        try:
            link = self.network.link(self.name, peer)
        except KeyError:
            return None, None  # uncached: the link may appear later
        reverse = link.reverse_delay if link.reverse_delay is not None else link.delay
        if min(self.name, peer) == self.name:
            models = (link.delay, reverse)  # we are the forward direction
        else:
            models = (reverse, link.delay)
        self._link_models[peer] = models
        return models

    def _admit_reply(
        self, reply: TimeReply, rtt_local: float
    ) -> tuple[Optional[str], float]:
        rejection, widen = super()._admit_reply(reply, rtt_local)
        if rejection is not None:
            return rejection, widen
        cfg = self.security
        judged = None
        if self._delay_guard is not None:
            outbound, inbound = self._link_delay_models(reply.server)
            judged = self._delay_guard.judge(rtt_local, outbound, inbound)
            # Physics before cryptography: a too-fast transit is the
            # delay attack's signature even when the MAC also fails
            # (cached genuine data pre-played with a rewritten header).
            if judged.verdict == "too-fast":
                self.security_stats.delay_attack_detections += 1
                self._note_security_rejection(reply.server, "delay:too-fast")
                return "delay:too-fast", 0.0
        if cfg.require_auth:
            verdict = self.authenticator.verify(reply)
            if verdict != "ok":
                self.security_stats.auth_failures += 1
                self._note_security_rejection(reply.server, f"auth:{verdict}")
                return f"auth:{verdict}", 0.0
            freshness = self._reply_replay.admit(reply.server, reply.auth[1])
            if freshness != "ok":
                self.security_stats.replay_drops += 1
                self._note_security_rejection(
                    reply.server, f"replay:{freshness}"
                )
                return f"replay:{freshness}", 0.0
        if judged is not None:
            if judged.verdict == "beyond-bound":
                self.security_stats.delay_attack_detections += 1
                self._note_security_rejection(reply.server, "delay:beyond-bound")
                return "delay:beyond-bound", 0.0
            if judged.widen > 0.0:
                self.security_stats.delay_widens += 1
                self._trace(
                    "delay_widen", server=reply.server, widen=judged.widen
                )
                widen += judged.widen
        return None, widen


class AuthenticatedTimeServer(AuthenticationMixin, HardenedTimeServer):
    """A hardened server whose wire messages are authenticated."""


class AuthenticatedByzantineServer(AuthenticationMixin, ByzantineTolerantServer):
    """A Byzantine-tolerant server whose wire messages are authenticated.

    Security rejections register falseticker evidence: an on-path
    adversary corrupting a peer's link is indistinguishable, from the
    victim's seat, from that peer lying — and the defense is the same.
    """
