"""Per-peer replay protection with a bounded acceptance window.

IPsec-style anti-replay: each peer's authenticated messages carry a
strictly increasing sequence number (the signer's counter from
:class:`~repro.security.auth.MessageAuthenticator`).  The guard tracks,
per peer, the highest sequence accepted and a bounded set of sequences
seen inside the trailing window.  A sequence is admitted exactly once:

* above the highest → fresh (window slides up);
* inside the window and unseen → fresh (out-of-order delivery);
* inside the window and seen → ``"replay"``;
* below the window → ``"stale"`` (too old to distinguish from replay).

State is O(window) per peer and the check is O(1).
"""

from __future__ import annotations

from typing import Dict, Set

__all__ = ["ReplayGuard", "ReplayVerdict"]

#: Verdict strings returned by :meth:`ReplayGuard.admit`.
ReplayVerdict = str


class ReplayGuard:
    """Bounded-window duplicate/replay detector.

    Args:
        window: Acceptance window size in sequence numbers; sequences
            more than ``window`` below the newest accepted one are
            rejected as stale.
    """

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        self.window = int(window)
        self._highest: Dict[str, int] = {}
        self._seen: Dict[str, Set[int]] = {}

    def admit(self, peer: str, seq: int) -> ReplayVerdict:
        """``"ok"`` (and record it), ``"replay"``, or ``"stale"``."""
        highest = self._highest.get(peer)
        if highest is None:
            self._highest[peer] = seq
            self._seen[peer] = {seq}
            return "ok"
        seen = self._seen[peer]
        if seq > highest:
            self._highest[peer] = seq
            seen.add(seq)
            # Amortized prune: rebuilding on every admit once the set
            # fills would make each accept O(window); letting it grow to
            # 2·window before sweeping keeps accepts O(1) amortized at
            # the same asymptotic memory.  Entries below the window are
            # unreachable either way (the stale check precedes the
            # membership test), so prune timing never changes a verdict.
            if len(seen) > 2 * self.window:
                floor = seq - self.window
                self._seen[peer] = {s for s in seen if s > floor}
            return "ok"
        if seq <= highest - self.window:
            return "stale"
        if seq in seen:
            return "replay"
        seen.add(seq)
        return "ok"

    def forget(self, peer: str) -> None:
        """Drop a peer's window (e.g. after its quarantine expires)."""
        self._highest.pop(peer, None)
        self._seen.pop(peer, None)
