"""Delay-attack detection from the link's declared delay physics.

The paper's Section 2.2 bounds every one-way delay: a link's
:class:`~repro.network.delay.DelayModel` declares a ``minimum`` and a
``bound``, and the requester *measures* the round trip on its own clock
(``ξ^i_j``).  Those three numbers give a defender two checks no
cryptography provides:

* **Too fast.**  A reply whose measured RTT is below the physical
  floor ``minimum_out + minimum_in`` cannot have crossed the link both
  ways — it was forged near the victim or pre-played by an on-path
  adversary substituting cached (stale) data for the real reply.  The
  substitution hides the data's age from the RTT measurement, which is
  exactly the delay attack that breaks the MM-2 correctness argument,
  so a too-fast reply is always rejected.
* **Beyond bound.**  A reply slower than ``(1+δ)·(bound_out +
  bound_in)`` violates the declared ξ bound.  The interval arithmetic
  already inflates the adopted error by ``(1+δ)·rtt`` (an *honest* slow
  reply stays correct), so the guard can either reject it or tolerate
  it with the excess added to the adopted error — belt and braces for a
  residual shift the bound was supposed to exclude.

Both checks leave a configured ``slack`` for clock-rate skew on the
measurement (the RTT is read on the local clock, which runs within
``1 ± δ`` of real time) plus quantization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..network.delay import DelayModel

__all__ = ["DelayGuard", "DelayVerdict"]


@dataclass(frozen=True)
class DelayVerdict:
    """The guard's judgement of one measured round trip.

    Attributes:
        verdict: ``"ok"``, ``"too-fast"``, or ``"beyond-bound"``.
        widen: Extra seconds of error the caller must add to the adopted
            interval when it tolerates the reply anyway (0 when ``ok``
            or when the reply should be rejected outright).
    """

    verdict: str
    widen: float = 0.0

    @property
    def ok(self) -> bool:
        return self.verdict == "ok"


#: Shared no-widen verdicts — judged once per reply on the hot path.
_OK = DelayVerdict("ok")
_TOO_FAST = DelayVerdict("too-fast")
_BEYOND_BOUND = DelayVerdict("beyond-bound")


class DelayGuard:
    """Judges measured RTTs against declared link delay models.

    Args:
        delta: The local clock's claimed maximum drift rate δ_i (the
            RTT is measured on that clock).
        mode: What to do with a beyond-bound reply: ``"widen"`` keeps it
            with the excess transit added to the adopted error,
            ``"reject"`` drops it.  Too-fast replies are always
            rejected — there is no error inflation that makes data
            *younger*.
        slack: Absolute measurement slack in seconds applied to both
            comparisons.
    """

    def __init__(
        self, delta: float, *, mode: str = "widen", slack: float = 1e-4
    ) -> None:
        if mode not in ("widen", "reject"):
            raise ValueError(f"mode must be 'widen' or 'reject', got {mode!r}")
        if slack < 0:
            raise ValueError(f"slack must be non-negative, got {slack}")
        self.delta = float(delta)
        self.mode = mode
        self.slack = float(slack)
        # (outbound, inbound) → (floor - slack, ceiling + slack): the
        # thresholds are pure functions of the model pair, and the guard
        # judges every reply of a conversation against the same pair.
        self._thresholds: dict = {}

    def judge(
        self,
        rtt_local: float,
        outbound: Optional[DelayModel],
        inbound: Optional[DelayModel],
    ) -> DelayVerdict:
        """Judge one reply's locally measured round trip.

        Args:
            rtt_local: The round trip measured on the local clock.
            outbound: Declared delay model of the request leg (None when
                the link's physics are unknown — the guard then passes).
            inbound: Declared delay model of the reply leg.
        """
        if outbound is None or inbound is None:
            return _OK
        pair = (outbound, inbound)
        thresholds = self._thresholds.get(pair)
        if thresholds is None:
            floor = (outbound.minimum + inbound.minimum) * (1.0 - self.delta)
            ceiling = (outbound.bound + inbound.bound) * (1.0 + self.delta)
            thresholds = (floor - self.slack, ceiling + self.slack, ceiling)
            self._thresholds[pair] = thresholds
        low, high, ceiling = thresholds
        if rtt_local < low:
            return _TOO_FAST
        if rtt_local > high:
            if self.mode == "reject":
                return _BEYOND_BOUND
            # Tolerate, but charge the unexplained transit to the error
            # budget: the (1+δ)·rtt inflation already covers the measured
            # trip, so the *excess* over the declared bound is added once
            # more — a residual asymmetric shift up to the excess cannot
            # take truth outside the adopted interval.
            return DelayVerdict("ok", widen=rtt_local - ceiling)
        return _OK
