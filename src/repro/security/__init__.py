"""On-path adversary hardening: authenticated, replay-safe sync messages.

Every robustness layer below this one assumes messages arrive as sent —
the Byzantine subsystem defends against servers that lie about their own
clocks, but nothing defended the wire.  This package closes that gap:

* :mod:`~repro.security.auth` — keyed-MAC authentication over a
  canonical encoding of the wire messages, with a rotating per-cluster
  keyring.
* :mod:`~repro.security.replay` — per-peer nonce replay guard with a
  bounded acceptance window.
* :mod:`~repro.security.delayguard` — delay-attack detection against
  the link's declared :class:`~repro.network.delay.DelayModel` physics,
  widening the adopted interval when a suspect transit is tolerated.
* :mod:`~repro.security.server` — the :class:`AuthenticatedTimeServer`
  / :class:`AuthenticatedByzantineServer` composition wiring the three
  guards into the hardened/Byzantine validation and quarantine stack.
"""

from .auth import (
    AuthVerdict,
    Keyring,
    MessageAuthenticator,
    canonical_decode,
    canonical_encode,
)
from .delayguard import DelayGuard, DelayVerdict
from .replay import ReplayGuard, ReplayVerdict
from .server import (
    AuthenticatedByzantineServer,
    AuthenticatedTimeServer,
    SecurityConfig,
    SecurityStats,
)

__all__ = [
    "AuthVerdict",
    "AuthenticatedByzantineServer",
    "AuthenticatedTimeServer",
    "DelayGuard",
    "DelayVerdict",
    "Keyring",
    "MessageAuthenticator",
    "ReplayGuard",
    "ReplayVerdict",
    "SecurityConfig",
    "SecurityStats",
    "canonical_decode",
    "canonical_encode",
]
