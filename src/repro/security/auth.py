"""Keyed-MAC message authentication over a canonical wire encoding.

The simulator's messages are in-memory dataclasses, so "authentication"
here means exactly what it would over a real socket: a deterministic
byte encoding of every semantic field, a keyed-BLAKE2b tag (RFC 7693's
built-in MAC mode — one C call, ~3× cheaper than two-pass HMAC) over
those bytes keyed from a per-cluster keyring, and a verdict lattice
(``ok`` / ``missing-auth`` / ``unknown-key`` / ``bad-mac``) the server
layer maps onto its quarantine machinery.

The canonical encoding is built for the hot path (every wire message is
signed and verified): variable-length strings are netstring-framed
(``len:bytes``, self-delimiting, so no byte of a name can masquerade as
a separator), floats are fixed-width IEEE-754 doubles via ``struct``
(exact — no shortest-repr work), and the fields that are constant per
conversation (names, kind, status) form a cached prefix so steady-state
encoding only formats the per-message tail.  :func:`canonical_decode`
inverts it, which the property suite uses to prove the encoding is
injective on the message space: any single-byte change to the encoding
is a different message, and the MAC covers every byte.

Keys live in a :class:`Keyring`: numbered keys, one active signing key,
rotation retaining old keys for verification (messages in flight across
a rotation still verify), and explicit retirement for compromised ids.
"""

from __future__ import annotations

import ast
import hashlib
import hmac
import struct
from typing import Dict, Optional, Tuple, Union

from ..service.messages import ReplyStatus, RequestKind, TimeReply, TimeRequest

__all__ = [
    "AuthVerdict",
    "Keyring",
    "MessageAuthenticator",
    "canonical_decode",
    "canonical_encode",
]

#: Hex characters kept from the 128-bit keyed-BLAKE2b tag (the wire
#: budget of a real packet MAC, far beyond the simulator's needs).
MAC_HEX_LENGTH = 32

Message = Union[TimeRequest, TimeReply]

#: Verdict strings returned by :meth:`MessageAuthenticator.verify`.
AuthVerdict = str


#: Fixed-width tail of a reply encoding: clock_value, error, δ, retry_after.
_REPLY_TAIL = struct.Struct("<dddd")

#: Per-conversation prefix cache (the constant fields of a message
#: stream).  Bounded: cleared wholesale when adversarial/randomized
#: traffic (e.g. the property suite) floods it with one-shot prefixes.
_PREFIX_CACHE: Dict[tuple, bytes] = {}
_PREFIX_CACHE_MAX = 4096


def _netstr(value: str) -> bytes:
    raw = value.encode("utf-8")
    return b"%d:%s" % (len(raw), raw)


def _cache_prefix(key: tuple, prefix: bytes) -> bytes:
    if len(_PREFIX_CACHE) >= _PREFIX_CACHE_MAX:
        _PREFIX_CACHE.clear()
    _PREFIX_CACHE[key] = prefix
    return prefix


def canonical_encode(message: Message) -> bytes:
    """The canonical byte encoding of a message, excluding ``auth``.

    Every semantic field is included (the MAC must cover the nonce, the
    routing names, and the payload alike); the ``auth`` tag itself is
    excluded so signing is well-defined.
    """
    if type(message) is TimeRequest:
        key = ("Q", message.origin, message.destination, message.kind)
        prefix = _PREFIX_CACHE.get(key)
        if prefix is None:
            prefix = _cache_prefix(
                key,
                b"Q|"
                + _netstr(message.origin)
                + _netstr(message.destination)
                + _netstr(message.kind.value),
            )
        return prefix + b"|%d|%d" % (message.request_id, message.nonce)
    if type(message) is TimeReply:
        key = (
            "P",
            message.server,
            message.destination,
            message.kind,
            message.status,
            message.verdicts,
            message.epoch,
        )
        prefix = _PREFIX_CACHE.get(key)
        if prefix is None:
            prefix = _cache_prefix(
                key,
                b"P|"
                + _netstr(message.server)
                + _netstr(message.destination)
                + _netstr(message.kind.value)
                + _netstr(message.status.value)
                + _netstr(repr(tuple(message.verdicts)))
                + b"|%d" % message.epoch,
            )
        return (
            prefix
            + b"|%d|%d|" % (message.request_id, message.nonce)
            + _REPLY_TAIL.pack(
                message.clock_value,
                message.error,
                message.delta,
                message.retry_after,
            )
        )
    raise TypeError(f"cannot encode {type(message).__name__}")


def _take_netstr(encoded: bytes, pos: int) -> Tuple[str, int]:
    colon = encoded.index(b":", pos)
    length = int(encoded[pos:colon])
    if length < 0:
        raise ValueError("negative netstring length")
    end = colon + 1 + length
    if end > len(encoded):
        raise ValueError("truncated netstring")
    return encoded[colon + 1 : end].decode("utf-8"), end


def canonical_decode(encoded: bytes) -> Message:
    """Invert :func:`canonical_encode` (the ``auth`` field comes back empty).

    Raises:
        ValueError: If the bytes are not a canonical message encoding.
    """
    try:
        return _decode(encoded)
    except ValueError:
        raise
    except Exception as exc:  # index/struct/unicode/enum errors → malformed
        raise ValueError(f"not a canonical encoding: {exc}") from exc


def _decode(encoded: bytes) -> Message:
    if encoded[:2] == b"Q|":
        origin, pos = _take_netstr(encoded, 2)
        destination, pos = _take_netstr(encoded, pos)
        kind, pos = _take_netstr(encoded, pos)
        blank, request_id, nonce = encoded[pos:].split(b"|")
        if blank:
            raise ValueError("malformed request tail")
        return TimeRequest(
            request_id=int(request_id),
            origin=origin,
            destination=destination,
            kind=RequestKind(kind),
            nonce=int(nonce),
        )
    if encoded[:2] == b"P|":
        server, pos = _take_netstr(encoded, 2)
        destination, pos = _take_netstr(encoded, pos)
        kind, pos = _take_netstr(encoded, pos)
        status, pos = _take_netstr(encoded, pos)
        verdicts_repr, pos = _take_netstr(encoded, pos)
        verdicts = ast.literal_eval(verdicts_repr)
        if not isinstance(verdicts, tuple):
            raise ValueError("verdicts field is not a tuple")
        tail = encoded[pos:]
        head, floats = tail[: -_REPLY_TAIL.size], tail[-_REPLY_TAIL.size :]
        blank, epoch, request_id, nonce, trailer = head.split(b"|")
        if blank or trailer:
            raise ValueError("malformed reply tail")
        clock_value, error, delta, retry_after = _REPLY_TAIL.unpack(floats)
        return TimeReply(
            request_id=int(request_id),
            server=server,
            destination=destination,
            clock_value=clock_value,
            error=error,
            kind=RequestKind(kind),
            delta=delta,
            epoch=int(epoch),
            verdicts=verdicts,
            status=ReplyStatus(status),
            retry_after=retry_after,
            nonce=int(nonce),
        )
    raise ValueError(f"not a canonical encoding: bad tag {encoded[:2]!r}")


class Keyring:
    """The cluster's shared MAC keys: numbered, rotated, retireable.

    Args:
        keys: Initial ``{key_id: secret bytes}`` map; must be non-empty.
        active_id: The signing key's id (defaults to the highest id).
    """

    def __init__(
        self, keys: Dict[int, bytes], active_id: Optional[int] = None
    ) -> None:
        if not keys:
            raise ValueError("a keyring needs at least one key")
        self._keys = dict(keys)
        self.active_id = max(keys) if active_id is None else active_id
        if self.active_id not in self._keys:
            raise ValueError(f"active key {self.active_id} not in keyring")
        #: Counts rotations — exported as the key-epoch gauge.
        self.epoch = 0

    @classmethod
    def from_secret(cls, secret: str, *, cluster: str = "repro") -> "Keyring":
        """A one-key ring derived deterministically from a shared secret."""
        key = hashlib.sha256(f"{cluster}|{secret}|1".encode("utf-8")).digest()
        return cls({1: key})

    def key(self, key_id: int) -> Optional[bytes]:
        """The secret for ``key_id``, or None when unknown/retired."""
        return self._keys.get(key_id)

    @property
    def active_key(self) -> bytes:
        return self._keys[self.active_id]

    @property
    def key_ids(self) -> tuple:
        return tuple(sorted(self._keys))

    def rotate(self, new_key: Optional[bytes] = None) -> int:
        """Install a fresh signing key; old keys stay valid for verify.

        Returns:
            The new active key id.
        """
        new_id = max(self._keys) + 1
        if new_key is None:
            # Deterministic forward derivation — good enough for the
            # simulator (a deployment would distribute fresh randomness).
            new_key = hashlib.sha256(
                b"rotate|%d|" % new_id + self._keys[self.active_id]
            ).digest()
        self._keys[new_id] = new_key
        self.active_id = new_id
        self.epoch += 1
        return new_id

    def retire(self, key_id: int) -> None:
        """Drop a (compromised) key; messages signed with it stop verifying.

        Raises:
            ValueError: When retiring the active signing key.
        """
        if key_id == self.active_id:
            raise ValueError("cannot retire the active signing key")
        self._keys.pop(key_id, None)


def _with_auth(message: Message, auth: tuple) -> Message:
    """A copy of ``message`` with ``auth`` swapped — the hot-path version
    of ``dataclasses.replace`` (which re-runs ``__init__`` and costs an
    order of magnitude more; signing is per message on the hot path).
    """
    clone = object.__new__(type(message))
    clone.__dict__.update(message.__dict__)
    clone.__dict__["auth"] = auth
    return clone


class MessageAuthenticator:
    """Signs and verifies messages against a shared :class:`Keyring`.

    One instance per server; the signing sequence number is per-instance
    (it feeds the receiver's replay guard, so two servers must never
    share a sequence).  Tags are keyed BLAKE2b (one C call), so the hot
    path is a single hash pass over the payload.
    """

    def __init__(self, keyring: Keyring) -> None:
        self.keyring = keyring
        self._seq = 0

    def _mac(self, key_id: int, seq: int, payload: bytes) -> Optional[str]:
        key = self.keyring.key(key_id)
        if key is None:
            return None  # unknown or retired key
        return hashlib.blake2b(
            b"%s|%d|%d" % (payload, key_id, seq),
            key=key,
            digest_size=MAC_HEX_LENGTH // 2,
        ).hexdigest()

    def sign(self, message: Message) -> Message:
        """The message with a fresh ``(key_id, seq, mac)`` tag attached."""
        self._seq += 1
        key_id = self.keyring.active_id
        # canonical_encode never reads ``auth``, so signing needs no
        # auth-stripped intermediate copy.
        mac = self._mac(key_id, self._seq, canonical_encode(message))
        assert mac is not None  # the active key always exists
        return _with_auth(message, (key_id, self._seq, mac))

    def verify(self, message: Message) -> AuthVerdict:
        """``"ok"``, ``"missing-auth"``, ``"unknown-key"``, or ``"bad-mac"``."""
        auth = message.auth
        if (
            not isinstance(auth, tuple)
            or len(auth) != 3
            or not isinstance(auth[0], int)
            or not isinstance(auth[1], int)
            or not isinstance(auth[2], str)
        ):
            return "missing-auth"
        key_id, seq, claimed = auth
        expected = self._mac(key_id, seq, canonical_encode(message))
        if expected is None:
            return "unknown-key"
        if not hmac.compare_digest(expected, claimed):
            return "bad-mac"
        return "ok"
