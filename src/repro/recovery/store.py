"""A simulated stable store for server checkpoints.

The paper's servers are memoryless across a crash: a restarted server has
no principled error bound and must be operator-set (the rejoin path).  The
recovery subsystem gives each server a *checkpoint* — the MM-1 state
``<C, E, rate estimate, epoch>`` — written periodically to a simulated
stable store.  On restart the interval is rebuilt from the checkpoint by
inflating the recorded ``E`` by ``ρ·downtime`` (with ``ρ`` the larger of
the claimed δ and the measured own-rate estimate), which preserves
Theorem 1 correctness through the outage: the clock drifted at most
``ρ`` per local second while the server was down, so the inflated
interval still contains true time.

Real disks fail in undignified ways, so the store models the two classic
hazards checkpointing code must survive:

* **corruption** — bits rot in place; :meth:`StableStore.corrupt` garbles
  a stored payload;
* **torn writes** — the machine dies mid-write; :meth:`StableStore.tear`
  arms the next write to persist only a prefix of the record.

Both are caught the same way: every slot carries a CRC over the full
canonical payload, and :meth:`StableStore.read` returns None on any
mismatch, forcing the restarting server into the cold-start bootstrap
(operator-set error) instead of silently trusting garbage.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class Checkpoint:
    """One durable snapshot of a server's synchronization state.

    Attributes:
        server: The checkpointing server's name.
        clock_value: ``C_i`` at the instant of the write.
        error: ``E_i`` at the instant of the write (the *effective* rule
            MM-1 error, not the inherited ε — restart re-bases ``r_i``).
        rate_estimate: The server's best own-skew estimate at write time
            (0.0 when unknown); restart inflates by
            ``max(δ, |rate_estimate|)`` per local second of downtime so a
            clock known to run outside its claimed bound is still covered.
        epoch: The server's consistency-group epoch (see
            :mod:`repro.recovery.stabilizer`).
        sequence: Monotone per-server write counter — a restart can tell
            which of two surviving checkpoints is newer.
        reputation: The Byzantine reputation tracker's serialised state
            (see :meth:`~repro.byzantine.reputation.ReputationTracker.
            encode`); empty for servers without one.  Carried so a warm
            restart does not re-trust a known liar.
        fault_budget: The adaptive fault budget at write time (0 when the
            server runs no budget controller).
        discipline: The clock-discipline servo's serialised state (rate
            correction plus the per-neighbour rate-estimator windows; see
            :meth:`~repro.holdover.server.HoldoverServer.
            _checkpoint_extras`); empty for servers without one.  Carried
            so a warm restart resumes holdover-quality timekeeping
            instead of relearning the oscillator from scratch.
    """

    server: str
    clock_value: float
    error: float
    rate_estimate: float
    epoch: int
    sequence: int
    reputation: str = ""
    fault_budget: int = 0
    discipline: str = ""

    def encode(self) -> str:
        """Canonical payload the checksum is computed over."""
        return "|".join(
            [
                self.server,
                repr(self.clock_value),
                repr(self.error),
                repr(self.rate_estimate),
                repr(self.epoch),
                repr(self.sequence),
                self.reputation,
                repr(self.fault_budget),
                self.discipline,
            ]
        )

    @classmethod
    def decode(cls, payload: str) -> "Checkpoint":
        """Inverse of :meth:`encode`.

        Raises:
            ValueError: If the payload does not parse (a torn or corrupted
                record that happens to still checksum is caught here).

        Accepts both the current 9-field layout and the legacy 8-field one
        (pre-discipline checkpoints survive an upgrade as warm restarts).
        """
        parts = payload.split("|")
        if len(parts) not in (8, 9):
            raise ValueError(f"malformed checkpoint payload: {payload!r}")
        return cls(
            server=parts[0],
            clock_value=float(parts[1]),
            error=float(parts[2]),
            rate_estimate=float(parts[3]),
            epoch=int(parts[4]),
            sequence=int(parts[5]),
            reputation=parts[6],
            fault_budget=int(parts[7]),
            discipline=parts[8] if len(parts) == 9 else "",
        )


@dataclass
class StoreStats:
    """What the store observed (per whole store, for tests and reports)."""

    writes: int = 0
    torn_writes: int = 0
    reads: int = 0
    read_hits: int = 0
    read_misses: int = 0  # no slot for the server
    checksum_failures: int = 0
    decode_failures: int = 0


@dataclass
class _Slot:
    """One server's stored record: payload plus its checksum at write time."""

    payload: str
    crc: int


class StableStore:
    """An in-memory simulated stable store, one checkpoint slot per server.

    A single store instance is shared by every server of a service (the
    builder creates one), modelling per-server local disks with a common
    failure model; slots are independent, so corrupting one server's
    checkpoint never touches another's.
    """

    def __init__(self) -> None:
        self._slots: Dict[str, _Slot] = {}
        self._torn: Dict[str, bool] = {}
        self.stats = StoreStats()

    # -------------------------------------------------------------- writing

    def write(self, checkpoint: Checkpoint) -> None:
        """Persist a checkpoint, honouring an armed torn write.

        A torn write stores only a prefix of the payload while the CRC was
        computed over the full record — exactly the inconsistency a crash
        mid-write leaves on disk, and what the read-side checksum exists
        to catch.
        """
        payload = checkpoint.encode()
        crc = zlib.crc32(payload.encode("utf-8"))
        self.stats.writes += 1
        if self._torn.pop(checkpoint.server, False):
            self.stats.torn_writes += 1
            payload = payload[: max(1, len(payload) // 2)]
        self._slots[checkpoint.server] = _Slot(payload=payload, crc=crc)

    # -------------------------------------------------------------- reading

    def read(self, server: str) -> Optional[Checkpoint]:
        """The server's last durable checkpoint, or None.

        None means *no usable checkpoint*: nothing was ever written, the
        record fails its checksum (torn write or corruption), or it
        checksums but does not parse.  Callers must treat None as "cold
        start required".
        """
        self.stats.reads += 1
        slot = self._slots.get(server)
        if slot is None:
            self.stats.read_misses += 1
            return None
        if zlib.crc32(slot.payload.encode("utf-8")) != slot.crc:
            self.stats.checksum_failures += 1
            return None
        try:
            checkpoint = Checkpoint.decode(slot.payload)
        except ValueError:
            self.stats.decode_failures += 1
            return None
        self.stats.read_hits += 1
        return checkpoint

    def has_slot(self, server: str) -> bool:
        """Whether anything (valid or not) is stored for ``server``."""
        return server in self._slots

    # ------------------------------------------------------------ sabotage

    def corrupt(self, server: str) -> bool:
        """Garble the stored payload in place (bit rot).

        Returns True if there was a slot to corrupt.  The CRC is left at
        its write-time value, so the next read fails its checksum.
        """
        slot = self._slots.get(server)
        if slot is None:
            return False
        flipped = chr(ord(slot.payload[0]) ^ 0x20) + slot.payload[1:]
        slot.payload = flipped
        return True

    def tear(self, server: str) -> None:
        """Arm the *next* write for ``server`` to be torn (crash mid-write)."""
        self._torn[server] = True

    def wipe(self, server: str) -> None:
        """Discard the server's slot entirely (disk replaced)."""
        self._slots.pop(server, None)
        self._torn.pop(server, None)
