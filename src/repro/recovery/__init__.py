"""Crash-recovery and self-stabilizing consistency-group repair.

Three layers on top of the paper's Section 3 rule:

* :mod:`~repro.recovery.store` — durable checkpoints with corruption and
  torn-write detection, so a crashed server can rebuild a *correct*
  interval instead of cold-starting;
* :mod:`~repro.recovery.census` — an online, gossip-fed consistency
  census that spots the Figure 4 partition while the run is live;
* :mod:`~repro.recovery.stabilizer` — consonance-vetted, census-backed,
  epoch-numbered arbiter selection with merge hysteresis, replacing
  "any third server" so partitioned groups re-merge instead of
  re-poisoning each other.

:class:`~repro.recovery.server.SelfStabilizingServer` wires all three
into the polling server; the builder enables it per-spec with
``ServerSpec(self_stabilizing=True)``.
"""

from __future__ import annotations

from .census import CensusEntry, ConsistencyCensus
from .server import RestartReport, SelfStabilizingServer
from .stabilizer import (
    SelfStabilizingRecovery,
    StabilizerConfig,
    StabilizerStats,
)
from .store import Checkpoint, StableStore, StoreStats

__all__ = [
    "CensusEntry",
    "Checkpoint",
    "ConsistencyCensus",
    "RestartReport",
    "SelfStabilizingRecovery",
    "SelfStabilizingServer",
    "StabilizerConfig",
    "StabilizerStats",
    "StableStore",
    "StoreStats",
]
