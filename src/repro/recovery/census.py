"""An online consistency census, gossip-fed over poll replies.

The analysis layer (:mod:`repro.analysis.consistency_graph`) can show the
Figure 4 partition *post hoc*, from an oracle snapshot of every interval.
A live server has no oracle: it only learns, one poll round at a time,
whether each neighbour's reply intersected its own interval.  The census
turns those local verdicts into an approximate global consistency graph:

* every poll reply a server judges yields a **direct verdict**
  ``(me, neighbour, ok)``;
* every reply a server *sends* piggybacks its current fresh verdicts as
  ``(observer, subject, ok, age)`` quadruples, so verdicts gossip across
  the topology (a server two hops from a conflict still learns about it);
* verdicts expire after a freshness ``horizon`` of local-clock seconds —
  the census describes the *current* grouping, not history.  Ages ride
  along in the gossip and accumulate across relays, so a verdict cannot
  circulate forever.

Clock-rate caveat: ages are exchanged in the sender's local seconds and
re-anchored on the receiver's clock.  With drift rates of order δ the
error this introduces in a freshness comparison is ``O(δ·horizon)`` —
microseconds against horizons of minutes — so the census deliberately
ignores it.

From the assembled verdicts a server can ask for the consistency groups
(maximal cliques, exactly as the analysis layer computes them), whether
the service looks partitioned, and the **support** a candidate arbiter
enjoys: the fraction of fresh census edges touching the candidate that
are consistent.  The stabilizer (:mod:`repro.recovery.stabilizer`) vets
arbiters on that support instead of trusting "any third server".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

# Wire form of one gossiped verdict: (observer, subject, ok, age_seconds).
CensusTriple = Tuple[str, str, bool, float]


@dataclass(frozen=True)
class CensusEntry:
    """One pairwise verdict as currently known to the holding server.

    Attributes:
        observer: The server that judged the pair.
        subject: The server it judged.
        ok: Whether the observer found the subject consistent with itself.
        stamp: Holder-local clock value at which the verdict was current
            (for relayed verdicts: merge time minus the carried age).
        direct: Whether the holder observed this verdict itself, as
            opposed to learning it via gossip.
    """

    observer: str
    subject: str
    ok: bool
    stamp: float
    direct: bool


class ConsistencyCensus:
    """The gossip-fed pairwise-consistency state of one server.

    Args:
        owner: The holding server's name (its own verdicts are *direct*).
        horizon: Freshness horizon in holder-local clock seconds; verdicts
            older than this are ignored and not re-gossiped.
    """

    def __init__(self, owner: str, horizon: float = 600.0) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.owner = owner
        self.horizon = float(horizon)
        self._entries: Dict[Tuple[str, str], CensusEntry] = {}

    # ------------------------------------------------------------- feeding

    def observe(self, subject: str, ok: bool, now_local: float) -> None:
        """Record a direct verdict: the owner judged ``subject`` just now."""
        self._entries[(self.owner, subject)] = CensusEntry(
            observer=self.owner,
            subject=subject,
            ok=ok,
            stamp=now_local,
            direct=True,
        )

    def merge(self, triples: Iterable[CensusTriple], now_local: float) -> int:
        """Fold gossiped verdicts in; returns how many were accepted.

        A relayed verdict is re-anchored at ``now_local - age`` and only
        replaces what the owner already knows when it is *fresher* — in
        particular it never clobbers a newer direct observation, and an
        already-expired relay is dropped on arrival.
        """
        accepted = 0
        for observer, subject, ok, age in triples:
            if observer == self.owner:
                continue  # our own verdicts round-tripped; direct state wins
            stamp = now_local - max(0.0, age)
            if now_local - stamp > self.horizon:
                continue
            key = (observer, subject)
            existing = self._entries.get(key)
            if existing is not None and existing.stamp >= stamp:
                continue
            self._entries[key] = CensusEntry(
                observer=observer,
                subject=subject,
                ok=ok,
                stamp=stamp,
                direct=False,
            )
            accepted += 1
        return accepted

    # ------------------------------------------------------------ exporting

    def fresh_entries(self, now_local: float) -> List[CensusEntry]:
        """Every verdict still inside the freshness horizon."""
        return [
            entry
            for entry in self._entries.values()
            if now_local - entry.stamp <= self.horizon
        ]

    def export(self, now_local: float) -> Tuple[CensusTriple, ...]:
        """The fresh verdicts in wire form, ready to piggyback on a reply."""
        return tuple(
            (entry.observer, entry.subject, entry.ok, now_local - entry.stamp)
            for entry in sorted(
                self.fresh_entries(now_local),
                key=lambda e: (e.observer, e.subject),
            )
        )

    # ------------------------------------------------------------- queries

    def edge_verdicts(self, now_local: float) -> Dict[frozenset, bool]:
        """Collapse fresh verdicts to per-pair booleans.

        A pair is judged consistent only when every fresh verdict about it
        (either direction, any observer) says so: consistency is symmetric
        in truth, so one fresh "inconsistent" from either side condemns
        the edge even if the other side's older view disagreed.
        """
        verdicts: Dict[frozenset, bool] = {}
        for entry in self.fresh_entries(now_local):
            pair = frozenset((entry.observer, entry.subject))
            if len(pair) != 2:
                continue
            verdicts[pair] = verdicts.get(pair, True) and entry.ok
        return verdicts

    def groups(
        self, nodes: Iterable[str], now_local: float
    ) -> List[tuple[str, ...]]:
        """The consistency groups implied by the fresh census.

        Maximal cliques of the verdict graph, exactly as the analysis
        layer computes them from oracle intervals — largest first.  Nodes
        without any fresh edge appear as singleton groups.
        """
        # Imported here, not at module top: the analysis package pulls in
        # the service builder, which builds recovery servers — a cycle.
        from ..analysis.consistency_graph import groups_from_verdicts

        edges = [
            tuple(sorted(pair))
            for pair, ok in self.edge_verdicts(now_local).items()
            if ok
        ]
        return groups_from_verdicts(nodes, edges)

    def partitioned(self, nodes: Iterable[str], now_local: float) -> bool:
        """Whether the fresh census shows more than one consistency group."""
        return len(self.groups(nodes, now_local)) > 1

    def support(
        self,
        candidate: str,
        now_local: float,
        exclude: Iterable[str] = (),
    ) -> Optional[float]:
        """The fraction of fresh census edges at ``candidate`` that are ok.

        Args:
            candidate: The prospective arbiter.
            now_local: The owner's current local clock value.
            exclude: Servers whose edges with the candidate are not
                counted — the stabilizer excludes the recovering server
                itself, since a server in the wrong group would otherwise
                vote down every good arbiter.

        Returns:
            ``ok_edges / total_edges`` over the counted pairs, or None
            when the census has no fresh edge for the candidate at all
            (the caller must then fall back to a censusless choice).
        """
        excluded = set(exclude)
        total = 0
        ok_count = 0
        for pair, ok in self.edge_verdicts(now_local).items():
            if candidate not in pair:
                continue
            (other,) = pair - {candidate}
            if other in excluded:
                continue
            total += 1
            if ok:
                ok_count += 1
        if total == 0:
            return None
        return ok_count / total

    def forget(self, subject: str) -> None:
        """Drop every verdict involving ``subject`` (it left the service)."""
        self._entries = {
            key: entry
            for key, entry in self._entries.items()
            if subject not in key
        }
