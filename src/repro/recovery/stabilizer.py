"""Self-stabilizing group-merge recovery (the repair for Figure 4).

The paper's Section 3 rule — reset unconditionally to *any* third server —
rests on "the probability of a third time server also being incorrect is
very small".  With two adjacent incorrect servers the rule adopts a liar,
the liars legitimise each other, and the service splits into consistency
groups that never re-merge: the ``partition`` experiment's endgame.

:class:`SelfStabilizingRecovery` keeps the reset rule but makes the
*choice* of third server earn its trust, using every diagnostic the rest
of the codebase already computes:

1. **Consonance veto** (Section 5): a neighbour whose measured separation
   rate provably exceeds ``δ_i + δ_j`` is never an arbiter.  (The bound
   server already folds its dissonant neighbours into the exclusion set;
   the veto here also covers configured remote arbiters.)
2. **Census majority**: a candidate must be consistent with a majority of
   the fresh census edges touching it — edges with the recovering server
   excluded, since a server stranded in the wrong group would otherwise
   vote down exactly the arbiters that could save it.  When the census
   has no fresh data on any candidate the strategy degrades gracefully to
   the (fixed) exclusion-based third-server choice.
3. **Epoch preference**: every merge bumps an epoch number that gossips
   on replies; among equally-supported candidates the one in the highest
   epoch — the most-recently-consolidated group — wins, so stragglers
   join the merged group instead of each other.
4. **Hysteresis**: after applying a merge the server holds off further
   recoveries for ``merge_hold`` local seconds, letting the new state
   propagate instead of ping-ponging between groups whose census views
   disagree for a round or two.

The strategy must be :meth:`bound <SelfStabilizingRecovery.bind>` to its
:class:`~repro.recovery.server.SelfStabilizingServer`; unbound it behaves
exactly like the fixed :class:`~repro.core.recovery.ThirdServerRecovery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..core.recovery import RecoveryStrategy


@dataclass(frozen=True)
class StabilizerConfig:
    """Tuning knobs for the self-stabilizing layer.

    Attributes:
        merge_hold: Hysteresis — local-clock seconds after an applied
            merge during which no further recovery is attempted.
        census_horizon: Freshness horizon of the consistency census, in
            local-clock seconds.
        min_support: A candidate arbiter's census support (fraction of
            fresh edges that are consistent) must *exceed* this.  0.5 is
            "consistent with a majority of the census".
        checkpoint_period: Local seconds between stable-store checkpoints
            (used by the server, carried here so one object configures
            the whole subsystem).
        checkpoint_stale_after: Local seconds of downtime beyond which a
            checkpoint is considered stale and restart falls back to the
            cold-start bootstrap (the inflated interval would be useless
            anyway: wider than any operator-set error).
        phase_limit: Herman-style phase clock bounding the hysteresis.
            Under perpetual churn merges recur faster than ``merge_hold``
            expires, so an unbounded hold can suppress a genuinely needed
            repair indefinitely; after this many *consecutive* held
            decisions the hold yields and the repair proceeds anyway,
            guaranteeing transient faults are repaired within a bounded
            number of inconsistent rounds regardless of churn.  0
            disables the phase clock (the pre-dynamic behaviour).
    """

    merge_hold: float = 240.0
    census_horizon: float = 600.0
    min_support: float = 0.5
    checkpoint_period: float = 30.0
    checkpoint_stale_after: float = 3600.0
    phase_limit: int = 4


@dataclass
class StabilizerStats:
    """What the vetting pipeline did (analysis and tests)."""

    held: int = 0  # decisions suppressed by merge hysteresis
    phase_repairs: int = 0  # holds overridden by the phase clock
    vetoed_dissonant: int = 0  # candidates removed by the consonance veto
    vetoed_falseticker: int = 0  # candidates removed by the reputation veto
    vetoed_support: int = 0  # candidates removed by census-majority vetting
    census_choices: int = 0  # arbiters chosen with census backing
    fallback_choices: int = 0  # arbiters chosen with no census data


class SelfStabilizingRecovery(RecoveryStrategy):
    """Consonance-vetted, census-supported, epoch-tie-broken recovery.

    Args:
        rng: Random stream for choice among fully-tied candidates.
        remote_servers: Optional other-network arbiters, as in
            :class:`~repro.core.recovery.ThirdServerRecovery`; they face
            the same vetting as neighbours.
        config: The stabilizer tuning knobs.
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        remote_servers: Sequence[str] = (),
        config: Optional[StabilizerConfig] = None,
    ) -> None:
        super().__init__()
        self._rng = rng
        self._remote = tuple(remote_servers)
        self.config = config if config is not None else StabilizerConfig()
        self.stabilizer_stats = StabilizerStats()
        self._server = None  # set by bind()
        self._held_streak = 0  # consecutive holds, for the phase clock

    def bind(self, server) -> None:
        """Attach the strategy to its server (census, rates, epochs)."""
        self._server = server

    # ------------------------------------------------------------- decision

    def choose_arbiter(
        self,
        server_name: str,
        neighbours: Sequence[str],
        conflicting: Iterable[str],
    ) -> Optional[str]:
        banned = set(conflicting) | {server_name}
        candidates = [name for name in self._remote if name not in banned]
        candidates += [
            name
            for name in neighbours
            if name not in banned and name not in candidates
        ]
        if not candidates:
            self.stats.no_arbiter += 1
            return None
        server = self._server
        if server is None:
            return self._pick(candidates)

        # Hysteresis: a freshly merged server lets the dust settle — but
        # bounded by a Herman-style phase clock.  Under perpetual churn
        # the hold window keeps restarting (merges never stop), so
        # without the pulse a transient fault arriving just after a merge
        # could go unrepaired for the whole window; after ``phase_limit``
        # consecutive holds the repair proceeds anyway.
        now_local = server.clock_value()
        if (
            server.last_merge_local is not None
            and now_local - server.last_merge_local < self.config.merge_hold
        ):
            self._held_streak += 1
            if (
                self.config.phase_limit <= 0
                or self._held_streak < self.config.phase_limit
            ):
                self.stabilizer_stats.held += 1
                return None
            self.stabilizer_stats.phase_repairs += 1
        self._held_streak = 0

        # Consonance veto (covers remote arbiters the server's own
        # exclusion widening cannot reach).
        dissonant = set(server.dissonant_neighbours())
        vetted = [name for name in candidates if name not in dissonant]
        self.stabilizer_stats.vetoed_dissonant += len(candidates) - len(vetted)
        if not vetted:
            self.stats.no_arbiter += 1
            return None

        # Falseticker veto: a neighbour the reputation tracker currently
        # classifies as lying is never an arbiter — the paper's
        # unconditional reset would adopt the lie wholesale, and census
        # majorities lag (a liar's gossiped verdicts can keep it looking
        # supported for a horizon).  Stronger than census vetting, so it
        # runs first and unconditionally.
        flagged = set(getattr(server, "falseticker_neighbours", tuple)())
        if flagged:
            survivors = [name for name in vetted if name not in flagged]
            self.stabilizer_stats.vetoed_falseticker += len(vetted) - len(
                survivors
            )
            vetted = survivors
            if not vetted:
                self.stats.no_arbiter += 1
                return None

        # Census-majority vetting.  Edges with the recovering server are
        # excluded from the support count: we *know* we conflict with
        # someone, and a server in the minority group would otherwise
        # veto every arbiter from the majority.
        scored: list[tuple[float, int, str]] = []
        censusless: list[str] = []
        for name in vetted:
            support = server.census.support(
                name, now_local, exclude=(server_name,)
            )
            if support is None:
                censusless.append(name)
            elif support > self.config.min_support:
                scored.append((support, server.epoch_of(name), name))
            else:
                self.stabilizer_stats.vetoed_support += 1
        if scored:
            # Highest support, then highest epoch; rng among exact ties.
            scored.sort(key=lambda item: (-item[0], -item[1], item[2]))
            best_support, best_epoch, _ = scored[0]
            tied = [
                name
                for support, epoch, name in scored
                if support == best_support and epoch == best_epoch
            ]
            self.stabilizer_stats.census_choices += 1
            return self._pick(tied)
        if censusless:
            # No census data at all on the survivors: degrade to the
            # exclusion-based third-server rule over them.
            self.stabilizer_stats.fallback_choices += 1
            return self._pick(censusless)
        self.stats.no_arbiter += 1
        return None

    def _pick(self, pool: Sequence[str]) -> str:
        if self._rng is None or len(pool) == 1:
            return pool[0]
        return pool[int(self._rng.integers(len(pool)))]
