"""A time server with durable state, a live census, and merge epochs.

:class:`SelfStabilizingServer` is the integration point of the recovery
subsystem.  On top of :class:`~repro.service.rate_tracking.
RateTrackingServer` (whose Section 5 consonance machinery the stabilizer's
veto needs) it adds:

* **Checkpointing** — every ``checkpoint_period`` local seconds the MM-1
  state ``<C, E, rate estimate, epoch>`` goes to the shared
  :class:`~repro.recovery.store.StableStore`; a merge also checkpoints
  immediately, so the newly-adopted group survives a crash.
* **Crash/restart** — :meth:`crash` is an abrupt kill (no farewell
  protocol); :meth:`restart` rebuilds the interval from the checkpoint by
  inflating the stored ``E`` by ``max(δ, |rate estimate|)`` per local
  second of downtime.  The clock kept drifting while the server was down
  and the checkpoint interval contained true time when written, so the
  inflated interval still does — Theorem 1 carried through the outage.
  A missing, corrupt, torn, or stale checkpoint falls back to the
  cold-start bootstrap (the operator-set ``cold_error``), exactly like
  the paper's rejoin path.  Every restart appends a
  :class:`RestartReport` recording whether the rebuilt interval was
  actually correct at revival (oracle check, for experiments and tests).
* **Census** — each judged poll reply feeds a direct verdict into the
  :class:`~repro.recovery.census.ConsistencyCensus`; outgoing replies
  piggyback the fresh census (gossip) and the server's merge epoch.
* **Epochs** — a counter bumped on every applied merge (recovery reset),
  adopting ``max(own, arbiter's) + 1`` so epoch order tracks "how
  recently consolidated" a group is; the stabilizer breaks ties on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.sync import Reply
from ..service.messages import TimeReply
from ..service.rate_tracking import RateTrackingServer
from .census import ConsistencyCensus
from .stabilizer import StabilizerConfig
from .store import Checkpoint, StableStore


@dataclass(frozen=True)
class RestartReport:
    """What one restart did, scored by the oracle at the instant of revival.

    Attributes:
        server: The restarting server.
        at: True (simulation) time of the restart.
        warm: True when the interval was rebuilt from a checkpoint,
            False on a cold-start bootstrap.
        downtime_local: Local-clock seconds between the last checkpoint
            and the restart (0.0 for cold starts).
        rebuilt_error: The ``ε`` the server came back with.
        correct: Whether the rebuilt interval contained true time at
            revival — the acceptance oracle for warm restarts.
    """

    server: str
    at: float
    warm: bool
    downtime_local: float
    rebuilt_error: float
    correct: bool


class SelfStabilizingServer(RateTrackingServer):
    """A rate-tracking server wired into the recovery subsystem.

    Accepts all :class:`RateTrackingServer` arguments plus:

    Args:
        store: The shared simulated stable store (one per service).
        stabilizer_config: Subsystem knobs; also consumed by a bound
            :class:`~repro.recovery.stabilizer.SelfStabilizingRecovery`.
            Defaults to :class:`StabilizerConfig`'s defaults.
    """

    def __init__(
        self,
        *args,
        store: StableStore,
        stabilizer_config: Optional[StabilizerConfig] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._store = store
        self._config = (
            stabilizer_config if stabilizer_config is not None else StabilizerConfig()
        )
        self.census = ConsistencyCensus(
            owner=self.name, horizon=self._config.census_horizon
        )
        self.epoch = 0
        self.last_merge_local: Optional[float] = None
        self.restart_reports: List[RestartReport] = []
        self._neighbour_epochs: Dict[str, int] = {}
        self._checkpoint_seq = 0
        self._pending_arbiter_epoch: Optional[int] = None
        # A bindable strategy (SelfStabilizingRecovery) gets its server.
        bind = getattr(self.recovery, "bind", None)
        if callable(bind):
            bind(self)

    @property
    def stabilizer_config(self) -> StabilizerConfig:
        """The subsystem configuration this server runs with."""
        return self._config

    def epoch_of(self, neighbour: str) -> int:
        """The neighbour's last gossiped merge epoch (0 when unheard)."""
        return self._neighbour_epochs.get(neighbour, 0)

    # ------------------------------------------------------------ lifecycle

    def on_start(self) -> None:
        super().on_start()
        self._schedule_checkpoints()

    def _schedule_checkpoints(self) -> None:
        self.every(
            self._config.checkpoint_period,
            self._write_checkpoint,
            first_at=self.now + self._config.checkpoint_period,
        )

    def rejoin(self, initial_error: float) -> None:
        was_departed = self.departed
        super().rejoin(initial_error)
        # leave()/crash() cancelled every periodic task, including the
        # checkpointer; polling is re-armed by the base rejoin, the
        # checkpointer here.
        if was_departed and not self.departed:
            self._schedule_checkpoints()

    # --------------------------------------------------------- checkpointing

    def _own_rate_estimate(self) -> float:
        """Best guess at the *local* oscillator's skew magnitude.

        The rate machinery measures separation against neighbours, not the
        local skew directly.  When the common-mode test says the local
        clock is the problem, the largest dissonant separation rate is a
        (conservative) bound on our own skew; otherwise the local clock is
        behaving and 0.0 — i.e. the claimed δ — is the right inflation.
        """
        if not self.self_suspect():
            return 0.0
        rates = [
            abs(report.estimate.rate)
            for report in self.rate_reports().values()
            if report.consonant is False and report.estimate is not None
        ]
        return max(rates, default=0.0)

    def _write_checkpoint(self) -> None:
        if self.departed:
            return
        value, error = self.report()
        self._checkpoint_seq += 1
        self._store.write(
            Checkpoint(
                server=self.name,
                clock_value=value,
                error=error,
                rate_estimate=self._own_rate_estimate(),
                epoch=self.epoch,
                sequence=self._checkpoint_seq,
                **self._checkpoint_extras(),
            )
        )
        self._trace("checkpoint", clock_value=value, error=error)
        self.telemetry.checkpoint(self.now)

    def _checkpoint_extras(self) -> dict:
        """Hook: extra :class:`Checkpoint` fields to persist.

        The base recovery server persists only the MM-1 state;
        :class:`~repro.byzantine.server.ByzantineTolerantServer` adds its
        reputation blob and fault budget here.
        """
        return {}

    def _restore_checkpoint_extras(self, checkpoint: Checkpoint) -> None:
        """Hook: restore the extras after a successful warm restart."""

    def falseticker_neighbours(self) -> tuple[str, ...]:
        """Neighbours currently classified falsetickers (none here).

        The stabilizer's arbiter vetting consults this on every recovery;
        the Byzantine server overrides it with its reputation verdicts.
        """
        return ()

    # --------------------------------------------------------- crash/restart

    def crash(self) -> None:
        """Abrupt kill: stop serving and polling; the clock keeps drifting.

        Unlike a graceful :meth:`leave`, a crash is what the checkpoint
        subsystem exists for — the last durable state is whatever the
        periodic checkpointer managed to persist.
        """
        if self.departed:
            return
        self._trace("crash")
        self.leave()

    def restart(self, cold_error: float) -> Optional[RestartReport]:
        """Come back from a crash, warm if the stable store allows it.

        Args:
            cold_error: The operator-set ε used when no usable checkpoint
                exists (missing, corrupt, torn, or stale) — the paper's
                original rejoin bootstrap.

        Returns:
            The :class:`RestartReport` for this revival, or None if the
            server was not down.
        """
        if not self.departed:
            return None
        checkpoint = self._store.read(self.name)
        now_local = self.clock.read(self.now)
        warm = False
        downtime_local = 0.0
        if checkpoint is not None:
            downtime_local = now_local - checkpoint.clock_value
            if 0.0 <= downtime_local <= self._config.checkpoint_stale_after:
                # ρ·downtime inflation: the clock drifted at most
                # max(δ, measured |skew|) per local second while down.
                rho = max(self.delta, abs(checkpoint.rate_estimate))
                rebuilt = checkpoint.error + downtime_local * rho
                self.rejoin(rebuilt)
                self.epoch = checkpoint.epoch
                self._restore_checkpoint_extras(checkpoint)
                warm = True
        if not warm:
            downtime_local = 0.0
            self.rejoin(cold_error)
        report = RestartReport(
            server=self.name,
            at=self.now,
            warm=warm,
            downtime_local=downtime_local,
            rebuilt_error=self.epsilon,
            correct=self.is_correct(),
        )
        self.restart_reports.append(report)
        self._trace(
            "restart",
            warm=warm,
            rebuilt_error=report.rebuilt_error,
            correct=report.correct,
        )
        self.telemetry.restart(self.now, warm)
        self.telemetry.epoch(self.epoch)
        return report

    # ------------------------------------------------------- census plumbing

    def _reply_extras(self) -> dict:
        now_local = self.clock_value()
        return {
            "epoch": self.epoch,
            "verdicts": self.census.export(now_local),
        }

    def _observe_reply(
        self, reply: TimeReply, rtt_local: float, local_now: float
    ) -> None:
        super()._observe_reply(reply, rtt_local, local_now)
        self._neighbour_epochs[reply.server] = reply.epoch
        self.census.merge(reply.verdicts, local_now)
        # Direct verdict: same consistency judgment the policies use —
        # the reply aged across its transit against the local interval.
        judged = Reply(
            server=reply.server,
            clock_value=reply.clock_value,
            error=reply.error,
            rtt_local=rtt_local,
        )
        ok = judged.transit_interval(self.delta).intersects(
            self.local_state().interval
        )
        self.census.observe(reply.server, ok, local_now)

    # ---------------------------------------------------------------- merges

    def _handle_recovery_reply(self, reply: TimeReply) -> None:
        self._pending_arbiter_epoch = reply.epoch
        self._neighbour_epochs[reply.server] = reply.epoch
        try:
            super()._handle_recovery_reply(reply)
        finally:
            self._pending_arbiter_epoch = None

    def _apply_reset(self, decision, kind: str) -> None:
        super()._apply_reset(decision, kind)
        if kind != "recovery":
            return
        peer_epoch = (
            self._pending_arbiter_epoch
            if self._pending_arbiter_epoch is not None
            else self.epoch
        )
        self.epoch = max(self.epoch, peer_epoch) + 1
        self.last_merge_local = self.clock_value()
        self.telemetry.merge(self.now, self.epoch)
        # A merge is a state the group must not lose to a crash.
        self._write_checkpoint()
