"""Shard synchronization helpers: digests and deterministic trace merging.

The shard driver's correctness story rests on two reproducibility
primitives:

* :func:`trace_digest` — a CRC32 over a canonical rendering of trace rows,
  byte-compatible with ``repro.experiments.chaos_soak.trace_digest`` (it is
  re-implemented here rather than imported so the kernel package does not
  drag in the whole experiments tree).  Equal digests mean equal traces,
  row for row and field for field.
* :func:`state_digest` — a CRC32 over the raw float64 state arrays plus the
  server-name ordering, for cheap "did two runs end in the same state"
  checks when traces are disabled.

Trace ordering across shards: each shard emits rows tagged with the cycle
index and the emitting server's global phase rank, and :func:`merge_rows`
sorts on that pair.  Within one server's round the shard already emits rows
in processing order, so the merged trace is a deterministic function of
(seed, topology, policy) — *independent of the shard count* — which is what
the 1-shard-vs-N-shard regression asserts.  Note this is per-round order,
not global timestamp order: two rounds of the same cycle interleave in time
but are merged blockwise (see ``docs/kernel.md``, "Known divergences").
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..simulation.trace import TraceRecord

__all__ = [
    "trace_digest",
    "state_digest",
    "TaggedRow",
    "merge_rows",
]

#: A trace row tagged for deterministic cross-shard merging:
#: ``(cycle, phase_rank, seq, record)`` where ``seq`` is the row's index
#: within its server's round.
TaggedRow = Tuple[int, int, int, TraceRecord]


def trace_digest(trace: Iterable[TraceRecord]) -> int:
    """CRC32 digest of a trace, canonical-rendering-compatible with
    ``repro.experiments.chaos_soak.trace_digest``."""
    crc = 0
    for row in trace:
        rendered = "%r|%s|%s|%s" % (
            row.time,
            row.kind,
            row.source,
            ",".join(f"{key}={row.data[key]!r}" for key in sorted(row.data)),
        )
        crc = zlib.crc32(rendered.encode("utf-8"), crc)
    return crc


def state_digest(names: Sequence[str], *arrays: np.ndarray) -> int:
    """CRC32 over the name ordering and raw float64 state arrays."""
    crc = zlib.crc32("|".join(names).encode("utf-8"), 0)
    for array in arrays:
        crc = zlib.crc32(np.ascontiguousarray(array, dtype=np.float64).tobytes(), crc)
    return crc


def merge_rows(shard_rows: Sequence[List[TaggedRow]]) -> List[TraceRecord]:
    """Merge per-shard tagged rows into one deterministic trace.

    Sort key ``(cycle, phase_rank, seq)`` is a total order — each (cycle,
    server) round belongs to exactly one shard — so the result does not
    depend on how the topology was partitioned.
    """
    merged: List[TaggedRow] = []
    for rows in shard_rows:
        merged.extend(rows)
    merged.sort(key=lambda tagged: (tagged[0], tagged[1], tagged[2]))
    return [record for _, _, _, record in merged]
