"""Vectorized Marzullo endpoint sweep over stacked interval rows.

The scalar sweep in :mod:`repro.core.marzullo` processes one list of
:class:`~repro.core.intervals.TimeInterval` at a time; at 10k+ servers the
per-round "which neighbour intervals overlap" questions become thousands of
independent sweeps, which is exactly the shape numpy wants: a dense
``(rows, k)`` batch of interval edges, one sweep per row, all rows at once.

Bit-equivalence with the scalar oracle is a hard requirement (the
differential suite in ``tests/test_kernel_equivalence.py`` enforces it), so
the kernel replays the scalar algorithm's decisions exactly:

* events are the ``2k`` endpoints per row, kind 0 for an opening (trailing)
  edge and kind 1 for a closing (leading) edge;
* ``np.lexsort((kinds, offsets))`` reproduces Python's tuple sort of
  ``(offset, kind)`` — opens before closes at equal offsets, so touching
  intervals count as overlapping, matching the paper's ``<=`` consistency;
* the best region starts at the *first* opening event whose running count
  reaches the row's maximum (``np.argmax`` returns the first hit, exactly
  the scalar loop's "update only on ``count > best``" behaviour) and ends at
  the next sorted event.

Ragged rows (servers with different degrees) cannot be handled by padding —
a padded open at ``+inf`` re-raises the running count after every real
interval has closed and can beat the true best region.  The ragged wrapper
therefore buckets rows by their valid count and runs the dense kernel once
per bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.intervals import TimeInterval

__all__ = [
    "MarzulloBatch",
    "marzullo_vec",
    "intersect_tolerating_vec",
    "stack_intervals",
]


@dataclass(frozen=True)
class MarzulloBatch:
    """Per-row sweep results for a batch of interval rows.

    Attributes:
        lo: ``(rows,)`` trailing edge of each row's best region.
        hi: ``(rows,)`` leading edge of each row's best region.
        count: ``(rows,)`` maximum number of source intervals sharing a
            point, per row.
        ok: ``(rows,)`` tolerance verdicts — all True from
            :func:`marzullo_vec`, thresholded by
            :func:`intersect_tolerating_vec`.
    """

    lo: np.ndarray
    hi: np.ndarray
    count: np.ndarray
    ok: np.ndarray

    def interval(self, row: int) -> TimeInterval:
        """Row ``row``'s best region as a :class:`TimeInterval`."""
        return TimeInterval(float(self.lo[row]), float(self.hi[row]))


def _validate_edges(lo: np.ndarray, hi: np.ndarray, valid: Optional[np.ndarray]) -> None:
    mask = np.ones(lo.shape, dtype=bool) if valid is None else valid
    if np.isnan(lo[mask]).any() or np.isnan(hi[mask]).any():
        raise ValueError("interval edges must not be NaN")
    if (lo[mask] > hi[mask]).any():
        raise ValueError("interval trailing edge exceeds leading edge")


def _sweep_dense(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The endpoint sweep over a dense ``(rows, k)`` batch, ``k >= 1``."""
    rows, k = lo.shape
    offsets = np.concatenate([lo, hi], axis=1)
    kinds = np.concatenate(
        [np.zeros((rows, k), dtype=np.int8), np.ones((rows, k), dtype=np.int8)],
        axis=1,
    )
    # Primary key offsets, secondary key kind: the tuple sort of the scalar
    # sweep.  lexsort is stable, and fully-tied events are interchangeable.
    order = np.lexsort((kinds, offsets))
    srt_off = np.take_along_axis(offsets, order, axis=1)
    srt_kind = np.take_along_axis(kinds, order, axis=1)
    counts = np.cumsum(1 - 2 * srt_kind.astype(np.int64), axis=1)
    open_counts = np.where(srt_kind == 0, counts, -1)
    best = open_counts.max(axis=1)
    pos = np.argmax(open_counts == best[:, None], axis=1)
    rows_idx = np.arange(rows)
    best_lo = srt_off[rows_idx, pos]
    # The last sorted event is always a close (the maximum offset belongs to
    # some leading edge, and ties sort opens first), so pos + 1 is in range.
    best_hi = srt_off[rows_idx, pos + 1]
    return best_lo, best_hi, best


def marzullo_vec(
    lo: np.ndarray, hi: np.ndarray, valid: Optional[np.ndarray] = None
) -> MarzulloBatch:
    """Batched endpoint sweep: one scalar-``marzullo()`` per row.

    Args:
        lo: ``(rows, k)`` trailing edges.
        hi: ``(rows, k)`` leading edges.
        valid: Optional ``(rows, k)`` bool mask for ragged rows; every row
            must keep at least one valid interval.

    Returns:
        A :class:`MarzulloBatch` with the per-row best region and count.

    Raises:
        ValueError: On empty input, NaN edges, an inverted interval, or a
            row with no valid interval — mirroring the scalar oracle's
            :class:`TimeInterval` construction and empty-input errors.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    if lo.ndim != 2 or lo.shape != hi.shape or lo.shape[1] == 0:
        raise ValueError("marzullo_vec() needs matching (rows, k>=1) edge arrays")
    if valid is not None:
        valid = np.asarray(valid, dtype=bool)
        if valid.shape != lo.shape:
            raise ValueError("valid mask shape must match the edge arrays")
        if not valid.any(axis=1).all():
            raise ValueError("marzullo_vec() row with no valid interval")
    _validate_edges(lo, hi, valid)

    rows, k = lo.shape
    best_lo = np.empty(rows)
    best_hi = np.empty(rows)
    count = np.empty(rows, dtype=np.int64)
    if valid is None or valid.all():
        best_lo, best_hi, count = _sweep_dense(lo, hi)
    else:
        # Bucket rows by valid count; padding cannot express "absent".
        per_row = valid.sum(axis=1)
        for c in np.unique(per_row):
            rows_c = np.flatnonzero(per_row == c)
            sel = valid[rows_c]
            sub_lo = lo[rows_c][sel].reshape(len(rows_c), int(c))
            sub_hi = hi[rows_c][sel].reshape(len(rows_c), int(c))
            b_lo, b_hi, b_n = _sweep_dense(sub_lo, sub_hi)
            best_lo[rows_c] = b_lo
            best_hi[rows_c] = b_hi
            count[rows_c] = b_n
    return MarzulloBatch(best_lo, best_hi, count, np.ones(rows, dtype=bool))


def intersect_tolerating_vec(
    lo: np.ndarray,
    hi: np.ndarray,
    faults: int,
    valid: Optional[np.ndarray] = None,
) -> MarzulloBatch:
    """Batched ``f``-fault-tolerant intersection.

    Per row: the sweep result with ``ok = count >= k_valid - faults`` — the
    vector twin of :func:`repro.core.marzullo.intersect_tolerating`, whose
    ``None`` return corresponds to ``ok == False`` here.

    Raises:
        ValueError: If ``faults`` is negative, or on any condition
            :func:`marzullo_vec` rejects.
    """
    if faults < 0:
        raise ValueError(f"faults must be non-negative, got {faults}")
    batch = marzullo_vec(lo, hi, valid)
    k = lo.shape[1] if valid is None else None
    per_row = (
        np.full(batch.count.shape, k, dtype=np.int64)
        if valid is None
        else np.asarray(valid, dtype=bool).sum(axis=1)
    )
    ok = batch.count >= per_row - faults
    return MarzulloBatch(batch.lo, batch.hi, batch.count, ok)


def stack_intervals(
    rows: Sequence[Sequence[TimeInterval]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad a ragged list of interval lists into ``(lo, hi, valid)`` arrays.

    Padded slots carry inert zero edges and ``valid=False``; feed the mask
    to :func:`marzullo_vec` / :func:`intersect_tolerating_vec`.
    """
    if not rows or any(not row for row in rows):
        raise ValueError("stack_intervals() needs non-empty interval rows")
    k = max(len(row) for row in rows)
    lo = np.zeros((len(rows), k))
    hi = np.zeros((len(rows), k))
    valid = np.zeros((len(rows), k), dtype=bool)
    for i, row in enumerate(rows):
        for j, interval in enumerate(row):
            lo[i, j] = interval.lo
            hi[i, j] = interval.hi
            valid[i, j] = True
    return lo, hi, valid
