"""Vectorized + sharded simulation kernel for 10k–100k-server experiments.

Three layers (see ``docs/kernel.md`` for the design):

* :mod:`repro.kernel.batch` / :mod:`repro.kernel.marzullo_vec` — numpy
  round kernels: interval construction, the Marzullo sweep, and the
  MM-2/IM-2 predicates over stacked per-neighbour reply arrays, with the
  scalar :mod:`repro.core` functions as the differential-test oracle.
* :mod:`repro.kernel.engine` — the batched round engine: ``"exact"`` mode
  replays the heap engine bit-for-bit; plan/config validation shared with
  bulk mode.
* :mod:`repro.kernel.shard` / :mod:`repro.kernel.sync` — the bulk scale
  mode: per-cycle vectorized shards, conservative-lookahead cycle barriers,
  deterministic cross-shard trace merging and digests.
"""

from .batch import (
    IMRound,
    MM2Verdicts,
    SELF_SLOT,
    im2_round,
    interval_edges,
    mm2_adoption_error,
    mm2_eval,
    transit_edges,
)
from .engine import (
    ExactKernelService,
    KernelConfig,
    KernelPlan,
    PolicyFlags,
    build_kernel_service,
    plan_kernel,
)
from .marzullo_vec import (
    MarzulloBatch,
    intersect_tolerating_vec,
    marzullo_vec,
    stack_intervals,
)
from .shard import ShardedKernelService, partition_names
from .sync import merge_rows, state_digest, trace_digest

__all__ = [
    "IMRound",
    "MM2Verdicts",
    "SELF_SLOT",
    "im2_round",
    "interval_edges",
    "mm2_adoption_error",
    "mm2_eval",
    "transit_edges",
    "ExactKernelService",
    "KernelConfig",
    "KernelPlan",
    "PolicyFlags",
    "build_kernel_service",
    "plan_kernel",
    "MarzulloBatch",
    "intersect_tolerating_vec",
    "marzullo_vec",
    "stack_intervals",
    "ShardedKernelService",
    "partition_names",
    "merge_rows",
    "state_digest",
    "trace_digest",
]
