"""The batched round engine behind the ``Scheduler``/``Network`` seams.

Where :class:`~repro.simulation.engine.SimulationEngine` heap-pops one
message at a time, the kernel engine exploits the rigid event structure of
a clean synchronization run — every cycle of length τ contains exactly one
poll round per server: one poll fire, ``k`` request deliveries, ``k`` reply
deliveries — and processes whole rounds as array phases.  Two modes:

* **exact** (:class:`ExactKernelService`) — replays the heap engine's
  chronology bit-for-bit for the restricted configuration it refuses to
  leave (plain :class:`~repro.service.server.TimeServer` rows, MM or IM,
  a shared :class:`~repro.network.delay.UniformDelay`, no loss, staggered
  non-overlapping rounds).  Same per-pair ``net/{src}->{dst}`` RNG streams,
  same float evaluation order, same trace rows: the differential suite
  asserts equal trace digests against the scalar engine.
* **bulk** (:mod:`repro.kernel.shard`) — the scale mode: per-cycle numpy
  phases across all servers of a shard, per-*server* RNG streams (so
  digests are invariant under re-sharding), and Jacobi round semantics
  (answers are computed from neighbour state as of the cycle start; see
  ``docs/kernel.md`` for why that preserves correctness and where it
  diverges from the heap engine).

The exact mode's one structural trick is the request/reply draw-order fixed
point: scalar ``Network.send`` draws each message's delay from the stream of
its *directed pair* at send time.  With non-overlapping rounds the per-cycle
draw order on stream ``i->j`` is closed-form — the request ``i->j`` (at
``t_i``) always precedes the answer ``i->j`` (at ``t_j + r_{j->i}``) when
``t_i < t_j``, and on the opposite stream the order is decided by comparing
the request arrival ``t_i + r_{i->j}`` with ``t_j`` (ties fire the request
first: its delivery event was sequenced earlier) — so the kernel can draw a
whole cycle's delays up front and still consume every stream in the heap
engine's order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from ..core.sync import SynchronizationPolicy
from ..network.delay import DelayModel, UniformDelay
from ..service.builder import ServerSpec, ServiceSnapshot
from ..service.server import ServerStats
from ..simulation.rng import RngRegistry
from ..simulation.trace import TraceRecorder

__all__ = [
    "KernelConfig",
    "KernelPlan",
    "PolicyFlags",
    "ExactKernelService",
    "build_kernel_service",
]


@dataclass(frozen=True)
class PolicyFlags:
    """The policy knobs the kernels understand, extracted from MM/IM."""

    kind: str  # "mm" | "im"
    inflate_rtt: bool = True
    strict_improvement: bool = False
    include_self: bool = True
    widen_both_edges: bool = False
    reset_to: str = "midpoint"
    allow_point_intersection: bool = True

    @classmethod
    def of(cls, policy: SynchronizationPolicy) -> "PolicyFlags":
        if isinstance(policy, MMPolicy):
            return cls(
                kind="mm",
                inflate_rtt=policy.inflate_rtt,
                strict_improvement=policy.strict_improvement,
            )
        if isinstance(policy, IMPolicy):
            return cls(
                kind="im",
                include_self=policy.include_self,
                widen_both_edges=policy.widen_both_edges,
                reset_to=policy.reset_to,
                allow_point_intersection=policy.allow_point_intersection,
            )
        raise ValueError(
            f"the kernel engine supports MMPolicy/IMPolicy, got {policy!r}"
        )


@dataclass(frozen=True)
class KernelConfig:
    """Declarative description of a kernel run (both modes).

    Mirrors the :func:`~repro.service.builder.build_service` arguments the
    kernel supports; anything it cannot reproduce faithfully is rejected at
    plan time rather than silently approximated.
    """

    graph: nx.Graph
    specs: Sequence[ServerSpec]
    policy: SynchronizationPolicy
    tau: float
    seed: int = 0
    delay: Optional[DelayModel] = None
    round_timeout: Optional[float] = None
    trace_enabled: bool = True
    prefetch_cycles: int = 32


@dataclass
class KernelPlan:
    """Validated, precomputed static structure shared by both modes."""

    names: List[str]
    index: Dict[str, int]
    phases: List[float]  # per server, builder's stagger formula
    neighbours: List[List[str]]  # sorted, per server
    deltas: List[float]
    skews: List[float]
    initial_errors: List[float]
    flags: PolicyFlags
    tau: float
    seed: int
    delay_min: float
    delay_bound: float
    trace_enabled: bool
    prefetch_cycles: int


def plan_kernel(config: KernelConfig) -> KernelPlan:
    """Validate a config and precompute the static run structure.

    Raises:
        ValueError: On any spec/policy/delay feature the kernel cannot
            reproduce (reference servers, custom clocks, non-uniform delay,
            hardening-style subclasses have no kernel twin).
    """
    flags = PolicyFlags.of(config.policy)
    delay = config.delay if config.delay is not None else UniformDelay(0.05)
    if not isinstance(delay, UniformDelay):
        raise ValueError("the kernel engine models UniformDelay links only")
    if config.tau <= 0:
        raise ValueError(f"tau must be positive, got {config.tau}")
    names = [spec.name for spec in config.specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate server names in specs: {names}")
    missing = [name for name in names if name not in config.graph]
    if missing:
        raise ValueError(f"specs name servers not in the topology: {missing}")
    if set(config.graph.nodes) != set(names):
        raise ValueError("kernel runs need exactly one spec per topology node")
    for spec in config.specs:
        unsupported = [
            flag
            for flag in (
                "reference",
                "rate_tracking",
                "discipline",
                "self_stabilizing",
                "byzantine_tolerant",
                "holdover",
            )
            if getattr(spec, flag)
        ]
        if unsupported or not spec.polls or spec.clock_factory is not None:
            raise ValueError(
                f"spec {spec.name!r} uses features without a kernel twin "
                f"(plain polling DriftingClock servers only)"
            )
        if spec.delta < 0 or spec.initial_error < 0:
            raise ValueError(f"spec {spec.name!r} has negative delta/error")

    ordered = sorted(names)
    index = {name: i for i, name in enumerate(ordered)}
    n = len(ordered)
    # The builder's deterministic stagger: server k polls first at
    # tau * (k + 1) / (n + 1), then every tau by repeated addition.
    phases = [config.tau * (k + 1) / (n + 1) for k in range(n)]
    by_name = {spec.name: spec for spec in config.specs}
    neighbours = [sorted(config.graph.neighbors(name)) for name in ordered]
    return KernelPlan(
        names=ordered,
        index=index,
        phases=phases,
        neighbours=neighbours,
        deltas=[float(by_name[name].delta) for name in ordered],
        skews=[float(by_name[name].skew) for name in ordered],
        initial_errors=[float(by_name[name].initial_error) for name in ordered],
        flags=flags,
        tau=float(config.tau),
        seed=int(config.seed),
        delay_min=float(delay.minimum),
        delay_bound=float(delay.bound),
        trace_enabled=bool(config.trace_enabled),
        prefetch_cycles=max(1, int(config.prefetch_cycles)),
    )


# --------------------------------------------------------------------------
# Exact mode


@dataclass
class _ExactServer:
    """Mutable per-server state, mirroring TimeServer + DriftingClock."""

    name: str
    delta: float
    skew: float
    seg_start: float  # clock segment start (real time of last reset)
    seg_value: float  # clock value at segment start
    eps: float  # inherited error ε_i
    r: float  # clock value at last reset, r_i
    poll_t: float  # absolute time of the next poll round
    dests: List[str]
    stats: ServerStats = field(default_factory=ServerStats)

    def read(self, t: float) -> float:
        return self.seg_value + (t - self.seg_start) * (1.0 + self.skew)

    def error_at(self, value: float) -> float:
        return self.eps + max(0.0, value - self.r) * self.delta


@dataclass
class _Round:
    """One drawn-but-unprocessed poll round."""

    server: str
    poll_t: float
    ta: List[float]  # request arrival per destination (dests order)
    tb: List[float]  # reply arrival per destination (dests order)
    close_t: float


class ExactKernelService:
    """Bit-exact batched replay of the scalar engine's clean sync runs.

    The constructor validates that the configuration is inside the regime
    where round-structured replay is exact: every server's round must open
    and close strictly between the neighbouring servers' rounds.  With the
    builder's stagger the phase gap is ``τ/(n+1)`` and a round spans at most
    one round trip, so the requirement is ``2·bound < τ/(n+1)`` (and a round
    timeout beyond ``2·bound``, so no round is ever cut short).
    """

    def __init__(self, config: KernelConfig) -> None:
        self.plan = plan_kernel(config)
        plan = self.plan
        n = len(plan.names)
        phase_gap = plan.tau / (n + 1)
        span = 2.0 * plan.delay_bound
        if span >= phase_gap:
            raise ValueError(
                f"exact mode needs non-overlapping rounds: round span "
                f"{span} >= stagger gap {phase_gap}; shrink the delay bound "
                f"or use bulk mode"
            )
        timeout = config.round_timeout
        if timeout is None:
            timeout = min(plan.tau / 2.0, 4.0 * max(2.0 * plan.delay_bound, 1e-6))
        if timeout <= span:
            raise ValueError(
                f"exact mode needs round_timeout > {span} so no round is "
                f"cut short by its timer, got {timeout}"
            )
        self._rng = RngRegistry(seed=plan.seed)
        self.trace = TraceRecorder(enabled=plan.trace_enabled)
        self._now = 0.0
        self._events = 0
        self._servers: Dict[str, _ExactServer] = {}
        for i, name in enumerate(plan.names):
            self._servers[name] = _ExactServer(
                name=name,
                delta=plan.deltas[i],
                skew=plan.skews[i],
                seg_start=0.0,
                seg_value=0.0,
                eps=plan.initial_errors[i],
                r=0.0,  # clock.read(0.0) at on_start
                poll_t=plan.phases[i],
                dests=list(plan.neighbours[i]),
            )
        # Phase order == sorted-name order (the builder enumerates sorted
        # polling names); rounds are processed serially in this order.
        self._by_phase = [self._servers[name] for name in plan.names]
        # Unordered adjacent pairs with the earlier-phased endpoint first.
        self._pairs: List[Tuple[str, str]] = []
        for a, b in config.graph.edges():
            i, j = plan.index[a], plan.index[b]
            self._pairs.append((a, b) if i < j else (b, a))
        self._pairs.sort(key=lambda pair: (plan.index[pair[0]], plan.index[pair[1]]))
        self._pending: List[_Round] = []

    # ------------------------------------------------------------- properties

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        """Heap-engine-equivalent event count: per processed round, one poll
        fire plus one delivery per request and per reply."""
        return self._events

    @property
    def stats(self) -> Dict[str, ServerStats]:
        return {name: srv.stats for name, srv in self._servers.items()}

    # --------------------------------------------------------------- drawing

    def _draw_cycle(self) -> None:
        """Draw every delay of the next cycle and queue its rounds.

        Consumes each ``net/{src}->{dst}`` stream in the heap engine's send
        order (see the module docstring's fixed-point argument).
        """
        plan = self.plan
        lo, hi = plan.delay_min, plan.delay_bound
        req: Dict[Tuple[str, str], float] = {}
        ans: Dict[Tuple[str, str], float] = {}
        for i_name, j_name in self._pairs:
            s_ij = self._rng.stream(f"net/{i_name}->{j_name}")
            s_ji = self._rng.stream(f"net/{j_name}->{i_name}")
            r_ij = float(s_ij.uniform(lo, hi))  # request i->j: first on its stream
            arrival = self._servers[i_name].poll_t + r_ij
            t_j = self._servers[j_name].poll_t
            if arrival < t_j:
                # j answers i before sending its own request.
                ans[(j_name, i_name)] = float(s_ji.uniform(lo, hi))
                req[(j_name, i_name)] = float(s_ji.uniform(lo, hi))
            else:
                req[(j_name, i_name)] = float(s_ji.uniform(lo, hi))
                ans[(j_name, i_name)] = float(s_ji.uniform(lo, hi))
            req[(i_name, j_name)] = r_ij
            ans[(i_name, j_name)] = float(s_ij.uniform(lo, hi))  # i answers j
        for srv in self._by_phase:
            ta = [srv.poll_t + req[(srv.name, dest)] for dest in srv.dests]
            tb = [ta[q] + ans[(dest, srv.name)] for q, dest in enumerate(srv.dests)]
            close_t = max(tb) if tb else srv.poll_t
            self._pending.append(_Round(srv.name, srv.poll_t, ta, tb, close_t))
            srv.poll_t = srv.poll_t + plan.tau  # PeriodicTask: repeated addition

    # ------------------------------------------------------------ processing

    def _trace_row(self, t: float, kind: str, source: str, **data) -> None:
        self.trace.record(t, kind, source, **data)

    def _process_round(self, round_: _Round) -> None:
        plan = self.plan
        srv = self._servers[round_.server]
        srv.stats.rounds += 1
        self._events += 1 + 2 * len(srv.dests)
        sent_local = srv.read(round_.poll_t)
        order = sorted(range(len(srv.dests)), key=lambda q: round_.tb[q])
        if plan.flags.kind == "mm":
            self._process_mm(srv, round_, order, sent_local)
        else:
            self._process_im(srv, round_, order, sent_local)

    def _answer(self, dest: str, at: float) -> Tuple[float, float]:
        """Rule MM-1: the answering server's ``<C_j, E_j>`` at ``at``."""
        jsrv = self._servers[dest]
        jsrv.stats.requests_answered += 1
        value = jsrv.read(at)
        return value, jsrv.error_at(value)

    def _process_mm(
        self, srv: _ExactServer, round_: _Round, order: List[int], sent_local: float
    ) -> None:
        flags = self.plan.flags
        for q in order:
            dest = srv.dests[q]
            value_j, error_j = self._answer(dest, round_.ta[q])
            tb = round_.tb[q]
            local_now = srv.read(tb)
            rtt = max(0.0, local_now - sent_local)
            srv.stats.replies_handled += 1
            state_error = srv.error_at(local_now)
            transit_lo = value_j - error_j
            transit_hi = value_j + error_j + (1.0 + srv.delta) * rtt
            consistent = (local_now - state_error) <= transit_hi and transit_lo <= (
                local_now + state_error
            )
            if not consistent:
                srv.stats.inconsistencies += 1
                self._trace_row(tb, "inconsistent", srv.name, conflicting=dest)
                continue
            factor = (1.0 + srv.delta) if flags.inflate_rtt else 1.0
            candidate = error_j + factor * rtt
            accepted = (
                candidate < state_error
                if flags.strict_improvement
                else candidate <= state_error
            )
            if accepted:
                srv.seg_start = tb
                srv.seg_value = value_j
                srv.r = value_j  # exact read-back on a RateClock
                srv.eps = candidate
                srv.stats.resets += 1
                self._trace_row(
                    tb,
                    "reset",
                    srv.name,
                    from_server=dest,
                    new_value=value_j,
                    new_error=candidate,
                    reset_kind="sync",
                )
            else:
                srv.stats.rejects += 1
                self._trace_row(tb, "reject", srv.name, server=dest)

    def _process_im(
        self, srv: _ExactServer, round_: _Round, order: List[int], sent_local: float
    ) -> None:
        flags = self.plan.flags
        pending: List[Tuple[str, float, float, float, float]] = []
        for q in order:
            dest = srv.dests[q]
            value_j, error_j = self._answer(dest, round_.ta[q])
            local_now = srv.read(round_.tb[q])
            rtt = max(0.0, local_now - sent_local)
            srv.stats.replies_handled += 1
            pending.append((dest, value_j, error_j, rtt, local_now))
        t_close = round_.close_t
        local_now = srv.read(t_close)
        state_error = srv.error_at(local_now)
        candidates: List[Tuple[str, float, float]] = []
        for dest, value_j, error_j, rtt, at_receipt in pending:
            elapsed = max(0.0, local_now - at_receipt)
            aged_value = value_j + elapsed
            aged_error = error_j + srv.delta * elapsed
            rtt_term = (1.0 + srv.delta) * rtt
            trailing = aged_value - aged_error - local_now
            if flags.widen_both_edges:
                trailing -= rtt_term
            leading = aged_value + aged_error + rtt_term - local_now
            candidates.append((dest, trailing, leading))
        if flags.include_self:
            candidates.append(("self", -state_error, state_error))
        if not candidates:
            return  # scalar: empty round, include_self=False -> consistent no-op
        a_name, a, _ = max(candidates, key=lambda c: c[1])
        b_name, _, b = min(candidates, key=lambda c: c[2])
        source = a_name if a_name == b_name else f"{a_name}∩{b_name}"
        consistent = (b >= a) if flags.allow_point_intersection else (b > a)
        if not consistent:
            conflicting = ",".join(
                name for name in source.split("∩") if name != "self"
            )
            srv.stats.inconsistencies += 1
            self._trace_row(t_close, "inconsistent", srv.name, conflicting=conflicting)
            return
        if flags.reset_to == "midpoint":
            offset = (a + b) / 2.0
            new_error = (b - a) / 2.0
        else:
            offset = a
            new_error = b - a
        new_value = local_now + offset
        srv.seg_start = t_close
        srv.seg_value = new_value
        srv.r = new_value
        srv.eps = new_error
        srv.stats.resets += 1
        self._trace_row(
            t_close,
            "reset",
            srv.name,
            from_server=source,
            new_value=new_value,
            new_error=new_error,
            reset_kind="sync",
        )

    # --------------------------------------------------------------- control

    def run_until(self, time: float) -> None:
        """Advance to absolute real time ``time``, processing every round
        that *closes* by then.

        A round straddling ``time`` (poll fired, last reply still in
        flight) is deferred whole — the one known divergence from the heap
        engine, which would have processed the early replies.  Sampling on
        multiples of τ (every experiment grid here) never lands inside a
        round, because rounds span at most ``2·bound < τ/(n+1)``.
        """
        if time < self._now:
            raise ValueError(f"cannot run backwards to {time} from {self._now}")
        while True:
            if not self._pending:
                next_poll = min(srv.poll_t for srv in self._by_phase)
                if next_poll > time:
                    break
                self._draw_cycle()
            while self._pending and self._pending[0].close_t <= time:
                self._process_round(self._pending.pop(0))
            if self._pending:
                break
        self._now = time

    # -------------------------------------------------------------- sampling

    def snapshot(self) -> ServiceSnapshot:
        """Per-server observables now (same shape the builder services give)."""
        t = self._now
        values: Dict[str, float] = {}
        errors: Dict[str, float] = {}
        offsets: Dict[str, float] = {}
        correct: Dict[str, bool] = {}
        for name in self.plan.names:
            srv = self._servers[name]
            value = srv.read(t)
            error = srv.error_at(value)
            values[name] = value
            errors[name] = error
            offsets[name] = value - t
            correct[name] = (value - error) <= t <= (value + error)
        return ServiceSnapshot(
            time=t, values=values, errors=errors, offsets=offsets, correct=correct
        )

    def sample(self, times: Sequence[float]) -> List[ServiceSnapshot]:
        """Advance through ``times`` (ascending), snapshotting at each."""
        snapshots = []
        for t in times:
            self.run_until(t)
            snapshots.append(self.snapshot())
        return snapshots


def build_kernel_service(
    graph: nx.Graph,
    specs: Sequence[ServerSpec],
    *,
    policy: SynchronizationPolicy,
    tau: float,
    seed: int = 0,
    lan_delay: Optional[DelayModel] = None,
    mode: str = "bulk",
    shards: int = 1,
    processes: int = 0,
    round_timeout: Optional[float] = None,
    trace_enabled: bool = True,
    prefetch_cycles: int = 32,
):
    """Build a kernel service — the batched twin of ``build_service``.

    Args:
        mode: ``"exact"`` for the bit-exact scalar replay (small meshes,
            differential testing) or ``"bulk"`` for the vectorized/sharded
            scale mode.
        shards: Bulk mode only — number of topology shards.
        processes: Bulk mode only — OS processes to spread shards over
            (0 = in-process).

    Returns:
        :class:`ExactKernelService` or
        :class:`~repro.kernel.shard.ShardedKernelService`.
    """
    config = KernelConfig(
        graph=graph,
        specs=specs,
        policy=policy,
        tau=tau,
        seed=seed,
        delay=lan_delay,
        round_timeout=round_timeout,
        trace_enabled=trace_enabled,
        prefetch_cycles=prefetch_cycles,
    )
    if mode == "exact":
        if shards != 1 or processes:
            raise ValueError("exact mode is single-shard and in-process")
        return ExactKernelService(config)
    if mode == "bulk":
        from .shard import ShardedKernelService

        return ShardedKernelService(config, shards=shards, processes=processes)
    raise ValueError(f"mode must be 'exact' or 'bulk', got {mode!r}")
