"""Bulk mode: vectorized per-cycle shards with conservative-lookahead sync.

This is the scale arm of the kernel.  The topology's servers (sorted by
name) are split into contiguous shards; each shard advances one full poll
cycle at a time as numpy array phases over all of its servers, and shards
exchange boundary state at cycle barriers.

**Round semantics (Jacobi).**  Within a cycle, every answer a server gives
is computed from the answering server's *cycle-start* committed state.  The
heap engine interleaves rounds (an answerer that reset milliseconds ago
answers with its new state); bulk mode freezes the answer basis at the
cycle barrier so all ``n`` rounds of a cycle are data-parallel.  The
polling server's own round is still processed faithfully: MM replies apply
in arrival order with each accepted reset visible to later replies of the
same round, IM rounds age and intersect exactly as rule IM-2 prescribes
(via :func:`repro.kernel.batch.im2_round`).  Answers lag by at most one
round — bounded by the same ``(1 + δ)·ξ`` slack rule MM-2 already charges —
so correctness properties are preserved while exactness is mode
``"exact"``'s job (see ``docs/kernel.md``).

**Lookahead safety.**  A cycle-``c`` round polls at ``phase + c·τ`` and
closes by ``phase + c·τ + 2·bound``.  A shard may therefore advance its
cycle ``c`` independently once it holds neighbours' cycle-start state: no
message generated in cycle ``c`` can influence another cycle-``c`` answer
basis, and the barrier exchanges exactly the state the next cycle needs.
This is the classic conservative-lookahead argument with the minimum link
delay ξ as the safe horizon, specialised to the round structure: the
lookahead window is a whole cycle, not just ``ξ``.

**Determinism across shard counts.**  Each server draws its cycle delays
from its own ``kernel/{name}`` stream (2·deg uniforms per cycle: request
legs to sorted neighbours, then reply legs), so the draw sequence is a
function of (seed, name, degree) only — never of the partition.  Combined
with the Jacobi answer basis and blockwise trace merging
(:func:`repro.kernel.sync.merge_rows`), a 1-shard and an N-shard run of the
same seed produce identical traces and state digests; the regression suite
asserts it.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..service.builder import ServiceSnapshot
from ..service.server import ServerStats
from ..simulation.rng import RngRegistry
from ..simulation.trace import TraceRecord
from .batch import SELF_SLOT, im2_round
from .engine import KernelConfig, KernelPlan, plan_kernel
from .sync import TaggedRow, merge_rows, state_digest

__all__ = [
    "partition_names",
    "ShardedKernelService",
]

_STAT_FIELDS = (
    "rounds",
    "replies_handled",
    "resets",
    "rejects",
    "inconsistencies",
    "requests_answered",
)


def partition_names(names: Sequence[str], shards: int) -> List[List[str]]:
    """Split sorted server names into ``shards`` contiguous blocks."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, len(names))
    bounds = np.linspace(0, len(names), shards + 1).astype(int)
    return [list(names[bounds[s] : bounds[s + 1]]) for s in range(shards)]


def _shard_metadata(plan: KernelPlan, shards: int):
    """Per-shard (local, halo, border) name lists, identical in parent and
    workers (both derive it from the plan)."""
    blocks = partition_names(plan.names, shards)
    halos: List[List[str]] = []
    borders: List[List[str]] = []
    for block in blocks:
        local = set(block)
        halo = set()
        border = set()
        for name in block:
            for nbr in plan.neighbours[plan.index[name]]:
                if nbr not in local:
                    halo.add(nbr)
                    border.add(name)
        halos.append(sorted(halo))
        borders.append(sorted(border))
    return blocks, halos, borders


class _BulkShard:
    """One shard's state and per-cycle vectorized round processing."""

    def __init__(self, plan: KernelPlan, shard_index: int, shards: int) -> None:
        self.plan = plan
        blocks, halos, borders = _shard_metadata(plan, shards)
        self.local_names = blocks[shard_index]
        self.halo_names = halos[shard_index]
        local_pos = {name: i for i, name in enumerate(self.local_names)}
        self._border_local_idx = np.array(
            [local_pos[name] for name in borders[shard_index]], dtype=np.int64
        )
        m = len(self.local_names)
        self._m = m
        rank = plan.index
        self._ranks = np.array([rank[name] for name in self.local_names], dtype=np.int64)
        comb_names = self.local_names + self.halo_names
        comb_pos = {name: i for i, name in enumerate(comb_names)}
        self._nbr_names: List[List[str]] = [
            plan.neighbours[rank[name]] for name in self.local_names
        ]
        self.deg = np.array([len(nbrs) for nbrs in self._nbr_names], dtype=np.int64)
        self._max_deg = int(self.deg.max()) if m else 0
        D = self._max_deg
        self._nbr_idx = np.zeros((m, D), dtype=np.int64)
        self._valid = np.zeros((m, D), dtype=bool)
        for i, nbrs in enumerate(self._nbr_names):
            for q, nbr in enumerate(nbrs):
                self._nbr_idx[i, q] = comb_pos[nbr]
                self._valid[i, q] = True
        # Per-cycle invariants, hoisted: row indices for gather-by-arrival
        # (``arr[rows, order]``), slot validity in arrival-rank order (the
        # first deg[i] ranks of a row are real replies), and drift factors.
        self._row_idx = np.arange(m)[:, None]
        self._valid_rank = np.arange(D)[None, :] < self.deg[:, None]
        self._invalid_rank = ~self._valid_rank
        # Per-slot outcome buffers: stats arithmetic runs once per cycle
        # over (D, m) instead of five int ops per slot.
        self._cons_buf = np.zeros((D, m), dtype=bool)
        self._acc_buf = np.zeros((D, m), dtype=bool)
        self._empty_border = np.zeros((4, 0))
        # Static per-server rates (local view and combined answer-table view).
        self.skew = np.array([plan.skews[rank[n]] for n in self.local_names])
        self.delta = np.array([plan.deltas[rank[n]] for n in self.local_names])
        self._one_skew = 1.0 + self.skew
        self._one_delta = 1.0 + self.delta
        self._comb_skew = np.array([plan.skews[rank[n]] for n in comb_names])
        self._comb_delta = np.array([plan.deltas[rank[n]] for n in comb_names])
        # Mutable clock/error state (DriftingClock segments + MM-1 terms).
        self.seg_start = np.zeros(m)
        self.seg_value = np.zeros(m)
        self.eps = np.array([plan.initial_errors[rank[n]] for n in self.local_names])
        self.r = np.zeros(m)
        self.poll_t = np.array([plan.phases[rank[n]] for n in self.local_names])
        self.stats = np.zeros((len(_STAT_FIELDS), m), dtype=np.int64)
        self.cycle = 0
        # Per-server delay streams, block-prefetched: row c of a block is
        # cycle c's 2·deg draws (request legs to sorted neighbours first,
        # then reply legs) — shard-count-invariant by construction.
        registry = RngRegistry(seed=plan.seed)
        self._gens = [
            registry.stream(f"kernel/{name}") for name in self.local_names
        ]
        self._block_len = plan.prefetch_cycles
        self._blocks: List[Optional[np.ndarray]] = [None] * m
        # Uniform-degree fast path: stack the per-server blocks into one
        # (block_len, m, 2D) array at refill so the per-cycle draw is two
        # slices instead of an m-iteration Python loop.  The draws (and
        # their per-server stream order) are identical either way.
        self._uniform_deg = bool(m) and D > 0 and bool((self.deg == D).all())
        self._stacked_block: Optional[np.ndarray] = None
        self._cursor = self._block_len  # force refill on first cycle
        lo, hi = plan.delay_min, plan.delay_bound
        self._delay_args = (lo, hi)

    # ---------------------------------------------------------------- drawing

    def _draw_cycle(self) -> Tuple[np.ndarray, np.ndarray]:
        m, D = self._m, self._max_deg
        if self._cursor >= self._block_len:
            lo, hi = self._delay_args
            if self._uniform_deg:
                block = np.empty((self._block_len, m, 2 * D))
                for i in range(m):
                    block[:, i, :] = self._gens[i].uniform(
                        lo, hi, size=(self._block_len, 2 * D)
                    )
                self._stacked_block = block
            else:
                for i in range(m):
                    d = int(self.deg[i])
                    if d:
                        self._blocks[i] = self._gens[i].uniform(
                            lo, hi, size=(self._block_len, 2 * d)
                        )
            self._cursor = 0
        if self._uniform_deg:
            row = self._stacked_block[self._cursor]
            self._cursor += 1
            return row[:, :D], row[:, D:]
        d1 = np.zeros((m, D))
        d2 = np.zeros((m, D))
        for i in range(m):
            d = int(self.deg[i])
            if d:
                row = self._blocks[i][self._cursor]
                d1[i, :d] = row[:d]
                d2[i, :d] = row[d:]
        self._cursor += 1
        return d1, d2

    # -------------------------------------------------------------- answering

    def _answers(
        self, snap: Tuple[np.ndarray, ...], idx: np.ndarray, at: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rule MM-1 ``<C_j, E_j>`` from the cycle-start snapshot table."""
        seg_start, seg_value, eps, r = snap
        value = seg_value[idx] + (at - seg_start[idx]) * (1.0 + self._comb_skew[idx])
        error = eps[idx] + np.maximum(0.0, value - r[idx]) * self._comb_delta[idx]
        return value, error

    def _read_local(self, rows: np.ndarray, at: np.ndarray) -> np.ndarray:
        return self.seg_value[rows] + (at - self.seg_start[rows]) * (
            1.0 + self.skew[rows]
        )

    # ------------------------------------------------------------- round math

    def step_cycle(
        self, halo_state: np.ndarray
    ) -> Tuple[np.ndarray, List[TaggedRow], int]:
        """Advance every local server one poll round.

        Args:
            halo_state: ``(4, n_halo)`` cycle-start state of halo servers
                (seg_start, seg_value, eps, r rows).

        Returns:
            ``(border_state, tagged_rows, events)`` where ``border_state``
            holds the *whole local block*'s post-cycle state ``(4, m)`` —
            the parent selects border columns — actually only border
            columns, see :meth:`border_state`; events counts one poll plus
            two deliveries per reply, matching the heap engine's ledger.
        """
        plan = self.plan
        m, D = self._m, self._max_deg
        if halo_state.shape[1]:
            snap = (
                np.concatenate([self.seg_start, halo_state[0]]),
                np.concatenate([self.seg_value, halo_state[1]]),
                np.concatenate([self.eps, halo_state[2]]),
                np.concatenate([self.r, halo_state[3]]),
            )
        else:
            # Copies, not views: rounds mutate the live arrays in place and
            # answers must come from the cycle-start snapshot.
            snap = (
                self.seg_start.copy(),
                self.seg_value.copy(),
                self.eps.copy(),
                self.r.copy(),
            )
        d1, d2 = self._draw_cycle()
        ta = self.poll_t[:, None] + d1
        tb = ta + d2
        tb_key = np.where(self._valid, tb, np.inf)
        sent_local = self.seg_value + (self.poll_t - self.seg_start) * (1.0 + self.skew)
        rows_out: List[TaggedRow] = []
        self.stats[0] += 1  # rounds
        self.stats[1] += self.deg  # replies_handled
        self.stats[5] += self.deg  # requests_answered (each neighbour polls once)
        events = int(m + 2 * self.deg.sum())
        if D:
            order = np.argsort(tb_key, axis=1, kind="stable")
            if plan.flags.kind == "mm":
                self._step_mm(snap, ta, tb_key, order, sent_local, rows_out)
            else:
                self._step_im(snap, ta, tb_key, order, sent_local, rows_out)
        if plan.flags.kind == "im":
            self._step_im_isolated(sent_local, rows_out)
        self.poll_t = self.poll_t + plan.tau  # repeated addition, like PeriodicTask
        self.cycle += 1
        return self.border_state(), rows_out, events

    def _step_mm(
        self,
        snap: Tuple[np.ndarray, ...],
        ta: np.ndarray,
        tb_key: np.ndarray,
        order: np.ndarray,
        sent_local: np.ndarray,
        rows_out: List[TaggedRow],
    ) -> None:
        """Rule MM-2 in arrival order, one arrival rank per pass.

        Resets land in-place, so later arrivals of the same round see them —
        the only intra-round sequencing MM needs.  Everything that does not
        depend on mid-round resets (the answers, the arrival ordering) is
        computed for all slots up front; the per-slot pass touches whole
        ``(m,)`` columns with no fancy indexing, which is what keeps the
        per-cycle Python overhead flat in the server count.
        """
        flags = self.plan.flags
        trace = self.plan.trace_enabled
        cycle = self.cycle
        m, D = self._m, self._max_deg
        rows2 = self._row_idx
        ta_o = ta[rows2, order]
        tb_o = tb_key[rows2, order]
        np.copyto(tb_o, self.poll_t[:, None], where=self._invalid_rank)
        idx_o = self._nbr_idx[rows2, order]
        flat_v, flat_e = self._answers(snap, idx_o.reshape(-1), ta_o.reshape(-1))
        vj_o = flat_v.reshape(m, D)
        ej_o = flat_e.reshape(m, D)
        # Snapshot-only quantities are slot-independent; hoist them.  The
        # transit leading edge stays ``(C_j + E_j) + (1+δ)·ξ`` left-assoc.
        vj_hi_o = vj_o + ej_o
        vj_lo_o = vj_o - ej_o
        valid_o = self._valid_rank
        one_skew = self._one_skew
        one_delta = self._one_delta
        inflate = flags.inflate_rtt
        strict = flags.strict_improvement
        names_o = None
        if trace:
            names_o = [
                [self._nbr_names[i][order[i, s]] for s in range(int(self.deg[i]))]
                for i in range(m)
            ]
        for s in range(D):
            active = valid_o[:, s]
            tb_s = tb_o[:, s]
            vj = vj_o[:, s]
            ej = ej_o[:, s]
            local_now = self.seg_value + (tb_s - self.seg_start) * one_skew
            rtt = np.maximum(0.0, local_now - sent_local)
            state_err = self.eps + np.maximum(0.0, local_now - self.r) * self.delta
            infl = one_delta * rtt
            transit_hi = vj_hi_o[:, s] + infl
            consistent = ((local_now - state_err) <= transit_hi) & (
                vj_lo_o[:, s] <= (local_now + state_err)
            )
            candidate = ej + (infl if inflate else rtt)
            if strict:
                improves = candidate < state_err
            else:
                improves = candidate <= state_err
            cons_active = np.logical_and(active, consistent, out=self._cons_buf[s])
            accepted = np.logical_and(cons_active, improves, out=self._acc_buf[s])
            np.copyto(self.seg_start, tb_s, where=accepted)
            np.copyto(self.seg_value, vj, where=accepted)
            np.copyto(self.r, vj, where=accepted)
            np.copyto(self.eps, candidate, where=accepted)
            if trace:
                for i in np.flatnonzero(active):
                    name = self.local_names[i]
                    dest = names_o[i][s]
                    rank = int(self._ranks[i])
                    t = float(tb_s[i])
                    if not consistent[i]:
                        record = TraceRecord(t, "inconsistent", name, {"conflicting": dest})
                    elif accepted[i]:
                        record = TraceRecord(
                            t,
                            "reset",
                            name,
                            {
                                "from_server": dest,
                                "new_value": float(vj[i]),
                                "new_error": float(candidate[i]),
                                "reset_kind": "sync",
                            },
                        )
                    else:
                        record = TraceRecord(t, "reject", name, {"server": dest})
                    rows_out.append((cycle, rank, s, record))
        acc_sum = self._acc_buf.sum(axis=0)
        cons_sum = self._cons_buf.sum(axis=0)
        self.stats[2] += acc_sum  # resets
        self.stats[3] += cons_sum - acc_sum  # rejects (consistent, no gain)
        self.stats[4] += self.deg - cons_sum  # inconsistencies

    def _step_im(
        self,
        snap: Tuple[np.ndarray, ...],
        ta: np.ndarray,
        tb_key: np.ndarray,
        order: np.ndarray,
        sent_local: np.ndarray,
        rows_out: List[TaggedRow],
    ) -> None:
        """Rule IM-2: collect the round, age to its close, intersect."""
        flags = self.plan.flags
        rp = np.flatnonzero(self.deg > 0)
        if not rp.size:
            return
        deg_rp = self.deg[rp]
        rp_col = rp[:, None]
        order_rp = order[rp]
        ta_o = ta[rp_col, order_rp]
        tb_o = tb_key[rp_col, order_rp]
        idx_o = self._nbr_idx[rp_col, order_rp]
        D = self._max_deg
        valid_o = self._valid_rank[rp]
        tb_o = np.where(valid_o, tb_o, self.poll_t[rp][:, None])  # keep finite
        k_rows = np.arange(rp.size)
        value_j, error_j = self._answers(
            snap, idx_o.reshape(-1), ta_o.reshape(-1)
        )
        value_j = value_j.reshape(rp.size, D)
        error_j = error_j.reshape(rp.size, D)
        local_at = self.seg_value[rp][:, None] + (
            tb_o - self.seg_start[rp][:, None]
        ) * (1.0 + self.skew[rp][:, None])
        rtt = np.maximum(0.0, local_at - sent_local[rp][:, None])
        t_close = tb_o[k_rows, deg_rp - 1]
        local_close = self._read_local(rp, t_close)
        elapsed = np.maximum(0.0, local_close[:, None] - local_at)
        aged_value = value_j + elapsed
        aged_error = error_j + self.delta[rp][:, None] * elapsed
        state_err = self.eps[rp] + np.maximum(
            0.0, local_close - self.r[rp]
        ) * self.delta[rp]
        outcome = im2_round(
            local_close,
            state_err,
            self.delta[rp],
            aged_value,
            aged_error,
            rtt,
            valid_o,
            include_self=flags.include_self,
            widen_both_edges=flags.widen_both_edges,
            reset_to=flags.reset_to,
            allow_point_intersection=flags.allow_point_intersection,
        )
        good = outcome.consistent
        hit = rp[good]
        self.seg_start[hit] = t_close[good]
        self.seg_value[hit] = outcome.new_value[good]
        self.r[hit] = outcome.new_value[good]
        self.eps[hit] = outcome.new_error[good]
        self.stats[2, hit] += 1
        self.stats[4, rp[~good]] += 1
        if self.plan.trace_enabled:
            cycle = self.cycle
            arrival_names = [
                [self._nbr_names[i][order[i, s]] for s in range(int(self.deg[i]))]
                for i in rp
            ]

            def slot_name(k: int, slot: int) -> str:
                return "self" if slot == SELF_SLOT else arrival_names[k][slot]

            for k, i in enumerate(rp):
                name = self.local_names[i]
                rank = int(self._ranks[i])
                a_name = slot_name(k, int(outcome.a_slot[k]))
                b_name = slot_name(k, int(outcome.b_slot[k]))
                source = a_name if a_name == b_name else f"{a_name}∩{b_name}"
                t = float(t_close[k])
                if good[k]:
                    record = TraceRecord(
                        t,
                        "reset",
                        name,
                        {
                            "from_server": source,
                            "new_value": float(outcome.new_value[k]),
                            "new_error": float(outcome.new_error[k]),
                            "reset_kind": "sync",
                        },
                    )
                else:
                    conflicting = ",".join(
                        n for n in source.split("∩") if n != "self"
                    )
                    record = TraceRecord(
                        t, "inconsistent", name, {"conflicting": conflicting}
                    )
                rows_out.append((cycle, rank, 0, record))

    def _step_im_isolated(
        self, sent_local: np.ndarray, rows_out: List[TaggedRow]
    ) -> None:
        """Degree-0 IM rounds: the self interval is the whole intersection."""
        flags = self.plan.flags
        if not flags.include_self:
            return  # scalar: empty round, no self -> consistent no-op
        iso = np.flatnonzero(self.deg == 0)
        for i in iso:
            t = float(self.poll_t[i])
            local_now = float(sent_local[i])
            state_err = float(
                self.eps[i] + max(0.0, local_now - self.r[i]) * self.delta[i]
            )
            a, b = -state_err, state_err
            consistent = (b >= a) if flags.allow_point_intersection else (b > a)
            name = self.local_names[i]
            rank = int(self._ranks[i])
            if not consistent:
                self.stats[4, i] += 1
                if self.plan.trace_enabled:
                    rows_out.append(
                        (
                            self.cycle,
                            rank,
                            0,
                            TraceRecord(t, "inconsistent", name, {"conflicting": ""}),
                        )
                    )
                continue
            if flags.reset_to == "midpoint":
                offset, new_error = (a + b) / 2.0, (b - a) / 2.0
            else:
                offset, new_error = a, b - a
            new_value = local_now + offset
            self.seg_start[i] = t
            self.seg_value[i] = new_value
            self.r[i] = new_value
            self.eps[i] = new_error
            self.stats[2, i] += 1
            if self.plan.trace_enabled:
                rows_out.append(
                    (
                        self.cycle,
                        rank,
                        0,
                        TraceRecord(
                            t,
                            "reset",
                            name,
                            {
                                "from_server": "self",
                                "new_value": float(new_value),
                                "new_error": float(new_error),
                                "reset_kind": "sync",
                            },
                        ),
                    )
                )

    # ------------------------------------------------------------- reporting

    def border_state(self) -> np.ndarray:
        """Post-cycle ``(4, n_border)`` state of this shard's border servers."""
        idx = self._border_local_idx
        if not idx.size:
            return self._empty_border
        return np.stack(
            [self.seg_start[idx], self.seg_value[idx], self.eps[idx], self.r[idx]]
        )

    def collect(self) -> Dict[str, np.ndarray]:
        return {
            "ranks": self._ranks,
            "seg_start": self.seg_start.copy(),
            "seg_value": self.seg_value.copy(),
            "eps": self.eps.copy(),
            "r": self.r.copy(),
            "stats": self.stats.copy(),
        }


def _shard_worker(conn, plan: KernelPlan, shard_index: int, shards: int) -> None:
    """Child-process loop: build the shard, serve step/collect commands."""
    shard = _BulkShard(plan, shard_index, shards)
    while True:
        msg = conn.recv()
        if msg[0] == "step":
            conn.send(shard.step_cycle(msg[1]))
        elif msg[0] == "collect":
            conn.send(shard.collect())
        elif msg[0] == "close":
            conn.close()
            return


class ShardedKernelService:
    """The bulk-mode service: N shards, cycle barriers, merged reporting.

    With ``processes == 0`` shards advance serially in-process (fastest for
    small N; no pickling); with ``processes > 0`` shards are spread over
    forked worker processes and the barrier exchange rides ``Pipe``s.
    Either way the results are identical — the exchange protocol and RNG
    streams do not depend on the execution vehicle.
    """

    def __init__(self, config: KernelConfig, *, shards: int = 1, processes: int = 0) -> None:
        self.plan = plan_kernel(config)
        n = len(self.plan.names)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        shards = min(shards, n)
        self._shards_n = shards
        blocks, halos, borders = _shard_metadata(self.plan, shards)
        self._halo_names = halos
        # Concatenated border table: shard s's border names occupy a
        # contiguous slice; halo gathers index into the concatenation.
        concat: List[str] = []
        self._border_slices: List[slice] = []
        for border in borders:
            self._border_slices.append(slice(len(concat), len(concat) + len(border)))
            concat.extend(border)
        pos = {name: i for i, name in enumerate(concat)}
        self._halo_src = [
            np.array([pos[name] for name in halo], dtype=np.int64) for halo in halos
        ]
        self._border_table = np.zeros((4, len(concat)))
        for i, name in enumerate(concat):
            self._border_table[2, i] = self.plan.initial_errors[self.plan.index[name]]
        self._phase_max = max(self.plan.phases) if self.plan.phases else 0.0
        self._now = 0.0
        self._cycles_done = 0
        self._events = 0
        self._rows: List[TaggedRow] = []
        self._trace_cache: Optional[List[TraceRecord]] = None
        self._collected: Optional[Dict[str, np.ndarray]] = None
        self._procs: List = []
        self._conns: List = []
        self._local: List[_BulkShard] = []
        if processes:
            ctx = multiprocessing.get_context("fork")
            for s in range(shards):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(child_conn, self.plan, s, shards),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        else:
            for s in range(shards):
                self._local.append(_BulkShard(self.plan, s, shards))

    # ---------------------------------------------------------------- control

    def _cycle_close_bound(self, cycle: int) -> float:
        """Latest possible close of any cycle-``cycle`` round."""
        return (
            self._phase_max + cycle * self.plan.tau + 2.0 * self.plan.delay_bound
        )

    def _step_cycle(self) -> None:
        halos = [
            self._border_table[:, src] if src.size else np.zeros((4, 0))
            for src in self._halo_src
        ]
        if self._conns:
            for conn, halo in zip(self._conns, halos):
                conn.send(("step", halo))
            results = [conn.recv() for conn in self._conns]
        else:
            results = [
                shard.step_cycle(halo) for shard, halo in zip(self._local, halos)
            ]
        for s, (border, rows, events) in enumerate(results):
            self._border_table[:, self._border_slices[s]] = border
            self._rows.extend(rows)
            self._events += events
        self._cycles_done += 1
        self._trace_cache = None
        self._collected = None

    def run_until(self, time: float) -> None:
        """Advance to real time ``time``, whole cycles at a time.

        A cycle is processed once every round in it is guaranteed closed
        (``phase_max + c·τ + 2·bound <= time``) — an analytic, draw- and
        shard-independent criterion, so every execution shape processes the
        same cycle set for a given ``time``.
        """
        if time < self._now:
            raise ValueError(f"cannot run backwards to {time} from {self._now}")
        while self._cycle_close_bound(self._cycles_done) <= time:
            self._step_cycle()
        self._now = time

    def close(self) -> None:
        """Shut down worker processes (no-op in-process)."""
        for conn in self._conns:
            try:
                conn.send(("close",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover
                proc.terminate()
        self._conns = []
        self._procs = []

    def __enter__(self) -> "ShardedKernelService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- reporting

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events

    @property
    def cycles_done(self) -> int:
        return self._cycles_done

    def _collect(self) -> Dict[str, np.ndarray]:
        if self._collected is None:
            if self._conns:
                for conn in self._conns:
                    conn.send(("collect",))
                parts = [conn.recv() for conn in self._conns]
            else:
                parts = [shard.collect() for shard in self._local]
            n = len(self.plan.names)
            merged = {
                key: np.zeros(n) for key in ("seg_start", "seg_value", "eps", "r")
            }
            stats = np.zeros((len(_STAT_FIELDS), n), dtype=np.int64)
            for part in parts:
                ranks = part["ranks"]
                for key in ("seg_start", "seg_value", "eps", "r"):
                    merged[key][ranks] = part[key]
                stats[:, ranks] = part["stats"]
            merged["stats"] = stats
            self._collected = merged
        return self._collected

    @property
    def trace(self) -> List[TraceRecord]:
        """The deterministically merged cross-shard trace."""
        if self._trace_cache is None:
            self._trace_cache = merge_rows([self._rows])
        return self._trace_cache

    @property
    def stats(self) -> Dict[str, ServerStats]:
        table = self._collect()["stats"]
        out: Dict[str, ServerStats] = {}
        for i, name in enumerate(self.plan.names):
            out[name] = ServerStats(
                **{field: int(table[f, i]) for f, field in enumerate(_STAT_FIELDS)}
            )
        return out

    def state_digest(self) -> int:
        """CRC32 over the merged post-run state arrays (shard-invariant)."""
        state = self._collect()
        return state_digest(
            self.plan.names,
            state["seg_start"],
            state["seg_value"],
            state["eps"],
            state["r"],
        )

    def snapshot(self) -> ServiceSnapshot:
        state = self._collect()
        t = self._now
        skews = np.array(self.plan.skews)
        deltas = np.array(self.plan.deltas)
        value = state["seg_value"] + (t - state["seg_start"]) * (1.0 + skews)
        error = state["eps"] + np.maximum(0.0, value - state["r"]) * deltas
        values: Dict[str, float] = {}
        errors: Dict[str, float] = {}
        offsets: Dict[str, float] = {}
        correct: Dict[str, bool] = {}
        for i, name in enumerate(self.plan.names):
            v = float(value[i])
            e = float(error[i])
            values[name] = v
            errors[name] = e
            offsets[name] = v - t
            correct[name] = (v - e) <= t <= (v + e)
        return ServiceSnapshot(
            time=t, values=values, errors=errors, offsets=offsets, correct=correct
        )

    def sample(self, times: Sequence[float]) -> List[ServiceSnapshot]:
        snapshots = []
        for t in times:
            self.run_until(t)
            snapshots.append(self.snapshot())
        return snapshots
