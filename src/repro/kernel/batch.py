"""Vectorized round kernels: interval construction, rule MM-2, rule IM-2.

Each function here is the array twin of a scalar decision in
:mod:`repro.core.mm` / :mod:`repro.core.im` / :mod:`repro.core.sync`,
processing one whole poll round for *all servers in a shard* at once:
replies are stacked as ``(n, k)`` arrays (row = polling server, column =
reply slot, already in arrival order), local state as ``(n,)`` arrays.

Bit-equivalence with the scalar oracles is load-bearing — the batched
engine's trace digests must match the heap engine's — so every arithmetic
expression preserves the scalar code's evaluation order (IEEE 754 addition
is not associative):

* transit leading edge: ``(C_j + E_j) + (1 + δ_i)·ξ`` (sync.py);
* MM-2 adoption error: ``E_j + factor·ξ`` (mm.py);
* IM-2 trailing ``(C_j − E_j) − C_i``, leading ``((C_j + E_j) + rtt) − C_i``
  (im.py), with the self interval appended *last* and ties at ``max``/``min``
  resolved to the first candidate in arrival order (``np.argmax`` /
  ``np.argmin`` semantics match Python's ``max``/``min``).

Validation mirrors the scalar types: NaN state or reply fields, negative
local error, and inverted transit intervals raise :class:`ValueError`
exactly where :class:`~repro.core.intervals.TimeInterval` construction
would have raised in the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "interval_edges",
    "transit_edges",
    "mm2_adoption_error",
    "MM2Verdicts",
    "mm2_eval",
    "IMRound",
    "im2_round",
    "SELF_SLOT",
]

#: Sentinel column index meaning "the server's own interval" in
#: :class:`IMRound` edge attributions (the scalar code's ``"self"``).
SELF_SLOT = -1


def _as_2d(name: str, array: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    out = np.asarray(array, dtype=np.float64)
    if out.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {out.shape}")
    return out


def interval_edges(
    values: np.ndarray, errors: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Rule MM-1 interval construction ``<C − E, C + E>``, elementwise.

    Raises:
        ValueError: On NaN inputs or negative errors — the conditions
            ``TimeInterval.from_center_error`` rejects.
    """
    values = np.asarray(values, dtype=np.float64)
    errors = np.asarray(errors, dtype=np.float64)
    if np.isnan(values).any() or np.isnan(errors).any():
        raise ValueError("interval edges must not be NaN")
    if (errors < 0.0).any():
        raise ValueError("maximum error must be non-negative")
    return values - errors, values + errors


def transit_edges(
    reply_values: np.ndarray,
    reply_errors: np.ndarray,
    rtts: np.ndarray,
    delta: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Reply intervals aged to the receipt instant (``Reply.transit_interval``).

    ``delta`` is the polling server's ``δ_i`` — shape ``(n,)`` or ``(n, 1)``,
    broadcast across that row's reply slots.

    Returns:
        ``(lo, hi)`` with ``lo = C_j − E_j`` and
        ``hi = (C_j + E_j) + (1 + δ_i)·ξ^i_j`` in the scalar evaluation
        order.

    Raises:
        ValueError: On NaN inputs or an inverted transit interval (possible
            when a reply claims a negative error), matching the scalar
            :class:`TimeInterval` constructor.
    """
    reply_values = np.asarray(reply_values, dtype=np.float64)
    reply_errors = np.asarray(reply_errors, dtype=np.float64)
    rtts = np.asarray(rtts, dtype=np.float64)
    delta = np.asarray(delta, dtype=np.float64)
    if delta.ndim == 1 and reply_values.ndim == 2:
        delta = delta[:, None]
    lo = reply_values - reply_errors
    hi = reply_values + reply_errors + (1.0 + delta) * rtts
    if np.isnan(lo).any() or np.isnan(hi).any():
        raise ValueError("interval edges must not be NaN")
    if (lo > hi).any():
        raise ValueError("interval trailing edge exceeds leading edge")
    return lo, hi


def mm2_adoption_error(
    reply_errors: np.ndarray,
    rtts: np.ndarray,
    delta: np.ndarray,
    *,
    inflate_rtt: bool = True,
) -> np.ndarray:
    """``E_j + (1 + δ_i)·ξ^i_j`` — the error inherited by adopting a reply.

    With ``inflate_rtt=False`` the raw ``ξ`` ablation of
    :class:`~repro.core.mm.MMPolicy` is reproduced.
    """
    reply_errors = np.asarray(reply_errors, dtype=np.float64)
    rtts = np.asarray(rtts, dtype=np.float64)
    delta = np.asarray(delta, dtype=np.float64)
    if delta.ndim == 1 and reply_errors.ndim == 2:
        delta = delta[:, None]
    factor = (1.0 + delta) if inflate_rtt else np.ones_like(delta)
    return reply_errors + factor * rtts


@dataclass(frozen=True)
class MM2Verdicts:
    """Vectorized rule MM-2 verdicts for an ``(n, k)`` block of replies.

    Attributes:
        consistent: Reply transit interval intersects the local interval.
        candidate: The adoption error ``E_j + factor·ξ`` per reply.
        accepts: Rule MM-2's predicate (consistency included) per reply.
    """

    consistent: np.ndarray
    candidate: np.ndarray
    accepts: np.ndarray


def mm2_eval(
    state_values: np.ndarray,
    state_errors: np.ndarray,
    delta: np.ndarray,
    reply_values: np.ndarray,
    reply_errors: np.ndarray,
    rtts: np.ndarray,
    *,
    inflate_rtt: bool = True,
    strict_improvement: bool = False,
) -> MM2Verdicts:
    """Evaluate rule MM-2 for every reply of a stacked round.

    Row ``i`` holds polling server ``S_i``'s local state ``(n,)`` arrays and
    its replies along axis 1.  Matches
    :meth:`repro.core.mm.MMPolicy.on_reply` decision-for-decision.

    Raises:
        ValueError: Where the scalar path would raise building its
            intervals: NaN anywhere, negative local error, or an inverted
            transit interval.
    """
    state_values = np.asarray(state_values, dtype=np.float64)
    state_errors = np.asarray(state_errors, dtype=np.float64)
    state_lo, state_hi = interval_edges(state_values, state_errors)
    transit_lo, transit_hi = transit_edges(reply_values, reply_errors, rtts, delta)
    consistent = (state_lo[:, None] <= transit_hi) & (
        transit_lo <= state_hi[:, None]
    )
    candidate = mm2_adoption_error(reply_errors, rtts, delta, inflate_rtt=inflate_rtt)
    if strict_improvement:
        improves = candidate < state_errors[:, None]
    else:
        improves = candidate <= state_errors[:, None]
    return MM2Verdicts(consistent, candidate, consistent & improves)


@dataclass(frozen=True)
class IMRound:
    """Vectorized rule IM-2 outcome for a stacked round.

    Attributes:
        a: ``max T_j`` per row (trailing edge of the intersection).
        b: ``min L_j`` per row (leading edge of the intersection).
        a_slot: Arrival-order slot defining ``a`` (:data:`SELF_SLOT` for the
            server's own interval).
        b_slot: Arrival-order slot defining ``b``.
        consistent: Rule IM-2's ``b >= a`` (or strict) verdict per row.
        offset: Clock adjustment ``(a + b)/2`` (or ``a``) per row.
        new_error: The reset's inherited error per row.
        new_value: ``C_i + offset`` per row.
    """

    a: np.ndarray
    b: np.ndarray
    a_slot: np.ndarray
    b_slot: np.ndarray
    consistent: np.ndarray
    offset: np.ndarray
    new_error: np.ndarray
    new_value: np.ndarray


def im2_round(
    state_values: np.ndarray,
    state_errors: np.ndarray,
    delta: np.ndarray,
    reply_values: np.ndarray,
    reply_errors: np.ndarray,
    rtts: np.ndarray,
    valid: Optional[np.ndarray] = None,
    *,
    include_self: bool = True,
    widen_both_edges: bool = False,
    reset_to: str = "midpoint",
    allow_point_intersection: bool = True,
) -> IMRound:
    """Evaluate rule IM-2 for a stacked round of aged replies.

    Replies must already be aged to the round close (the server does that,
    scalar and batched alike) and laid out in arrival order along axis 1 —
    tie-breaking at ``max T_j`` / ``min L_j`` picks the first candidate in
    that order, with the server's own interval considered last, exactly as
    :meth:`repro.core.im.IMPolicy.intersection` does.

    Args:
        valid: Optional ``(n, k)`` mask for ragged rounds (absent slots are
            excluded from the max/min).

    Raises:
        ValueError: On NaN inputs, negative local errors, a bad
            ``reset_to``, or a row with no candidates (no valid reply and
            ``include_self=False``) — the scalar ``intersection()`` errors.
    """
    if reset_to not in ("midpoint", "trailing"):
        raise ValueError(
            f"reset_to must be 'midpoint' or 'trailing', got {reset_to!r}"
        )
    state_values = np.asarray(state_values, dtype=np.float64)
    state_errors = np.asarray(state_errors, dtype=np.float64)
    delta = np.asarray(delta, dtype=np.float64)
    n = state_values.shape[0]
    shape = (n, np.asarray(reply_values).shape[1] if np.asarray(reply_values).ndim == 2 else 0)
    reply_values = _as_2d("reply_values", reply_values, shape)
    reply_errors = _as_2d("reply_errors", reply_errors, shape)
    rtts = _as_2d("rtts", rtts, shape)
    if np.isnan(state_values).any() or np.isnan(state_errors).any():
        raise ValueError("interval edges must not be NaN")
    if (state_errors < 0.0).any():
        raise ValueError("maximum error must be non-negative")
    if np.isnan(reply_values).any() or np.isnan(reply_errors).any() or np.isnan(rtts).any():
        raise ValueError("interval edges must not be NaN")

    if valid is None:
        valid = np.ones(shape, dtype=bool)
    else:
        valid = np.asarray(valid, dtype=bool)
    if not include_self and not valid.any(axis=1).all():
        raise ValueError("IM round with no replies and include_self=False")

    rtt_term = (1.0 + delta)[:, None] * rtts
    trailing = reply_values - reply_errors - state_values[:, None]
    if widen_both_edges:
        trailing = trailing - rtt_term
    leading = reply_values + reply_errors + rtt_term - state_values[:, None]

    # Masked slots must never define an edge; the self interval, when
    # included, is the last candidate (ties resolve to earlier arrivals).
    trailing = np.where(valid, trailing, -np.inf)
    leading = np.where(valid, leading, np.inf)
    if include_self:
        trailing = np.concatenate([trailing, -state_errors[:, None]], axis=1)
        leading = np.concatenate([leading, state_errors[:, None]], axis=1)

    a_slot = np.argmax(trailing, axis=1)
    b_slot = np.argmin(leading, axis=1)
    rows = np.arange(n)
    a = trailing[rows, a_slot]
    b = leading[rows, b_slot]
    if include_self:
        k = shape[1]
        a_slot = np.where(a_slot == k, SELF_SLOT, a_slot)
        b_slot = np.where(b_slot == k, SELF_SLOT, b_slot)
    consistent = (b >= a) if allow_point_intersection else (b > a)

    if reset_to == "midpoint":
        offset = (a + b) / 2.0
        new_error = (b - a) / 2.0
    else:
        offset = a
        new_error = b - a
    new_value = state_values + offset
    return IMRound(a, b, a_slot, b_slot, consistent, offset, new_error, new_value)
