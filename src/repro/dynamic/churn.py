"""Continuous edge churn: link-level membership noise as a process.

Generalizes :class:`~repro.service.churn.ChurnController` (which churns
*servers*) to the graph's edges: at exponentially distributed intervals a
random live edge is removed — subject to the
:class:`~repro.dynamic.topology.DynamicTopology` connectivity guard — and
restored after an exponentially distributed downtime with its original
delay class.  Unlike a :class:`~repro.faults.schedule.LinkFlap`, which
only marks a link down, edge churn changes neighbour sets: servers stop
polling across the removed edge and prune any poll already in flight on
it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulation.engine import SimulationEngine
from ..simulation.process import SimProcess
from .topology import DynamicTopology


@dataclass
class EdgeChurnStats:
    """Counters for edge-churn activity.

    Attributes:
        removed: Edges taken out.
        restored: Edges brought back.
        refused: Removal attempts vetoed by the connectivity guard.
        skipped: Ticks with no edge to churn.
    """

    removed: int = 0
    restored: int = 0
    refused: int = 0
    skipped: int = 0


class EdgeChurnController(SimProcess):
    """Drives remove/restore churn over the live edge set.

    Args:
        engine: The simulation engine.
        dynamic: The mutable topology layer (guard included).
        rng: Random stream for edge choice and downtime sampling.
        interval: Mean seconds between removal attempts (exponential).
        mean_downtime: Mean downtime per removed edge (exponential).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        dynamic: DynamicTopology,
        rng: np.random.Generator,
        *,
        interval: float = 60.0,
        mean_downtime: float = 45.0,
        name: str = "edge-churn",
    ) -> None:
        super().__init__(engine, name)
        if interval <= 0 or mean_downtime <= 0:
            raise ValueError("interval and mean_downtime must be positive")
        self.dynamic = dynamic
        self._rng = rng
        self.interval = float(interval)
        self.mean_downtime = float(mean_downtime)
        self.stats = EdgeChurnStats()

    def on_start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(self.interval))
        self.call_after(max(gap, 1e-6), self._tick)

    def _tick(self) -> None:
        edges = self.dynamic.edges()
        if not edges:
            self.stats.skipped += 1
        else:
            a, b = edges[int(self._rng.integers(len(edges)))]
            data = dict(self.dynamic.network.graph.edges[a, b])
            if self.dynamic.remove_edge(a, b):
                self.stats.removed += 1
                downtime = float(self._rng.exponential(self.mean_downtime))
                self.call_after(
                    max(downtime, 1e-6),
                    lambda a=a, b=b, data=data: self._restore(a, b, data),
                )
            else:
                self.stats.refused += 1
        self._schedule_next()

    def _restore(self, a: str, b: str, data: dict) -> None:
        # Mobility may have re-created (or a rewire re-removed) the edge
        # in the meantime; add_edge is a no-op when it already exists.
        if self.dynamic.add_edge(a, b, kind=data.get("kind")):
            self.stats.restored += 1
