"""Live topology mutation — Section 1.1's unstable membership, literally.

The paper assumes "a graph in which time servers are nodes and
communication paths are edges" that is fixed between discrete failures.
Section 1.1's caveat — "the set of servers making up the service is not
stable" — really means the graph itself never stops changing: servers
join and leave, links appear and disappear, and in an ad hoc setting
(Pabico, PAPERS.md) edges follow physical proximity.

:class:`DynamicTopology` makes the graph a first-class mutable object:
a thin policy layer over :class:`~repro.network.transport.Network`'s raw
edge mutation that

* keeps the *present* servers connected (a guard refuses removals that
  would disconnect them, mirroring the paper's standing assumption);
* re-runs :func:`~repro.network.topology.validate_topology` after every
  change, so a transiently disconnected state fails loudly with the
  isolated component named;
* notifies both endpoints of a removed edge via
  :meth:`~repro.service.server.TimeServer.neighbour_detached`, so a
  server whose neighbour vanished between request and reply prunes the
  pending slot instead of waiting out the round timeout;
* records every mutation in the simulation trace, so dynamic runs stay
  digest-deterministic.

Drivers sit on top: :class:`~repro.dynamic.churn.EdgeChurnController`
(continuous seeded churn), :class:`~repro.dynamic.mobility.MobilityProcess`
(waypoint proximity rewiring), and the
:class:`~repro.faults.schedule.EdgeChurn` /
:class:`~repro.faults.schedule.TopologyRewire` /
:class:`~repro.faults.schedule.MobilityTrace` schedule events interpreted
by the fault injector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from ..network.topology import validate_topology
from ..network.transport import Network

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..service.builder import SimulatedService
    from ..service.server import TimeServer
    from .mobility import WaypointMobility


Edge = Tuple[str, str]


def _norm(a: str, b: str) -> Edge:
    """Canonical (lexicographic) form of an undirected edge."""
    return (a, b) if a <= b else (b, a)


@dataclass
class DynamicTopologyStats:
    """Counters for live topology activity.

    Attributes:
        edges_added: Edges created (including churned edges restored).
        edges_removed: Edges removed.
        removals_refused: Removals the connectivity guard vetoed.
        rewires: Wholesale edge-set replacements executed.
        leaves: Node departures executed.
        leaves_refused: Departures vetoed (the node was a cut vertex).
        joins: Node rejoins executed.
    """

    edges_added: int = 0
    edges_removed: int = 0
    removals_refused: int = 0
    rewires: int = 0
    leaves: int = 0
    leaves_refused: int = 0
    joins: int = 0


class DynamicTopology:
    """Mutable-graph policy layer over a :class:`Network`.

    Args:
        network: The live transport whose graph is mutated.
        servers: Name → server map used for the present-set computation
            and for mid-round pruning notifications; may be empty (pure
            graph manipulation, e.g. in unit tests).
        trace: Optional :class:`~repro.simulation.trace.TraceRecorder`;
            every mutation is recorded under source ``"topology"`` so the
            run digest covers the topology history.
        guard_connectivity: Refuse edge removals / node departures that
            would disconnect the present servers (the paper's standing
            assumption).  Disable only to exercise the validator.
        validate: Re-run :func:`validate_topology` (restricted to present
            servers) after every mutation; a violation raises ``ValueError``
            naming the isolated component.
    """

    def __init__(
        self,
        network: Network,
        servers: Optional[Mapping[str, "TimeServer"]] = None,
        *,
        trace=None,
        guard_connectivity: bool = True,
        validate: bool = True,
    ) -> None:
        self.network = network
        self._servers: Dict[str, "TimeServer"] = dict(servers or {})
        self.trace = trace
        self.guard_connectivity = guard_connectivity
        self.validate = validate
        self.mobility: Optional["WaypointMobility"] = None
        self.stats = DynamicTopologyStats()
        # Edges stashed per departed node, restored on join.
        self._detached_edges: Dict[str, List[Tuple[str, str, dict]]] = {}

    @classmethod
    def for_service(cls, service: "SimulatedService", **kwargs) -> "DynamicTopology":
        """Wrap a built service's network, servers, and trace."""
        return cls(
            service.network, service.servers, trace=service.trace, **kwargs
        )

    # ------------------------------------------------------------- queries

    def present(self) -> List[str]:
        """Topology nodes whose server (if any is bound) has not departed."""
        names = []
        for name in self.network.graph.nodes:
            server = self._servers.get(name)
            if server is None or not server.departed:
                names.append(name)
        return sorted(names)

    def edges(self) -> List[Edge]:
        """The live edge set in canonical sorted form."""
        return sorted(_norm(a, b) for a, b in self.network.graph.edges)

    def check(self) -> None:
        """Validate the current graph (present servers must be connected).

        Raises:
            ValueError: Naming the isolated component when disconnected.
        """
        validate_topology(self.network.graph, present=self.present())

    # ----------------------------------------------------------- mutations

    def add_edge(self, a: str, b: str, *, kind: Optional[str] = None) -> bool:
        """Create edge ``(a, b)``; returns whether the graph changed."""
        if self.network.graph.has_edge(a, b):
            return False
        self.network.add_edge(a, b, kind=kind)
        self.stats.edges_added += 1
        self._record("edge_add", a=a, b=b)
        self._validate()
        return True

    def remove_edge(self, a: str, b: str, *, force: bool = False) -> bool:
        """Remove edge ``(a, b)``; returns whether the graph changed.

        The connectivity guard refuses (returns False) when the removal
        would disconnect the present servers.  ``force=True`` bypasses
        the guard — the subsequent validation then raises, naming the
        isolated component (use this to exercise the validator, with
        ``validate`` off to genuinely break the graph).
        """
        if not self.network.graph.has_edge(a, b):
            return False
        if not force and self.guard_connectivity and self._would_disconnect(a, b):
            self.stats.removals_refused += 1
            self._record("edge_remove_refused", a=a, b=b)
            return False
        self.network.remove_edge(a, b)
        self.stats.edges_removed += 1
        self._record("edge_remove", a=a, b=b)
        self._notify_detached(a, b)
        self._validate()
        return True

    def rewire(self, edges: Iterable[Edge]) -> int:
        """Replace the live edge set with ``edges``; returns changes made.

        Additions happen before removals so the connectivity guard sees
        the new edges when judging the old ones; removals the guard
        refuses stay — a minimal backbone of stale edges survives rather
        than disconnecting the service (an operator keeping a long-haul
        link up until the mesh re-forms).
        """
        graph = self.network.graph
        desired = {
            _norm(a, b)
            for a, b in edges
            if a != b and a in graph and b in graph
        }
        current = {_norm(a, b) for a, b in graph.edges}
        changed = 0
        for a, b in sorted(desired - current):
            changed += bool(self.add_edge(a, b))
        for a, b in sorted(current - desired):
            changed += bool(self.remove_edge(a, b))
        if changed:
            self.stats.rewires += 1
        return changed

    def leave(self, name: str) -> bool:
        """Depart a server and detach all its edges (stashed for rejoin).

        Refused (returns False) when the departure would disconnect the
        remaining present servers — the node is currently a cut vertex.
        """
        server = self._servers.get(name)
        if server is None or server.departed:
            return False
        graph = self.network.graph
        remaining = [n for n in self.present() if n != name]
        if self.guard_connectivity and len(remaining) > 1:
            view = graph.subgraph(remaining)
            if not nx.is_connected(view):
                self.stats.leaves_refused += 1
                self._record("leave_refused", server=name)
                return False
        stash = [
            (name, neighbour, dict(graph.edges[name, neighbour]))
            for neighbour in sorted(graph.neighbors(name))
        ]
        server.leave()
        for a, b, _data in stash:
            self.network.remove_edge(a, b)
            self._notify_detached(a, b)
        self._detached_edges[name] = stash
        self.stats.leaves += 1
        self._record("node_leave", server=name, detached=len(stash))
        self._validate()
        return True

    def join(
        self,
        name: str,
        *,
        initial_error: float = 1.0,
        edges: Optional[Iterable[Edge]] = None,
    ) -> bool:
        """Rejoin a departed server, re-attaching its edges.

        Args:
            name: The server to bring back.
            initial_error: ε assigned on rejoin (operator-set clock).
            edges: Explicit edges to attach instead of the stashed ones
                (a mobile server rarely comes back where it left).
        """
        server = self._servers.get(name)
        if server is None or not server.departed:
            return False
        if edges is not None:
            restore = [(a, b, {}) for a, b in edges]
        else:
            restore = self._detached_edges.pop(name, [])
        for a, b, data in restore:
            self.network.add_edge(a, b, kind=data.get("kind"))
        server.rejoin(initial_error)
        self.stats.joins += 1
        self._record("node_join", server=name, attached=len(restore))
        self._validate()
        return True

    def move(self, name: str, position: Tuple[float, float]) -> int:
        """Pin a server's mobility position and rewire proximity edges.

        Requires an attached mobility model (see
        :class:`~repro.dynamic.mobility.MobilityProcess`); raises
        ``RuntimeError`` otherwise.  Returns the number of edge changes.
        """
        if self.mobility is None:
            raise RuntimeError(
                f"cannot move {name!r}: no mobility model attached"
            )
        self.mobility.place(name, position)
        return self.rewire(self.mobility.desired_edges())

    # ------------------------------------------------------------ plumbing

    def _would_disconnect(self, a: str, b: str) -> bool:
        """Whether removing ``(a, b)`` disconnects the present servers."""
        graph = self.network.graph
        data = dict(graph.edges[a, b])
        graph.remove_edge(a, b)
        try:
            view = graph.subgraph(self.present())
            return view.number_of_nodes() > 1 and not nx.is_connected(view)
        finally:
            graph.add_edge(a, b, **data)

    def _notify_detached(self, a: str, b: str) -> None:
        for name, other in ((a, b), (b, a)):
            server = self._servers.get(name)
            if server is not None and not server.departed:
                server.neighbour_detached(other)

    def _validate(self) -> None:
        if self.validate:
            self.check()

    def _record(self, kind: str, **data) -> None:
        if self.trace is not None:
            self.trace.record(self.network.engine.now, kind, "topology", **data)
