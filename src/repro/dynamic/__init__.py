"""Dynamic networks: live topology mutation, mobility, and local skew.

The paper's graph is fixed between discrete failures; this package takes
Section 1.1's unstable membership literally and makes the graph itself a
first-class mutable object under test — seeded edge churn, node
join/leave, waypoint mobility — plus the gradient (local-skew) policy arm
and measurement the dynamic-network literature says is the right
correctness lens for that regime.
"""

from .churn import EdgeChurnController, EdgeChurnStats
from .gradient import GradientPolicy
from .mobility import MobilityProcess, WaypointMobility
from .skew import LocalSkewMonitor, LocalSkewStats
from .topology import DynamicTopology, DynamicTopologyStats

__all__ = [
    "DynamicTopology",
    "DynamicTopologyStats",
    "EdgeChurnController",
    "EdgeChurnStats",
    "GradientPolicy",
    "LocalSkewMonitor",
    "LocalSkewStats",
    "MobilityProcess",
    "WaypointMobility",
]
