"""Local-skew measurement over the live edge set.

The gradient literature's correctness lens: for every edge ``(i, j)``
that exists *right now*, how far apart are ``C_i`` and ``C_j``?
:class:`LocalSkewMonitor` samples that quantity on a fixed grid against a
stated bound, re-reading the (mutable) graph every sample so churned and
mobility-created edges are always the ones being judged.  The breach
counters are what the dynamic gauntlet's acceptance criterion is stated
in: the gradient arm must hold the bound that a plain arm violates.

The same quantity is also exported live as
``repro_edge_local_skew_seconds`` by the telemetry sampler (see
:mod:`repro.telemetry.instruments`); this monitor is the experiment-side
accumulator, usable without a metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from ..simulation.engine import SimulationEngine
from ..simulation.process import SimProcess

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..service.builder import SimulatedService


@dataclass
class LocalSkewStats:
    """Accumulated local-skew observations.

    Attributes:
        samples: Edge-samples taken (per live edge, per grid tick).
        breaches: Edge-samples whose skew exceeded the bound.
        max_skew: Largest skew ever observed on any live edge.
        breached_edges: Per-edge breach counts, keyed ``"A-B"``.
    """

    samples: int = 0
    breaches: int = 0
    max_skew: float = 0.0
    breached_edges: Dict[str, int] = field(default_factory=dict)


class LocalSkewMonitor(SimProcess):
    """Samples ``|C_i - C_j|`` across currently live edges vs a bound.

    Args:
        engine: The simulation engine.
        service: The built service (graph + servers are read live).
        bound: The stated local-skew bound in seconds.
        period: Sampling period.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        service: "SimulatedService",
        *,
        bound: float,
        period: float = 5.0,
        name: str = "localskew",
    ) -> None:
        super().__init__(engine, name)
        if bound <= 0 or period <= 0:
            raise ValueError("bound and period must be positive")
        self.service = service
        self.bound = float(bound)
        self.period = float(period)
        self.stats = LocalSkewStats()

    def on_start(self) -> None:
        self.every(self.period, self.check_now, first_at=self.now + self.period)

    def check_now(self) -> None:
        """Take one sample over every live edge between present servers."""
        values: Dict[str, float] = {}
        for name, server in self.service.servers.items():
            if server.policy is None or server.departed:
                continue
            values[name] = server.clock_value()
        stats = self.stats
        for a, b in sorted(
            (min(x, y), max(x, y)) for x, y in self.service.network.graph.edges
        ):
            if a not in values or b not in values:
                continue
            skew = abs(values[a] - values[b])
            stats.samples += 1
            if skew > stats.max_skew:
                stats.max_skew = skew
            if skew > self.bound:
                stats.breaches += 1
                edge = f"{a}-{b}"
                stats.breached_edges[edge] = stats.breached_edges.get(edge, 0) + 1
