"""Gradient-aware interval selection: bounding *local* skew under churn.

Kuhn/Lenzen/Locher/Oshman's "Optimal Gradient Clock Synchronization in
Dynamic Networks" (PAPERS.md) makes the case that in a never-stable graph
the meaningful guarantee is the **local skew** — the clock difference
across currently existing edges — not the global error: applications
coordinate with whoever is adjacent *right now*.

:class:`GradientPolicy` transplants that lens onto the paper's interval
machinery.  Rule IM-2's intersection ``[a, b]`` is computed exactly as in
:class:`~repro.core.im.IMPolicy` — Theorem 5's correctness argument only
needs the reset interval to contain the true time, which holds for *any*
reset point ``c ∈ [a, b]`` with inherited error ``max(c - a, b - c)``.
The midpoint is the choice that minimises the new global error; the
gradient choice instead pulls ``c`` toward the median of the current
neighbours' offset estimates (the centre ``(T_j + L_j)/2`` of each
transformed reply interval), clamped so the inherited error never grows
by more than a configured margin.  The selection privileges agreement
with the present neighbour set, which is exactly what keeps the skew
across live edges bounded while membership and edges churn underneath.

The cost is explicit and small: with ``error_margin`` ``m``, the
inherited error is at most ``(1 + m)·(b - a)/2`` versus the midpoint's
``(b - a)/2``.  Inconsistent rounds (empty intersection) are delegated
to the base IM policy unchanged, so the Section 3 recovery machinery
behaves identically.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.im import IMPolicy
from ..core.sync import (
    LocalState,
    Reply,
    ResetDecision,
    RoundOutcome,
    SynchronizationPolicy,
)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class GradientPolicy(SynchronizationPolicy):
    """IM with neighbour-median reset selection inside the intersection.

    Args:
        error_margin: Fraction ``m`` of the intersection half-width the
            reset point may stray from the midpoint while chasing the
            neighbour median: ``c ∈ [mid - m·h, mid + m·h]`` where
            ``h = (b - a)/2``.  ``0`` degenerates to plain IM; ``1``
            allows any point of the intersection (inherited error up to
            ``b - a``, the trailing-reset worst case).
        base: The IM policy supplying transformation, intersection, and
            the inconsistent-round behaviour; defaults to the paper's
            configuration.
    """

    name = "gradient"
    incremental = False

    def __init__(
        self,
        *,
        error_margin: float = 0.5,
        base: Optional[IMPolicy] = None,
    ) -> None:
        if not 0.0 <= error_margin <= 1.0:
            raise ValueError(
                f"error_margin must be in [0, 1], got {error_margin}"
            )
        self.error_margin = float(error_margin)
        self.base = base if base is not None else IMPolicy()

    def on_round_complete(
        self, state: LocalState, replies: Sequence[Reply]
    ) -> RoundOutcome:
        outcome = self.base.on_round_complete(state, replies)
        if not outcome.consistent or outcome.decision is None or not replies:
            # Inconsistency handling (and the degenerate no-reply round)
            # is IM's, unchanged.
            return outcome
        a, b, source = self.base.intersection(state, replies)
        mid = (a + b) / 2.0
        half = (b - a) / 2.0
        # Offset estimate per neighbour: the centre of its transformed
        # interval, C_j - C_i + (1 + δ_i)·ξ^i_j / 2 — where the local
        # clock thinks the neighbour sits.  The median is robust to one
        # outlier neighbour dragging the service around.
        centres = [
            (tr.trailing + tr.leading) / 2.0
            for tr in (self.base.transform(state, reply) for reply in replies)
        ]
        span = self.error_margin * half
        target = _median(centres)
        chosen = min(max(target, mid - span), mid + span)
        error = max(chosen - a, b - chosen)
        decision = ResetDecision(
            clock_value=state.clock_value + chosen,
            inherited_error=error,
            source=source,
        )
        return RoundOutcome(consistent=True, decision=decision)
