"""Waypoint mobility: proximity-driven topology for ad hoc time service.

Pabico's "Synchronization of ad hoc Clock Networks" (PAPERS.md) motivates
the workload: servers are mobile hosts, and a communication path exists
exactly while two hosts are within radio range.  The classic random
waypoint model drives the motion — each server walks at constant speed
toward a uniformly drawn waypoint, draws a fresh one on arrival — and the
induced topology is the proximity graph (an edge per pair within
``radius``).

:class:`WaypointMobility` is the pure model (positions, waypoints,
proximity edges; deterministic given its RNG stream and the fixed sorted
iteration order).  :class:`MobilityProcess` binds it to the simulation:
every ``period`` it advances the motion and rewires the live graph
through :class:`~repro.dynamic.topology.DynamicTopology`, whose
connectivity guard retains a minimal backbone of stale edges whenever the
proximity graph alone would disconnect the present servers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..simulation.engine import SimulationEngine
from ..simulation.process import SimProcess
from .topology import DynamicTopology, Edge

Position = Tuple[float, float]


class WaypointMobility:
    """Random-waypoint motion over the unit square (scaled by ``size``).

    Args:
        names: The mobile servers; iteration is always over the sorted
            list, so draws are reproducible for a given RNG stream.
        rng: Seeded generator for initial positions and waypoints.
        radius: Radio range — pairs at most this far apart get an edge.
        speed: Motion speed in plane units per simulated second.
        size: Side length of the square arena.
    """

    def __init__(
        self,
        names: Sequence[str],
        rng: np.random.Generator,
        *,
        radius: float = 0.45,
        speed: float = 0.003,
        size: float = 1.0,
    ) -> None:
        if radius <= 0 or speed < 0 or size <= 0:
            raise ValueError("radius and size must be positive, speed >= 0")
        self._names = sorted(str(name) for name in names)
        self._rng = rng
        self.radius = float(radius)
        self.speed = float(speed)
        self.size = float(size)
        self._pos: Dict[str, Position] = {}
        self._target: Dict[str, Position] = {}
        for name in self._names:
            self._pos[name] = self._draw_point()
            self._target[name] = self._draw_point()

    def _draw_point(self) -> Position:
        return (
            float(self._rng.uniform(0.0, self.size)),
            float(self._rng.uniform(0.0, self.size)),
        )

    def __contains__(self, name: str) -> bool:
        return name in self._pos

    # -------------------------------------------------------------- motion

    def position(self, name: str) -> Position:
        """Current position of ``name``."""
        return self._pos[name]

    def place(self, name: str, position: Position) -> None:
        """Pin ``name`` at ``position`` (trace replay); motion resumes
        toward a freshly drawn waypoint on the next :meth:`step`."""
        if name not in self._pos:
            raise KeyError(f"{name!r} is not a mobile server")
        self._pos[name] = (float(position[0]), float(position[1]))
        self._target[name] = self._draw_point()

    def step(self, dt: float) -> None:
        """Advance every server ``dt`` seconds along its waypoint path."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        budget = self.speed * dt
        for name in self._names:
            remaining = budget
            x, y = self._pos[name]
            while remaining > 0:
                tx, ty = self._target[name]
                dx, dy = tx - x, ty - y
                dist = (dx * dx + dy * dy) ** 0.5
                if dist <= remaining:
                    x, y = tx, ty
                    remaining -= dist
                    self._target[name] = self._draw_point()
                    if dist == 0.0:
                        break
                else:
                    x += dx * remaining / dist
                    y += dy * remaining / dist
                    remaining = 0.0
            self._pos[name] = (x, y)

    # ------------------------------------------------------------ topology

    def desired_edges(self) -> List[Edge]:
        """The proximity graph: every pair within ``radius``, sorted."""
        edges: List[Edge] = []
        names = self._names
        for i in range(len(names)):
            xi, yi = self._pos[names[i]]
            for j in range(i + 1, len(names)):
                xj, yj = self._pos[names[j]]
                if (xi - xj) ** 2 + (yi - yj) ** 2 <= self.radius**2:
                    edges.append((names[i], names[j]))
        return edges


class MobilityProcess(SimProcess):
    """Drives a :class:`WaypointMobility` model against the live graph.

    Every ``period`` seconds the model advances and the proximity graph
    replaces the live edge set via
    :meth:`DynamicTopology.rewire` (guard-protected, trace-recorded).
    Attaching the process also installs the model as
    ``dynamic.mobility``, which is what lets
    :class:`~repro.faults.schedule.MobilityTrace` events re-place servers
    mid-run.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        dynamic: DynamicTopology,
        model: WaypointMobility,
        *,
        period: float = 20.0,
        name: str = "mobility",
    ) -> None:
        super().__init__(engine, name)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.dynamic = dynamic
        self.model = model
        self.period = float(period)
        dynamic.mobility = model

    def on_start(self) -> None:
        # Align the graph with the model's initial placement at once, then
        # rewire on the period grid.
        self.dynamic.rewire(self.model.desired_edges())
        self.every(self.period, self._tick)

    def _tick(self) -> None:
        self.model.step(self.period)
        self.dynamic.rewire(self.model.desired_edges())
