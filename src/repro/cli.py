"""Command-line interface.

Main subcommands::

    python -m repro simulate   # build and run a service from flags
    python -m repro figures    # regenerate the paper's figures
    python -m repro experiment # run any experiment module by name
    python -m repro figure1    # instrumented Figure 1 (telemetry export)
    python -m repro top        # live text dashboard over a running sim

``simulate`` is the workhorse: it assembles a topology, a clock population,
and a synchronization policy from flags, runs for the requested simulated
duration, and prints the final service state (optionally exporting the
sampled series to CSV/JSON).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .analysis.export import snapshots_to_csv, snapshots_to_json
from .analysis.plots import render_intervals, render_table
from .analysis.report import service_report
from .baselines import FirstReplyPolicy, LamportMaxPolicy, MeanPolicy, MedianPolicy
from .byzantine import FaultBudgetConfig, FaultBudgetController
from .core.ft_im import FTIMPolicy
from .core.im import IMPolicy
from .core.mm import MMPolicy
from .core.recovery import ThirdServerRecovery
from .experiments import (
    ablations,
    blackout_gauntlet,
    chaos_soak,
    churn as churn_experiment,
    cold_start,
    correctness,
    delay_asymmetry,
    discipline,
    drift_recovery,
    dynamic_gauntlet,
    failures,
    figure1,
    figure2,
    figure3,
    figure3_liars,
    figure4,
    figure4_repair,
    flash_crowd,
    live_gauntlet,
    mitm_gauntlet,
    overhead,
    partition,
    quantization,
    scale_gauntlet,
    tenfold,
    theorem4,
    topology_study,
    theorem8,
    theorem_bounds,
)
from .network.delay import UniformDelay
from .network.topology import full_mesh, line, random_connected, ring, star, two_level_internet
from .recovery import SelfStabilizingRecovery
from .security import SecurityConfig
from .service.builder import ServerSpec, build_service
from .service.churn import ChurnController
from .simulation.rng import RngRegistry
from .telemetry import ServiceTelemetry, render_dashboard, run_top

POLICIES = {
    "mm": MMPolicy,
    "im": IMPolicy,
    "max": LamportMaxPolicy,
    "median": MedianPolicy,
    "mean": MeanPolicy,
    "first": FirstReplyPolicy,
}

EXPERIMENTS = {
    "figure1": figure1.main,
    "figure2": figure2.main,
    "figure3": figure3.main,
    "figure3-liars": figure3_liars.main,
    "figure4": figure4.main,
    "figure4-repair": figure4_repair.main,
    "flash-crowd": flash_crowd.main,
    "theorem4": theorem4.main,
    "theorem8": theorem8.main,
    "theorem-bounds": theorem_bounds.main,
    "tenfold": tenfold.main,
    "recovery": drift_recovery.main,
    "partition": partition.main,
    "quantization": quantization.main,
    "topology": topology_study.main,
    "churn": churn_experiment.main,
    "cold-start": cold_start.main,
    "discipline": discipline.main,
    "failures": failures.main,
    "overhead": overhead.main,
    "correctness": correctness.main,
    "asymmetry": delay_asymmetry.main,
    "ablations": ablations.main,
    "chaos-soak": chaos_soak.main,
    "dynamic-gauntlet": dynamic_gauntlet.main,
    "blackout-gauntlet": blackout_gauntlet.main,
    "mitm-gauntlet": mitm_gauntlet.main,
    "live-gauntlet": live_gauntlet.main,
    "scale-gauntlet": scale_gauntlet.main,
}


def _build_topology(args: argparse.Namespace):
    if args.topology == "mesh":
        return full_mesh(args.servers)
    if args.topology == "ring":
        return ring(args.servers)
    if args.topology == "line":
        return line(args.servers)
    if args.topology == "star":
        return star(args.servers)
    if args.topology == "internet":
        networks = max(2, args.servers // 4)
        per = max(2, args.servers // networks)
        return two_level_internet(networks, per)
    if args.topology == "random":
        rng = RngRegistry(seed=args.seed).stream("topology")
        return random_connected(args.servers, 0.3, rng)
    raise SystemExit(f"unknown topology {args.topology!r}")


def cmd_simulate(args: argparse.Namespace) -> int:
    """The ``simulate`` subcommand."""
    telemetry = (
        ServiceTelemetry(sample_period=args.tau)
        if args.telemetry_out
        else None
    )
    graph = _build_topology(args)
    names = sorted(graph.nodes)
    n = len(names)
    specs = []
    for k, name in enumerate(names):
        if args.reference > 0 and k < args.reference:
            specs.append(ServerSpec(name, reference=True, initial_error=0.001))
            continue
        skew = (
            args.fill * args.delta * (2.0 * k / (n - 1) - 1.0) if n > 1 else 0.0
        )
        specs.append(
            ServerSpec(
                name,
                delta=args.delta,
                skew=skew,
                rate_tracking=args.rate_tracking,
                discipline=args.discipline,
                self_stabilizing=args.self_stabilizing,
                byzantine_tolerant=args.byzantine_tolerant,
                holdover=args.holdover,
            )
        )
    recovery_factory = None
    if args.byzantine_tolerant or args.self_stabilizing:
        recovery_factory = lambda name: SelfStabilizingRecovery()  # noqa: E731
    elif args.recovery:
        recovery_factory = lambda name: ThirdServerRecovery()  # noqa: E731
    policy = None
    policy_factory = None
    if args.byzantine_tolerant:
        # FT-IM is the tolerant policy; each server gets its own adaptive
        # budget controller seeded at --fault-budget.
        budget = max(0, args.fault_budget)
        policy_factory = lambda name: FTIMPolicy(  # noqa: E731
            fault_budget=FaultBudgetController(
                FaultBudgetConfig(initial=budget, minimum=min(1, budget))
            )
        )
    else:
        policy = POLICIES[args.policy]()
    service = build_service(
        graph,
        specs,
        policy=policy,
        policy_factory=policy_factory,
        tau=args.tau,
        seed=args.seed,
        lan_delay=UniformDelay(args.one_way),
        wan_delay=UniformDelay(args.one_way * 5),
        recovery_factory=recovery_factory,
        trace_enabled=True,
        telemetry=telemetry,
        security=SecurityConfig() if args.authenticated else None,
    )
    if args.churn:
        controller = ChurnController(
            service.engine,
            [s for s in service.servers.values() if s.policy is not None],
            service.rng.stream("churn"),
            interval=args.tau * 4,
            mean_downtime=args.tau * 2,
            rejoin_error=1.0,
        )
        controller.start()

    horizon = args.hours * 3600.0
    sample_count = max(2, args.samples)
    step = horizon / (sample_count - 1)
    snapshots = service.sample([step * k for k in range(sample_count)])
    snap = snapshots[-1]

    policy_label = "FT-IM" if args.byzantine_tolerant else args.policy.upper()
    print(
        f"{policy_label} on {args.topology} ({n} servers), "
        f"τ={args.tau:g}s, ξ={2 * args.one_way:g}s, after {args.hours:g} h:"
    )
    rows = [
        [
            name,
            snap.values[name],
            snap.errors[name],
            snap.offsets[name],
            snap.correct[name],
        ]
        for name in names
    ]
    print(
        render_table(
            ["server", "clock", "error E", "true offset", "correct"],
            rows,
            precision=6,
        )
    )
    print(
        f"asynchronism {snap.asynchronism * 1e3:.2f} ms | "
        f"consistent {snap.consistent} | all correct {snap.all_correct}"
    )
    if args.diagram:
        print(render_intervals(snap.intervals(), true_time=snap.time))
    if args.report:
        print()
        print(service_report(service, include_diagram=False))
    if args.export_csv:
        written = snapshots_to_csv(snapshots, args.export_csv)
        print(f"wrote {written} rows to {args.export_csv}")
    if args.export_json:
        written = snapshots_to_json(snapshots, args.export_json)
        print(f"wrote {written} snapshots to {args.export_json}")
    if telemetry is not None:
        paths = telemetry.write(args.telemetry_out)
        print(f"wrote telemetry ({', '.join(sorted(paths))}) to {args.telemetry_out}")
    return 0 if snap.all_correct else 1


def cmd_figures(args: argparse.Namespace) -> int:
    """The ``figures`` subcommand."""
    mains = {
        "1": figure1.main,
        "2": figure2.main,
        "3": figure3.main,
        "4": figure4.main,
    }
    targets = sorted(mains) if args.which == "all" else [args.which]
    for index, which in enumerate(targets):
        if index:
            print("\n" + "=" * 72 + "\n")
        mains[which]()
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """The ``experiment`` subcommand."""
    if args.name == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    runner = EXPERIMENTS.get(args.name)
    if runner is None:
        print(
            f"unknown experiment {args.name!r}; try: "
            + ", ".join(sorted(EXPERIMENTS)),
            file=sys.stderr,
        )
        return 2
    runner()
    return 0


def cmd_figure1(args: argparse.Namespace) -> int:
    """The ``figure1`` subcommand: the instrumented Figure 1 run.

    Unlike ``figures 1`` (the faithful, synchronization-free figure),
    this runs Figure 1's clock population under rule IM with the full
    telemetry plane attached, prints the dashboard's final frame, and —
    with ``--telemetry-out`` — exports the Prometheus snapshot, the span
    JSONL, and the summary for offline inspection.
    """
    result, service, telemetry = figure1.run_instrumented(
        tau=args.tau, seed=args.seed, sample_period=args.tau
    )
    print("Figure 1 servers under rule IM — instrumented run")
    for snap, diagram in zip(result.snapshots, result.diagrams):
        print(f"\n  t = {snap.time:.0f} s")
        for line in diagram.splitlines():
            print("   ", line)
    print()
    telemetry.sampler.sample_now()
    print(render_dashboard(service, telemetry))
    if args.telemetry_out:
        paths = telemetry.write(
            args.telemetry_out,
            summary_extra={"experiment": "figure1", "seed": args.seed},
            time=service.engine.now,
        )
        print(
            f"\nwrote telemetry ({', '.join(sorted(paths))}) "
            f"to {args.telemetry_out}"
        )
    print(f"\nAll intervals contain the true time: {result.all_correct}")
    return 0 if result.all_correct else 1


def cmd_top(args: argparse.Namespace) -> int:
    """The ``top`` subcommand: a live text dashboard over a running sim."""
    telemetry = ServiceTelemetry(sample_period=args.refresh)
    graph = _build_topology(args)
    names = sorted(graph.nodes)
    n = len(names)
    specs = [
        ServerSpec(
            name,
            delta=args.delta,
            skew=(
                args.fill * args.delta * (2.0 * k / (n - 1) - 1.0)
                if n > 1
                else 0.0
            ),
        )
        for k, name in enumerate(names)
    ]
    service = build_service(
        graph,
        specs,
        policy=POLICIES[args.policy](),
        tau=args.tau,
        seed=args.seed,
        lan_delay=UniformDelay(args.one_way),
        wan_delay=UniformDelay(args.one_way * 5),
        trace_enabled=True,
        telemetry=telemetry,
    )
    frames = run_top(
        service,
        telemetry,
        horizon=args.horizon,
        refresh=args.refresh,
        interactive=sys.stdout.isatty() and not args.no_clear,
    )
    print(f"\n{frames} frames over {args.horizon:g} simulated seconds.")
    return 0


def cmd_figure3_liars(args: argparse.Namespace) -> int:
    """The ``figure3-liars`` subcommand: the Byzantine liar gauntlet."""
    return 0 if figure3_liars.main(json_path=args.json) else 1


def cmd_flash_crowd(args: argparse.Namespace) -> int:
    """The ``flash-crowd`` subcommand: overload vs the sync plane."""
    if not args.seeds:
        print("flash-crowd: need at least one seed", file=sys.stderr)
        return 2
    ok = flash_crowd.main(json_path=args.json, seeds=args.seeds)
    return 0 if ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """The ``chaos`` subcommand: seeded fault storms with the oracle on."""
    if args.horizon <= 0 or args.tau <= 0:
        print("chaos: --horizon and --tau must be positive", file=sys.stderr)
        return 2
    if args.servers < 3:
        print("chaos: --servers must be at least 3", file=sys.stderr)
        return 2
    failures_seen = 0
    rows = []
    for seed in range(args.seeds):
        for policy_name in [p.upper() for p in args.policies]:
            telemetry = (
                ServiceTelemetry(spans=False, sample_period=args.tau)
                if args.telemetry_out
                else None
            )
            outcome = chaos_soak.run_soak(
                policy_name,
                seed,
                n=args.servers,
                tau=args.tau,
                horizon=args.horizon,
                telemetry=telemetry,
            )
            if telemetry is not None:
                run_dir = os.path.join(
                    args.telemetry_out, f"{policy_name.lower()}-seed{seed}"
                )
                telemetry.write(
                    run_dir,
                    summary_extra={
                        "policy": policy_name,
                        "seed": seed,
                        "violations": outcome.violations,
                        "exemptions": outcome.exemptions,
                    },
                )
            failures_seen += outcome.violations
            rows.append(
                [
                    policy_name,
                    seed,
                    outcome.events_applied,
                    outcome.checks,
                    outcome.violations,
                    outcome.exemptions,
                    f"{outcome.survival_rate:.3f}",
                    f"{outcome.schedule_signature:08x}",
                    f"{outcome.trace_digest:08x}",
                ]
            )
    print(
        f"chaos soak: {args.seeds} seed(s) x {args.policies} on a "
        f"{args.servers}-mesh, {args.horizon:g}s horizon"
    )
    print(
        render_table(
            [
                "policy",
                "seed",
                "faults",
                "checks",
                "violations",
                "exempt",
                "survival",
                "schedule sig",
                "trace digest",
            ],
            rows,
        )
    )
    if args.compare:
        comparison = chaos_soak.compare_hardening(
            args.seed, n=args.servers, tau=args.tau, horizon=args.horizon
        )
        print(
            f"\nhardening payoff vs Byzantine {comparison.liar} + 30% loss: "
            f"inconsistencies {comparison.baseline_inconsistencies} (plain) "
            f"-> {comparison.hardened_inconsistencies} (hardened), "
            f"worst honest E {comparison.baseline_worst_error:.3f} -> "
            f"{comparison.hardened_worst_error:.3f}, "
            f"{comparison.hardened_quarantines} quarantines"
        )
    if failures_seen:
        print(f"\n{failures_seen} invariant violation(s)!", file=sys.stderr)
        return 1
    print("\nzero invariant violations for non-faulty servers.")
    return 0


def cmd_blackout_gauntlet(args: argparse.Namespace) -> int:
    """The ``blackout-gauntlet`` subcommand: holdover vs free-running MM."""
    if not args.seeds:
        print("blackout-gauntlet: need at least one seed", file=sys.stderr)
        return 2
    ok = blackout_gauntlet.main(
        seeds=args.seeds,
        json_path=args.json,
        telemetry_dir=args.telemetry_out,
    )
    return 0 if ok else 1


def cmd_mitm_gauntlet(args: argparse.Namespace) -> int:
    """The ``mitm-gauntlet`` subcommand: on-path adversary vs defenses."""
    if not args.seeds:
        print("mitm-gauntlet: need at least one seed", file=sys.stderr)
        return 2
    ok = mitm_gauntlet.main(
        seeds=args.seeds,
        json_path=args.json,
        telemetry_dir=args.telemetry_out,
    )
    return 0 if ok else 1


def cmd_live_gauntlet(args: argparse.Namespace) -> int:
    """The ``live-gauntlet`` subcommand: real-socket cluster under chaos."""
    if not args.seeds:
        print("live-gauntlet: need at least one seed", file=sys.stderr)
        return 2
    if args.duration <= 0:
        print("live-gauntlet: --duration must be positive", file=sys.stderr)
        return 2
    ok = live_gauntlet.main(
        seeds=args.seeds,
        json_path=args.json,
        telemetry_dir=args.telemetry_out,
        duration=args.duration,
    )
    return 0 if ok else 1


def cmd_dynamic_gauntlet(args: argparse.Namespace) -> int:
    """The ``dynamic-gauntlet`` subcommand: topology churn vs local skew."""
    if not args.seeds:
        print("dynamic-gauntlet: need at least one seed", file=sys.stderr)
        return 2
    if args.horizon <= 0:
        print("dynamic-gauntlet: --horizon must be positive", file=sys.stderr)
        return 2
    ok = dynamic_gauntlet.main(
        seeds=args.seeds,
        horizon=args.horizon,
        json_path=args.json,
        telemetry_dir=args.telemetry_out,
    )
    return 0 if ok else 1


def cmd_scale_gauntlet(args: argparse.Namespace) -> int:
    """The ``scale-gauntlet`` subcommand: MM vs IM at 1k–50k servers."""
    if not args.sizes or any(size < 1 for size in args.sizes):
        print("scale-gauntlet: --sizes must be positive", file=sys.stderr)
        return 2
    if args.shards < 1 or args.processes < 0:
        print(
            "scale-gauntlet: --shards must be >= 1 and --processes >= 0",
            file=sys.stderr,
        )
        return 2
    ok = scale_gauntlet.main(
        sizes=args.sizes,
        seeds=args.seeds,
        shards=args.shards,
        processes=args.processes,
        tau=args.tau,
        cycles=args.cycles,
        json_path=args.json,
    )
    return 0 if ok else 1


def cmd_profile(args: argparse.Namespace) -> int:
    """The ``profile`` subcommand: cProfile a seeded figure-1 workload.

    Runs the scalar engine on the benchmark mesh so kernel speedups are
    attributable function by function; prints the top-N hot functions and
    optionally writes them as JSON.
    """
    import cProfile
    import json as json_module
    import pstats

    if args.servers < 2 or args.horizon <= 0 or args.tau <= 0:
        print(
            "profile: need --servers >= 2 and positive --horizon/--tau",
            file=sys.stderr,
        )
        return 2
    policy = POLICIES[args.policy]()
    specs = [
        ServerSpec(
            name=f"S{k + 1}",
            delta=1e-5,
            skew=((-1) ** k) * 1e-5 * 0.8 * (k + 1) / args.servers,
            initial_error=0.002 + 0.001 * k,
        )
        for k in range(args.servers)
    ]
    service = build_service(
        full_mesh(args.servers),
        specs,
        policy=policy,
        tau=args.tau,
        seed=args.seed,
        lan_delay=UniformDelay(0.01),
        trace_enabled=False,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    service.run_until(args.horizon)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    total_time = sum(row[2] for row in stats.stats.values())
    rows = []
    for (filename, lineno, funcname), (
        ncalls,
        _primitive,
        tottime,
        cumtime,
        _callers,
    ) in sorted(stats.stats.items(), key=lambda item: -item[1][2]):
        rows.append(
            {
                "function": funcname,
                "location": f"{os.path.basename(filename)}:{lineno}",
                "ncalls": ncalls,
                "tottime": round(tottime, 6),
                "cumtime": round(cumtime, 6),
                "tottime_pct": round(100.0 * tottime / total_time, 2)
                if total_time
                else 0.0,
            }
        )
        if len(rows) >= args.top:
            break
    events = service.engine.events_processed
    print(
        f"profile: {args.policy.upper()} full_mesh({args.servers}), "
        f"τ={args.tau:g}s, horizon {args.horizon:g}s, seed {args.seed} — "
        f"{events} events, {total_time:.3f}s profiled"
    )
    print(
        render_table(
            ["function", "location", "ncalls", "tottime", "cumtime", "tot%"],
            [
                [
                    row["function"],
                    row["location"],
                    row["ncalls"],
                    f"{row['tottime']:.4f}",
                    f"{row['cumtime']:.4f}",
                    f"{row['tottime_pct']:.1f}",
                ]
                for row in rows
            ],
        )
    )
    if args.json:
        report = {
            "workload": {
                "policy": args.policy.upper(),
                "servers": args.servers,
                "tau": args.tau,
                "horizon": args.horizon,
                "seed": args.seed,
                "events": events,
            },
            "total_profiled_seconds": round(total_time, 6),
            "hot_functions": rows,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """The ``sweep`` subcommand: map the steady-state response surface."""
    from .sweeps import ParameterGrid, mesh_steady_state, run_sweep

    grid = ParameterGrid.of(
        policy=args.policies,
        n=args.sizes,
        tau=args.taus,
        one_way=args.one_ways,
    )
    print(f"sweeping {len(grid)} points x {args.replications} replications...")
    result = run_sweep(
        mesh_steady_state,
        grid,
        replications=args.replications,
        base_seed=args.seed,
    )
    print(result.to_table())
    if result.failures:
        print(f"{len(result.failures)} failed points:", file=sys.stderr)
        for point in result.failures:
            print(f"  {point.label}: {point.error}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Marzullo & Owicki (1983) time-service reproduction: simulate "
            "interval-based clock synchronization, regenerate the paper's "
            "figures and experiments."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="build and run a service")
    sim.add_argument("--topology", default="mesh",
                     choices=["mesh", "ring", "line", "star", "internet", "random"])
    sim.add_argument("--servers", type=int, default=4)
    sim.add_argument("--policy", default="im", choices=sorted(POLICIES))
    sim.add_argument("--delta", type=float, default=1e-5,
                     help="claimed maximum drift rate δ (s/s)")
    sim.add_argument("--fill", type=float, default=0.9,
                     help="fraction of ±δ the actual skews span")
    sim.add_argument("--tau", type=float, default=60.0, help="poll period (s)")
    sim.add_argument("--one-way", type=float, default=0.05,
                     help="one-way delay bound (s); ξ is twice this")
    sim.add_argument("--hours", type=float, default=1.0)
    sim.add_argument("--samples", type=int, default=60)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--reference", type=int, default=0,
                     help="number of reference (standard) servers")
    sim.add_argument("--recovery", action="store_true",
                     help="enable third-server recovery")
    sim.add_argument("--rate-tracking", action="store_true",
                     help="enable Section 5 consonance tracking")
    sim.add_argument("--self-stabilizing", action="store_true",
                     help="enable the recovery subsystem: checkpoints, "
                          "consistency census, census-vetted group merges "
                          "(implies --recovery and rate tracking)")
    sim.add_argument("--byzantine-tolerant", action="store_true",
                     help="build Byzantine-tolerant servers running FT-IM "
                          "(fault-tolerant intersection, falseticker "
                          "reputation, liar demotion; overrides --policy "
                          "and implies --self-stabilizing)")
    sim.add_argument("--fault-budget", type=int, default=1,
                     help="initial per-round fault budget f for "
                          "--byzantine-tolerant (adapts at runtime, "
                          "capped so 2f < n)")
    sim.add_argument("--discipline", action="store_true",
                     help="enable frequency discipline (implies tracking)")
    sim.add_argument("--authenticated", action="store_true",
                     help="authenticate sync-plane messages: keyed MACs "
                          "over a canonical encoding, per-request nonces, "
                          "an anti-replay window, and the delay guard "
                          "(composes with --byzantine-tolerant)")
    sim.add_argument("--holdover", action="store_true",
                     help="enable holdover mode and the slew/step safety "
                          "rails (implies --discipline and "
                          "--self-stabilizing; clocks never step backward)")
    sim.add_argument("--report", action="store_true",
                     help="print the full operator report at the end")
    sim.add_argument("--churn", action="store_true",
                     help="enable leave/rejoin membership churn")
    sim.add_argument("--diagram", action="store_true",
                     help="print the final interval diagram")
    sim.add_argument("--export-csv", metavar="PATH")
    sim.add_argument("--export-json", metavar="PATH")
    sim.add_argument("--telemetry-out", metavar="DIR",
                     help="enable the telemetry plane and write the "
                          "Prometheus snapshot, span JSONL, and summary "
                          "into this directory")
    sim.set_defaults(func=cmd_simulate)

    fig = sub.add_parser("figures", help="regenerate the paper's figures")
    fig.add_argument("which", nargs="?", default="all",
                     choices=["all", "1", "2", "3", "4"])
    fig.set_defaults(func=cmd_figures)

    f1 = sub.add_parser(
        "figure1",
        help="instrumented Figure 1: the figure's servers under rule IM "
             "with the full telemetry plane attached",
    )
    f1.add_argument("--tau", type=float, default=60.0, help="poll period (s)")
    f1.add_argument("--seed", type=int, default=7)
    f1.add_argument("--telemetry-out", metavar="DIR",
                    help="write metrics.prom, spans.jsonl, and summary.json "
                         "into this directory")
    f1.set_defaults(func=cmd_figure1)

    top = sub.add_parser(
        "top",
        help="live text dashboard: advance a simulated service and render "
             "its telemetry every refresh interval",
    )
    top.add_argument("--topology", default="mesh",
                     choices=["mesh", "ring", "line", "star", "internet",
                              "random"])
    top.add_argument("--servers", type=int, default=4)
    top.add_argument("--policy", default="im", choices=sorted(POLICIES))
    top.add_argument("--delta", type=float, default=1e-5)
    top.add_argument("--fill", type=float, default=0.9)
    top.add_argument("--tau", type=float, default=60.0)
    top.add_argument("--one-way", type=float, default=0.05)
    top.add_argument("--horizon", type=float, default=3600.0,
                     help="simulated seconds to run")
    top.add_argument("--refresh", type=float, default=120.0,
                     help="simulated seconds between dashboard frames")
    top.add_argument("--seed", type=int, default=0)
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of redrawing in place")
    top.set_defaults(func=cmd_top)

    exp = sub.add_parser("experiment", help="run an experiment by name")
    exp.add_argument("name", help="experiment name, or 'list'")
    exp.set_defaults(func=cmd_experiment)

    f3l = sub.add_parser(
        "figure3-liars",
        help="Byzantine liar gauntlet: plain IM vs FT-IM across topologies",
    )
    f3l.add_argument("--json", default=None, metavar="PATH",
                     help="also write the JSON report here (CI artefact)")
    f3l.set_defaults(func=cmd_figure3_liars)

    fcw = sub.add_parser(
        "flash-crowd",
        help="client overload vs the sync plane: plain vs admission-controlled",
    )
    fcw.add_argument("--json", default=None, metavar="PATH",
                     help="also write the JSON report here (CI artefact)")
    fcw.add_argument("--seeds", type=int, nargs="+", default=[11, 12, 13],
                     help="seeds to run (each runs both arms)")
    fcw.set_defaults(func=cmd_flash_crowd)

    cha = sub.add_parser("chaos", help="seeded chaos soak with invariant oracle")
    cha.add_argument("--policies", nargs="+", default=["mm", "im"],
                     choices=["mm", "im"])
    cha.add_argument("--servers", type=int, default=5)
    cha.add_argument("--tau", type=float, default=30.0)
    cha.add_argument("--horizon", type=float, default=1800.0,
                     help="simulated seconds per storm")
    cha.add_argument("--seeds", type=int, default=3,
                     help="number of seeded storms per policy")
    cha.add_argument("--seed", type=int, default=0,
                     help="seed for the --compare run")
    cha.add_argument("--compare", action="store_true",
                     help="also run the plain-vs-hardened comparison")
    cha.add_argument("--telemetry-out", metavar="DIR",
                     help="write each storm's Prometheus snapshot and "
                          "summary into DIR/<policy>-seed<k>/ (the nightly "
                          "soak artefacts)")
    cha.set_defaults(func=cmd_chaos)

    dyn = sub.add_parser(
        "dynamic-gauntlet",
        help="live topology mutation: MM/IM/gradient arms vs the "
             "local-skew bound under edge churn and mobility",
    )
    dyn.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                     help="seeds to run (each runs every cell and arm)")
    dyn.add_argument("--horizon", type=float, default=1800.0,
                     help="simulated seconds per run")
    dyn.add_argument("--json", default=None, metavar="PATH",
                     help="also write the JSON report here (CI artefact)")
    dyn.add_argument("--telemetry-out", metavar="DIR",
                     help="write each run's Prometheus snapshot and summary "
                          "into DIR/<cell>-<arm>-seed<k>/ (the nightly "
                          "gauntlet artefacts)")
    dyn.set_defaults(func=cmd_dynamic_gauntlet)

    blk = sub.add_parser(
        "blackout-gauntlet",
        help="reference blackout: disciplined holdover vs free-running MM "
             "on true error, monotonicity and reintegration",
    )
    blk.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                     help="seeds to run (each runs every cell and arm)")
    blk.add_argument("--json", default=None, metavar="PATH",
                     help="also write the JSON report here (CI artefact)")
    blk.add_argument("--telemetry-out", metavar="DIR",
                     help="write each run's Prometheus snapshot and summary "
                          "into DIR/<cell>-<arm>-seed<k>/ (the nightly "
                          "gauntlet artefacts)")
    blk.set_defaults(func=cmd_blackout_gauntlet)

    mitm = sub.add_parser(
        "mitm-gauntlet",
        help="on-path adversary: tamper/replay/delay-attack/spoof cells "
             "vs plain, hardened, and authenticated arms under the "
             "strict invariant oracle",
    )
    mitm.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                      help="seeds to run (each runs every cell and arm)")
    mitm.add_argument("--json", default=None, metavar="PATH",
                      help="also write the JSON report here (CI artefact)")
    mitm.add_argument("--telemetry-out", metavar="DIR",
                      help="write each run's Prometheus snapshot and summary "
                           "into DIR/<cell>-<arm>-seed<k>/ (the nightly "
                           "gauntlet artefacts)")
    mitm.set_defaults(func=cmd_mitm_gauntlet)

    live = sub.add_parser(
        "live-gauntlet",
        help="real-socket runtime plane: a supervised 5-process loopback "
             "UDP cluster behind a fault-injecting proxy (10%% loss, delay "
             "spike, on-path tamper, SIGKILL crash/restart) — plain vs "
             "hardened+authenticated arms under live MM-1 probes",
    )
    live.add_argument("--seeds", type=int, nargs="+", default=[0],
                      help="seeds to run (each runs both arms sequentially)")
    live.add_argument("--duration", type=float, default=12.0,
                      help="measurement window per arm, seconds of wall time")
    live.add_argument("--json", default=None, metavar="PATH",
                      help="also write the JSON report here (CI artefact)")
    live.add_argument("--telemetry-out", metavar="DIR",
                      help="write each node's Prometheus snapshot into "
                           "DIR/<arm>/<node>.prom (the nightly soak artefact)")
    live.set_defaults(func=cmd_live_gauntlet)

    scl = sub.add_parser(
        "scale-gauntlet",
        help="vectorized kernel at scale: MM vs IM stratum hierarchies at "
             "1k-50k servers, per-stratum Lemma 1 growth, Theorem 8 "
             "comparison, neighbour-interval census",
    )
    scl.add_argument("--sizes", type=int, nargs="+", default=[1000, 10000],
                     help="stratum-hierarchy server counts to run")
    scl.add_argument("--seeds", type=int, nargs="+", default=[0],
                     help="seeds to run (each runs MM and IM per size)")
    scl.add_argument("--shards", type=int, default=4,
                     help="topology shards for the bulk kernel")
    scl.add_argument("--processes", type=int, default=0,
                     help="worker processes (0 = advance shards in-process)")
    scl.add_argument("--tau", type=float, default=60.0,
                     help="poll period, simulated seconds")
    scl.add_argument("--cycles", type=int, default=8,
                     help="poll cycles to simulate per run")
    scl.add_argument("--json", default=None, metavar="PATH",
                     help="also write the JSON report here (CI artefact)")
    scl.set_defaults(func=cmd_scale_gauntlet)

    prf = sub.add_parser(
        "profile",
        help="cProfile a seeded figure-1 workload on the scalar engine and "
             "report the top-N hot functions (JSON optional)",
    )
    prf.add_argument("--servers", type=int, default=8,
                     help="full-mesh size (the benchmark workload)")
    prf.add_argument("--policy", default="mm", choices=sorted(POLICIES),
                     help="synchronization policy to profile")
    prf.add_argument("--tau", type=float, default=10.0,
                     help="poll period, simulated seconds")
    prf.add_argument("--horizon", type=float, default=3600.0,
                     help="simulated seconds to run under the profiler")
    prf.add_argument("--seed", type=int, default=0,
                     help="RNG registry seed")
    prf.add_argument("--top", type=int, default=15,
                     help="number of hot functions to report")
    prf.add_argument("--json", default=None, metavar="PATH",
                     help="also write the profile report here")
    prf.set_defaults(func=cmd_profile)

    swp = sub.add_parser("sweep", help="steady-state parameter sweep")
    swp.add_argument("--policies", nargs="+", default=["MM", "IM"],
                     choices=["MM", "IM"])
    swp.add_argument("--sizes", nargs="+", type=int, default=[3, 6])
    swp.add_argument("--taus", nargs="+", type=float, default=[30.0, 120.0])
    swp.add_argument("--one-ways", nargs="+", type=float, default=[0.01])
    swp.add_argument("--replications", type=int, default=1)
    swp.add_argument("--seed", type=int, default=0)
    swp.set_defaults(func=cmd_sweep)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
