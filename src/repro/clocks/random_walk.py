"""Random-walk (unstable) clock model.

The paper assumes clocks "may have varying accuracies, but are usually
stable" (Section 1.1) — i.e. the second derivative of ``C(t)`` is normally
zero but accuracy can wander.  :class:`RandomWalkClock` models an oscillator
whose skew performs a bounded random walk: at exponentially-distributed
instants the skew takes a Gaussian step and is clamped to
``[-max_skew, +max_skew]``.

The sample path is generated lazily and deterministically as the clock is
read forwards in time, so a fixed RNG stream yields a reproducible clock.
"""

from __future__ import annotations

import numpy as np

from .base import Clock, ClockError


class RandomWalkClock(Clock):
    """A clock whose skew random-walks within ``[-max_skew, +max_skew]``.

    Args:
        rng: Random stream dedicated to this clock.
        max_skew: Hard clamp on the skew magnitude.  When the clock is used
            in a healthy service this should not exceed the claimed δ.
        step_sigma: Standard deviation of each Gaussian skew increment.
        mean_dwell: Mean seconds between skew changes (exponential).
        epoch: Real time of the initial value.
        initial: Clock value at ``epoch`` (defaults to ``epoch``).
        initial_skew: Starting skew (defaults to a uniform draw within the
            clamp).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        max_skew: float,
        step_sigma: float,
        mean_dwell: float,
        epoch: float = 0.0,
        initial: float | None = None,
        initial_skew: float | None = None,
    ) -> None:
        super().__init__()
        if max_skew < 0:
            raise ValueError(f"max_skew must be non-negative, got {max_skew}")
        if mean_dwell <= 0:
            raise ValueError(f"mean_dwell must be positive, got {mean_dwell}")
        self._rng = rng
        self._max_skew = float(max_skew)
        self._step_sigma = float(step_sigma)
        self._mean_dwell = float(mean_dwell)
        self._seg_start = float(epoch)
        self._seg_value = float(epoch if initial is None else initial)
        if initial_skew is None:
            initial_skew = float(rng.uniform(-max_skew, max_skew))
        self._skew = float(np.clip(initial_skew, -max_skew, max_skew))
        self._next_change = self._seg_start + self._draw_dwell()

    @property
    def skew(self) -> float:
        """Skew of the most recently materialised segment."""
        return self._skew

    def _draw_dwell(self) -> float:
        return float(self._rng.exponential(self._mean_dwell))

    def _advance_segments(self, t: float) -> None:
        """Materialise skew-change breakpoints up to real time ``t``."""
        while self._next_change <= t:
            change_at = self._next_change
            # Close the current segment at the breakpoint.
            self._seg_value += (change_at - self._seg_start) * (1.0 + self._skew)
            self._seg_start = change_at
            step = float(self._rng.normal(0.0, self._step_sigma))
            self._skew = float(
                np.clip(self._skew + step, -self._max_skew, self._max_skew)
            )
            self._next_change = change_at + self._draw_dwell()

    def _read(self, t: float) -> float:
        if t < self._seg_start - 1e-12:
            raise ClockError(
                f"random-walk clock read at t={t} before segment start "
                f"{self._seg_start}"
            )
        self._advance_segments(t)
        return self._seg_value + (t - self._seg_start) * (1.0 + self._skew)

    def _apply_set(self, t: float, value: float) -> None:
        self._advance_segments(t)
        self._seg_start = t
        self._seg_value = value
