"""Client-side monotonic clock adapter.

The service itself does not require local monotonicity — "clocks may be
freely set backward as well as forward" (Section 1.1) — but a *client* may.
The paper's suggested construction: "Such a clock may be implemented based
on a nonmonotonic clock by temporarily running the monotonic clock more
slowly when the nonmonotonic clock is set backwards."

:class:`MonotonicClock` implements exactly that amortisation.  It observes a
base clock (typically a :class:`~repro.service.server.TimeServer`'s clock,
which algorithm MM or IM may step backwards) and exposes a reading that

* never decreases,
* equals the base clock whenever the base has not recently stepped back, and
* after a backward step, advances at rate ``(1 - slew) * dC_base`` until the
  base catches up.
"""

from __future__ import annotations

from .base import Clock


class MonotonicClock(Clock):
    """Monotonic view over a possibly backward-stepping base clock.

    Args:
        inner: The underlying (nonmonotonic) clock.
        slew: Fraction by which the monotonic clock is slowed while it is
            ahead of the base clock.  Must lie in ``(0, 1]``; ``0.5`` halves
            the apparent rate, so a backward step of ``s`` seconds is
            amortised over ``s / slew`` seconds of base-clock progress.

    The adapter is read-only with respect to the base: calling :meth:`set`
    raises, because a monotonic client clock is defined by its base, not set
    directly.
    """

    def __init__(self, inner: Clock, slew: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < slew <= 1.0:
            raise ValueError(f"slew must be in (0, 1], got {slew}")
        self.inner = inner
        self.slew = float(slew)
        self._last_base: float | None = None
        self._mono: float | None = None

    @property
    def ahead(self) -> float:
        """How far the monotonic reading currently leads the base clock."""
        if self._mono is None or self._last_base is None:
            return 0.0
        return max(0.0, self._mono - self._last_base)

    def _read(self, t: float) -> float:
        base = self.inner.read(t)
        if self._mono is None or self._last_base is None:
            self._mono = base
            self._last_base = base
            return self._mono
        advance = base - self._last_base
        self._last_base = base
        if advance <= 0:
            # Base stepped backwards (or stood still): hold the monotonic
            # value; we are now (further) ahead and will amortise.
            return self._mono
        if self._mono <= base - advance:
            # We were at or behind the base before this advance: track it.
            # (Forward base steps may leave us behind; snapping forward
            # preserves monotonicity and re-synchronises immediately.)
            self._mono = base
            return self._mono
        # We are ahead: advance slowly until the base catches up.
        self._mono = max(base, self._mono + advance * (1.0 - self.slew))
        return self._mono

    def _apply_set(self, t: float, value: float) -> None:
        raise NotImplementedError(
            "MonotonicClock is a derived view; set the base clock instead"
        )
