"""Environmentally-driven clock models.

The paper assumes clocks are "usually stable" (second derivative zero) but
its whole error model exists because real oscillators are not: crystal
frequency depends on temperature (machine rooms cycle daily) and drifts
slowly with age.  These models give the robustness experiments physically
shaped rate errors:

* :class:`TemperatureDriftClock` — skew follows a diurnal sinusoid
  ``base + amplitude·sin(2πt/period + phase)``.  A clock whose claimed δ
  covers ``|base| + amplitude`` remains correct; one whose δ was calibrated
  at night violates its bound every afternoon — a realistic route into the
  Figure 3 state.
* :class:`AgingClock` — skew ramps linearly (crystal aging), clamped at a
  terminal value.  Models the slow decay of an initially valid δ.

Both integrate their rate analytically (no per-read numerical integration
error), so reads are exact and cheap.
"""

from __future__ import annotations

import math

from .base import Clock


class TemperatureDriftClock(Clock):
    """Clock with a sinusoidal (diurnal) skew.

    The instantaneous skew at real time ``t`` is::

        skew(t) = base_skew + amplitude * sin(2π (t - epoch)/period + phase)

    and the clock value is the exact integral of ``1 + skew``.

    Args:
        base_skew: Mean frequency error.
        amplitude: Peak deviation around the mean (>= 0).
        period: Seconds per temperature cycle (e.g. 86400 for diurnal).
        phase: Radians offset of the cycle at ``epoch``.
        epoch: Real time at which the clock reads ``initial``.
        initial: Clock value at ``epoch`` (defaults to ``epoch``).
    """

    def __init__(
        self,
        *,
        base_skew: float = 0.0,
        amplitude: float,
        period: float = 86400.0,
        phase: float = 0.0,
        epoch: float = 0.0,
        initial: float | None = None,
    ) -> None:
        super().__init__()
        if amplitude < 0:
            raise ValueError(f"amplitude must be non-negative, got {amplitude}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.base_skew = float(base_skew)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)
        self._seg_start = float(epoch)
        self._seg_value = float(epoch if initial is None else initial)

    @property
    def worst_case_skew(self) -> float:
        """The smallest valid drift bound for this clock."""
        return abs(self.base_skew) + self.amplitude

    def skew_at(self, t: float) -> float:
        """Instantaneous skew at real time ``t``."""
        angle = 2.0 * math.pi * (t - self._seg_start) / self.period + self.phase
        return self.base_skew + self.amplitude * math.sin(angle)

    def _integrated_drift(self, t0: float, t1: float) -> float:
        """∫ skew dt from ``t0`` to ``t1`` (closed form)."""
        omega = 2.0 * math.pi / self.period

        def antiderivative(t: float) -> float:
            angle = omega * (t - self._seg_start) + self.phase
            return self.base_skew * t - (self.amplitude / omega) * math.cos(angle)

        return antiderivative(t1) - antiderivative(t0)

    def _read(self, t: float) -> float:
        elapsed = t - self._seg_start
        return self._seg_value + elapsed + self._integrated_drift(self._seg_start, t)

    def _apply_set(self, t: float, value: float) -> None:
        # Restart the integral from the reset point; the temperature cycle
        # itself keeps its absolute phase (the environment does not reset),
        # so fold the elapsed phase into `phase`.
        omega = 2.0 * math.pi / self.period
        self.phase = (self.phase + omega * (t - self._seg_start)) % (2.0 * math.pi)
        self._seg_start = t
        self._seg_value = value


class AgingClock(Clock):
    """Clock whose skew ramps linearly from ``initial_skew`` with age.

    ``skew(t) = initial_skew + aging_rate·(t - epoch)``, clamped to
    ``terminal_skew`` once reached.  The clock value integrates the ramp
    exactly (a quadratic), then continues linearly after the clamp.

    Args:
        initial_skew: Skew at ``epoch``.
        aging_rate: Skew change per second (s/s per s); sign free.
        terminal_skew: Value at which aging stops; must be reachable (on
            the side ``aging_rate`` moves toward).
        epoch: Real time at which the clock reads ``initial``.
        initial: Clock value at ``epoch``.
    """

    def __init__(
        self,
        *,
        initial_skew: float,
        aging_rate: float,
        terminal_skew: float | None = None,
        epoch: float = 0.0,
        initial: float | None = None,
    ) -> None:
        super().__init__()
        if terminal_skew is not None and aging_rate != 0.0:
            moving_up = aging_rate > 0
            if moving_up and terminal_skew < initial_skew:
                raise ValueError("terminal_skew below initial_skew with positive aging")
            if not moving_up and terminal_skew > initial_skew:
                raise ValueError("terminal_skew above initial_skew with negative aging")
        self.initial_skew = float(initial_skew)
        self.aging_rate = float(aging_rate)
        self.terminal_skew = terminal_skew
        self._epoch = float(epoch)
        self._seg_start = float(epoch)
        self._seg_value = float(epoch if initial is None else initial)

    def skew_at(self, t: float) -> float:
        """Instantaneous skew at real time ``t`` (aging never resets)."""
        raw = self.initial_skew + self.aging_rate * (t - self._epoch)
        if self.terminal_skew is None or self.aging_rate == 0.0:
            return raw
        if self.aging_rate > 0:
            return min(raw, self.terminal_skew)
        return max(raw, self.terminal_skew)

    def _clamp_time(self) -> float | None:
        """Real time at which the skew hits the terminal value, if any."""
        if self.terminal_skew is None or self.aging_rate == 0.0:
            return None
        return self._epoch + (self.terminal_skew - self.initial_skew) / self.aging_rate

    def _integrated_drift(self, t0: float, t1: float) -> float:
        """∫ skew dt from ``t0`` to ``t1``, respecting the clamp."""
        clamp_at = self._clamp_time()

        def ramp_integral(a: float, b: float) -> float:
            # ∫ (initial + rate·(t - epoch)) dt over [a, b]
            fa = self.initial_skew * a + 0.5 * self.aging_rate * (a - self._epoch) ** 2
            fb = self.initial_skew * b + 0.5 * self.aging_rate * (b - self._epoch) ** 2
            return fb - fa

        if clamp_at is None or t1 <= clamp_at:
            return ramp_integral(t0, t1)
        if t0 >= clamp_at:
            assert self.terminal_skew is not None
            return self.terminal_skew * (t1 - t0)
        assert self.terminal_skew is not None
        return ramp_integral(t0, clamp_at) + self.terminal_skew * (t1 - clamp_at)

    def _read(self, t: float) -> float:
        elapsed = t - self._seg_start
        return self._seg_value + elapsed + self._integrated_drift(self._seg_start, t)

    def _apply_set(self, t: float, value: float) -> None:
        self._seg_start = t
        self._seg_value = value
