"""Clock failure models.

Section 1.1 enumerates how a clock may fail: "by stopping, racing ahead, or
refusing to change its value when reset."  The paper defers failing clocks
to [Marzullo 83], but its experiments hinge on clocks that *violate their
claimed drift bound*, and the recovery machinery in Section 3 exists
precisely to cope with such clocks.  These wrappers inject each failure mode
at a chosen real time into any underlying :class:`~repro.clocks.base.Clock`.

All wrappers delegate reads/sets to the wrapped clock until ``fail_at`` and
apply their fault afterwards, so a scenario can run healthy for a warm-up
period and then degrade.
"""

from __future__ import annotations

from .base import Clock


class _FailureWrapper(Clock):
    """Common plumbing for failure wrappers around an inner clock."""

    def __init__(self, inner: Clock, fail_at: float) -> None:
        super().__init__()
        self.inner = inner
        self.fail_at = float(fail_at)

    def failed(self, t: float) -> bool:
        """Whether the fault is active at real time ``t``."""
        return t >= self.fail_at

    def detach(self, t: float) -> Clock:
        """End the fault at real time ``t`` and return the inner clock.

        The inner clock is reset so that it continues from the *wrapper's*
        current reading — a thawed frozen clock resumes from its frozen
        value (it stays behind real time), a repaired racing clock keeps
        the surplus it accumulated.  Used by the chaos injector to model
        transient clock faults that end mid-run.
        """
        value = self.read(t)
        self.inner.set(t, value)
        return self.inner


class StoppedClock(_FailureWrapper):
    """A clock that freezes at its value as of ``fail_at``.

    After the failure instant the clock returns a constant; resets are
    accepted (the hardware register still writes) but the clock immediately
    freezes at the written value again.
    """

    def __init__(self, inner: Clock, fail_at: float) -> None:
        super().__init__(inner, fail_at)
        self._frozen_value: float | None = None

    def _read(self, t: float) -> float:
        if not self.failed(t):
            return self.inner.read(t)
        if self._frozen_value is None:
            self._frozen_value = self.inner.read(self.fail_at)
        return self._frozen_value

    def _apply_set(self, t: float, value: float) -> None:
        if not self.failed(t):
            self.inner.set(t, value)
            return
        self._frozen_value = value


class RacingClock(_FailureWrapper):
    """A clock that races ahead at ``1 + racing_skew`` after ``fail_at``.

    ``racing_skew`` is typically far beyond the claimed δ — e.g. the paper's
    anecdotal server "about four percent fast" (≈ one hour per day) against
    a claimed bound of one second per day.
    """

    def __init__(self, inner: Clock, fail_at: float, racing_skew: float) -> None:
        super().__init__(inner, fail_at)
        self.racing_skew = float(racing_skew)
        self._seg_start: float | None = None
        self._seg_value: float | None = None

    def _ensure_failed_segment(self) -> None:
        if self._seg_start is None:
            self._seg_start = self.fail_at
            self._seg_value = self.inner.read(self.fail_at)

    def _read(self, t: float) -> float:
        if not self.failed(t):
            return self.inner.read(t)
        self._ensure_failed_segment()
        assert self._seg_start is not None and self._seg_value is not None
        return self._seg_value + (t - self._seg_start) * (1.0 + self.racing_skew)

    def _apply_set(self, t: float, value: float) -> None:
        if not self.failed(t):
            self.inner.set(t, value)
            return
        self._ensure_failed_segment()
        self._seg_start = t
        self._seg_value = value


class StuckOnResetClock(_FailureWrapper):
    """A clock that refuses to change its value when reset after ``fail_at``.

    Reads keep delegating to the inner clock, so the clock keeps running at
    its natural rate — it just cannot be corrected.  This models a wedged
    clock driver: the paper lists "refusing to change its value when reset"
    among the failure modes.
    """

    def _read(self, t: float) -> float:
        return self.inner.read(t)

    def _apply_set(self, t: float, value: float) -> None:
        if not self.failed(t):
            self.inner.set(t, value)
        # After failure: silently drop the reset.
