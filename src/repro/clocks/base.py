"""Clock abstractions.

Following Section 2.1 of the paper, a clock is a function ``C(t)`` mapping
real time to clock time, continuous between resets.  A *perfect clock* reads
``C(t) = t``; a clock is *correct* at ``t0`` if the real time lies within
``[C(t0) - E(t0), C(t0) + E(t0)]``; a clock is *accurate* if ``dC/dt = 1``.
The paper's drift assumption is ``|1 - dC/dt| <= δ`` for a known maximum
drift rate δ.

Two δ-like quantities appear throughout this repository and must not be
confused:

* ``claimed_delta`` — the bound δ the *algorithm* believes (rule MM-1 uses
  it to grow the reported error).  This is configuration.
* the clock's *actual* rate behaviour — a property of the clock model.  In a
  healthy service ``actual |rate| <= claimed_delta``; the fault experiments
  (Figure 3 and the Section 3 anecdote) deliberately violate this.

Clocks here are passive: they are read at engine real times and mutated only
by :meth:`Clock.set`.  Reads must be at non-decreasing real times (which is
how a discrete-event simulation naturally queries them); stochastic models
rely on this to generate their sample paths lazily and reproducibly.
"""

from __future__ import annotations

import abc


class ClockError(RuntimeError):
    """Raised on invalid clock operations (e.g. reading backwards in time)."""


class Clock(abc.ABC):
    """Abstract mapping from real time to clock time, mutable via resets.

    Subclasses implement :meth:`_read` and :meth:`_apply_set`; the base class
    enforces the non-decreasing-read discipline and tracks reset counts.
    """

    def __init__(self) -> None:
        self._last_read_time = float("-inf")
        self._resets = 0

    # -------------------------------------------------------------- reading

    def read(self, t: float) -> float:
        """Return the clock's value ``C(t)`` at real time ``t``.

        Raises:
            ClockError: If ``t`` precedes an earlier read or set (clock
                sample paths are generated forwards only).
        """
        if t < self._last_read_time - 1e-12:
            raise ClockError(
                f"clock read at t={t} before previous access at "
                f"t={self._last_read_time}"
            )
        self._last_read_time = max(self._last_read_time, t)
        return self._read(t)

    @abc.abstractmethod
    def _read(self, t: float) -> float:
        """Subclass hook: value at real time ``t`` (``t`` already validated)."""

    # -------------------------------------------------------------- setting

    def set(self, t: float, value: float) -> None:
        """Reset the clock so that ``C(t) == value`` (modulo failure models).

        The paper allows clocks to be "freely set backward as well as
        forward" (Section 1.1); monotonicity for clients is provided by the
        :class:`~repro.clocks.monotonic.MonotonicClock` adapter instead.
        """
        if t < self._last_read_time - 1e-12:
            raise ClockError(
                f"clock set at t={t} before previous access at "
                f"t={self._last_read_time}"
            )
        self._last_read_time = max(self._last_read_time, t)
        self._resets += 1
        self._apply_set(t, value)

    @abc.abstractmethod
    def _apply_set(self, t: float, value: float) -> None:
        """Subclass hook: perform the reset (or refuse it, for fault models)."""

    # ------------------------------------------------------------ inspection

    @property
    def resets(self) -> int:
        """Number of times :meth:`set` has been called."""
        return self._resets

    def offset(self, t: float) -> float:
        """Convenience: the clock's offset from real time, ``C(t) - t``."""
        return self.read(t) - t


class RateClock(Clock):
    """A clock that advances at a (possibly time-varying) rate ``1 + skew``.

    The instantaneous *skew* is ``dC/dt - 1``; the paper's drift bound is
    ``|skew| <= δ``.  The base implementation models a single constant-skew
    segment; stochastic subclasses re-segment on reads and resets.
    """

    def __init__(self, *, epoch: float = 0.0, initial: float = 0.0, skew: float = 0.0):
        super().__init__()
        self._seg_start = float(epoch)
        self._seg_value = float(initial)
        self._skew = float(skew)

    @property
    def skew(self) -> float:
        """Current segment's skew (``dC/dt - 1``)."""
        return self._skew

    def _read(self, t: float) -> float:
        return self._seg_value + (t - self._seg_start) * (1.0 + self._skew)

    def _apply_set(self, t: float, value: float) -> None:
        self._seg_start = t
        self._seg_value = value
        self._skew = self._next_skew(t)

    def _next_skew(self, t: float) -> float:
        """Hook: skew for the segment beginning at a reset.  Default: unchanged."""
        return self._skew
