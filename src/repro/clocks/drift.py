"""Constant- and per-segment-drift clock models.

These are the workhorse models for the paper's experiments:

* :class:`DriftingClock` — a fixed skew for its whole lifetime (a crystal
  with a constant frequency error).  Used for the deterministic scenarios
  (Figures 1 and 3, the Section 3 anecdote with the clock "about four
  percent fast").
* :class:`SegmentDriftClock` — draws a fresh skew from a distribution at
  every reset.  This is exactly Theorem 8's model: "the actual drift rate a
  clock exhibits between two successive readings of its value ... be the
  random variable α", i.i.d. per segment, supported on ``[-δ, +δ]``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .base import RateClock

#: A callable returning the skew for a new clock segment.
SkewSampler = Callable[[], float]


class DriftingClock(RateClock):
    """A clock running at a constant rate ``1 + skew`` forever.

    Args:
        skew: The constant frequency error ``dC/dt - 1``.  Positive means
            the clock runs fast.  The paper writes this as a drift within
            ``|skew| <= δ``; nothing here enforces the bound, so fault
            scenarios can simply pass a skew exceeding the claimed δ.
        epoch: Real time at which ``initial`` is the clock's value.
        initial: Clock value at ``epoch``.

    Example:
        >>> clock = DriftingClock(skew=0.01, epoch=0.0, initial=0.0)
        >>> clock.read(100.0)
        101.0
    """

    def __init__(self, skew: float, *, epoch: float = 0.0, initial: Optional[float] = None):
        if initial is None:
            initial = epoch
        super().__init__(epoch=epoch, initial=initial, skew=skew)


class SegmentDriftClock(RateClock):
    """A clock whose skew is redrawn (i.i.d.) at every reset.

    This realises Theorem 8's stochastic model.  With ``uniform_sampler``
    the skew is uniform on ``[-delta, +delta]``; any other zero-or-nonzero
    mean distribution may be supplied to model biased oscillators
    ("overspecified" bounds in the paper's Section 4 discussion).

    Args:
        sampler: Callable giving the skew of each new segment (including the
            initial one).
        epoch: Real time of the initial value.
        initial: Clock value at ``epoch``.
    """

    def __init__(
        self,
        sampler: SkewSampler,
        *,
        epoch: float = 0.0,
        initial: Optional[float] = None,
    ):
        if initial is None:
            initial = epoch
        self._sampler = sampler
        super().__init__(epoch=epoch, initial=initial, skew=float(sampler()))

    def _next_skew(self, t: float) -> float:
        return float(self._sampler())


def uniform_sampler(rng: np.random.Generator, delta: float) -> SkewSampler:
    """Skew sampler uniform on ``[-delta, +delta]`` (Theorem 8's density)."""
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    return lambda: float(rng.uniform(-delta, delta))


def biased_uniform_sampler(
    rng: np.random.Generator, delta: float, bias: float
) -> SkewSampler:
    """Skew sampler uniform on ``[bias - delta, bias + delta]``.

    Models a clock population with a systematic frequency bias relative to
    the standard — the paper's remark that overspecified drift bounds are
    "equivalent to a service in which all of the clocks have a bias with
    respect to some time standard".
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    return lambda: float(rng.uniform(bias - delta, bias + delta))


def truncated_normal_sampler(
    rng: np.random.Generator, sigma: float, bound: float
) -> SkewSampler:
    """Skew sampler: normal(0, sigma) truncated to ``[-bound, +bound]``.

    A more realistic oscillator population than uniform: most clocks are
    much better than their worst-case bound.  Used by the ablation sweeps.
    """
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")

    def sample() -> float:
        while True:
            value = rng.normal(0.0, sigma)
            if abs(value) <= bound:
                return float(value)

    return sample
