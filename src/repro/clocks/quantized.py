"""Quantised (tick-granularity) clock wrapper.

Real clock hardware exposes time in ticks — the Alto-era machines on the
Xerox internet kept time in seconds, and modern kernels in nanoseconds.
:class:`QuantizedClock` wraps any clock and floors its readings to a tick
size, letting experiments measure how read granularity feeds into the error
budget (it behaves like an extra additive read error of up to one tick, and
should be folded into the inherited error ε when resetting from such a
clock).
"""

from __future__ import annotations

import math

from .base import Clock


class QuantizedClock(Clock):
    """Wraps ``inner`` so that reads are floored to multiples of ``tick``.

    Args:
        inner: The continuous clock being sampled.
        tick: Tick size in seconds; must be positive.

    Resets pass through unquantised (the register holds the exact written
    value; only the read-out is granular), which matches how a kernel clock
    behaves when set from a sync protocol.
    """

    def __init__(self, inner: Clock, tick: float) -> None:
        super().__init__()
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        self.inner = inner
        self.tick = float(tick)

    def _read(self, t: float) -> float:
        raw = self.inner.read(t)
        return math.floor(raw / self.tick) * self.tick

    def _apply_set(self, t: float, value: float) -> None:
        self.inner.set(t, value)

    @property
    def max_quantization_error(self) -> float:
        """Worst-case error introduced by the read-out granularity."""
        return self.tick
