"""Slew/step safety rails over a settable clock.

The synchronization rules treat :meth:`~repro.clocks.base.Clock.set` as
instantaneous — the paper allows clocks to be "freely set backward as
well as forward" (Section 1.1).  Production time daemons do not: ntpd
amortises small corrections at a bounded *slew* rate (≤ 500 ppm), steps
only beyond a panic threshold, and refuses corrections so large they are
more plausibly a poisoned source than a bad clock.  This module grows
that policy as a composable adapter.

:class:`SlewingClock` wraps any settable clock (in this repository,
usually a :class:`~repro.clocks.disciplined.DisciplinedClock` over the
raw oscillator) and intercepts resets:

* a reset whose correction magnitude exceeds ``sanity_bound`` is
  **rejected** outright and counted (``insane_resets``) — the reading is
  left untouched, so the caller must notice and keep its error bound
  honest;
* a *forward* correction beyond ``panic_threshold`` is **stepped**
  (applied instantly — waiting hours to slew a huge forward offset helps
  nobody, and forward steps cannot violate monotonicity);
* everything else — all backward corrections, and small forward ones —
  is **slewed**: the pending offset is bled into the reading at
  ``slew_rate`` seconds per second of inner-clock progress.  With
  ``slew_rate < 1`` the adapter's reading is monotone even while a
  backward correction drains, which is why backward corrections are
  never stepped regardless of size.

Each accepted reset *replaces* the pending offset (the new target says
where the clock should be **now**; any undrained remainder of an older
correction is superseded).  Rate-discipline calls (``adjust_rate``,
``correction``, ``effective_skew``) delegate to the inner clock when it
supports them, so :class:`SlewingClock` slots into the disciplining
server tower unchanged.
"""

from __future__ import annotations

from .base import Clock

__all__ = ["SlewingClock"]


class SlewingClock(Clock):
    """Bounded-slew, panic-step, sanity-checked view over a settable clock.

    Args:
        inner: The underlying settable clock (its reading must be
            non-decreasing between resets; every clock in this repository
            qualifies — drift rates are tiny compared to 1).
        slew_rate: Seconds of correction drained per second of inner
            progress while a reset is pending.  Must lie in ``(0, 1)``;
            monotonicity of the adapter's reading under backward
            corrections depends on it.  ntpd's value is 5e-4.
        panic_threshold: Forward corrections larger than this are stepped
            instantly instead of slewed.  Backward corrections are always
            slewed (a backward step would break monotonicity).
        sanity_bound: Corrections with magnitude beyond this are rejected
            and counted in :attr:`insane_resets` — the reading does not
            move at all.
    """

    def __init__(
        self,
        inner: Clock,
        *,
        slew_rate: float = 5e-3,
        panic_threshold: float = 0.5,
        sanity_bound: float = 1000.0,
    ) -> None:
        super().__init__()
        if not 0.0 < slew_rate < 1.0:
            raise ValueError(f"slew_rate must be in (0, 1), got {slew_rate}")
        if panic_threshold <= 0:
            raise ValueError(
                f"panic_threshold must be positive, got {panic_threshold}"
            )
        if sanity_bound <= panic_threshold:
            raise ValueError(
                "sanity_bound must exceed panic_threshold "
                f"({sanity_bound} <= {panic_threshold})"
            )
        self.inner = inner
        self.slew_rate = float(slew_rate)
        self.panic_threshold = float(panic_threshold)
        self.sanity_bound = float(sanity_bound)
        self._offset = 0.0  # correction already applied to the reading
        self._pending = 0.0  # correction still to drain
        self._slewed_out = 0.0  # cumulative gradually-applied correction
        self._last_inner: float | None = None
        self._last_value: float | None = None
        self._insane_resets = 0
        self._steps = 0

    # ------------------------------------------------------------ inspection

    @property
    def slew_remaining(self) -> float:
        """Signed correction still to drain (0 when fully converged)."""
        return self._pending

    @property
    def slewed_out(self) -> float:
        """Total correction applied *gradually* (excludes instant steps).

        The rate-tracking raw timescale subtracts stepped corrections by
        observing the reading jump around :meth:`set`; gradual draining
        produces no jump, so trackers subtract this instead.
        """
        return self._slewed_out

    @property
    def insane_resets(self) -> int:
        """Resets rejected for exceeding the sanity bound."""
        return self._insane_resets

    @property
    def steps(self) -> int:
        """Resets applied instantly (forward, beyond the panic threshold)."""
        return self._steps

    @property
    def slewing(self) -> bool:
        """Whether a correction is still draining."""
        return self._pending != 0.0

    # --------------------------------------------------------------- reading

    def _read(self, t: float) -> float:
        inner_now = self.inner.read(t)
        if self._last_inner is None or self._last_value is None:
            self._last_inner = inner_now
            self._last_value = inner_now + self._offset
            return self._last_value
        advance = inner_now - self._last_inner
        self._last_inner = inner_now
        if advance <= 0.0:
            # Defensive: a stalled (or, impossibly, backward) inner clock
            # holds the reading; nothing drains without progress.
            return self._last_value
        if self._pending:
            drain = min(self.slew_rate * advance, abs(self._pending))
            if self._pending < 0:
                drain = -drain
            self._pending -= drain
            self._offset += drain
            self._slewed_out += drain
        # With slew_rate < 1 a negative drain never exceeds the advance,
        # so the reading is non-decreasing even mid backward correction.
        self._last_value = inner_now + self._offset
        return self._last_value

    # --------------------------------------------------------------- setting

    def _apply_set(self, t: float, value: float) -> None:
        current = self._read(t)
        delta = value - current
        if abs(delta) > self.sanity_bound:
            self._insane_resets += 1
            return
        if delta > self.panic_threshold:
            # Forward panic step: land on the target now.  The pending
            # remainder of any older correction is superseded (discarded,
            # not applied — it never reached the reading).
            self._offset += delta
            self._pending = 0.0
            self._steps += 1
            self._last_value = current + delta
            return
        # Slew: the target says where the reading should be *now*, so the
        # new pending correction replaces (not adds to) the old one.
        self._pending = delta

    # ------------------------------------------------- discipline delegation

    @property
    def correction(self) -> float:
        """The inner clock's rate correction (0.0 if it has none)."""
        return getattr(self.inner, "correction", 0.0)

    def adjust_rate(self, t: float, correction: float) -> float:
        """Delegate rate discipline to the inner clock."""
        return self.inner.adjust_rate(t, correction)

    def effective_skew(self, raw_skew: float) -> float:
        """Delegate to the inner clock's skew composition when present."""
        inner_skew = getattr(self.inner, "effective_skew", None)
        if inner_skew is not None:
            return inner_skew(raw_skew)
        return raw_skew
