"""The perfect clock (time standard).

A *perfect clock* is one with ``C(t) = t`` (Section 2.1): correct, accurate
and stable.  In the simulator the real-time axis itself plays the role of
Greenwich Mean Time; :class:`PerfectClock` exposes it through the
:class:`~repro.clocks.base.Clock` interface so that reference time servers
(e.g. a WWV radio receiver in the paper's world) are ordinary servers whose
clock simply never drifts.
"""

from __future__ import annotations

from .base import Clock


class PerfectClock(Clock):
    """A clock that always reads the true time and ignores resets.

    Ignoring :meth:`set` is deliberate: a standard is, by definition, not
    adjustable from within the service.  A reset attempt is counted (for
    test observability) but has no effect on subsequent reads.
    """

    def _read(self, t: float) -> float:
        return t

    def _apply_set(self, t: float, value: float) -> None:
        # A time standard cannot be reset; silently retain the true time.
        return None
