"""Clock models.

Implements the paper's clock abstraction (Section 2.1): functions from real
time to clock time, continuous between resets, with bounded drift in the
healthy case and a menu of failure modes for the fault experiments.
"""

from .base import Clock, ClockError, RateClock
from .disciplined import DisciplinedClock
from .environmental import AgingClock, TemperatureDriftClock
from .drift import (
    DriftingClock,
    SegmentDriftClock,
    SkewSampler,
    biased_uniform_sampler,
    truncated_normal_sampler,
    uniform_sampler,
)
from .failures import RacingClock, StoppedClock, StuckOnResetClock
from .monotonic import MonotonicClock
from .perfect import PerfectClock
from .quantized import QuantizedClock
from .random_walk import RandomWalkClock
from .slewing import SlewingClock

__all__ = [
    "AgingClock",
    "Clock",
    "ClockError",
    "DisciplinedClock",
    "TemperatureDriftClock",
    "DriftingClock",
    "MonotonicClock",
    "PerfectClock",
    "QuantizedClock",
    "RacingClock",
    "RandomWalkClock",
    "RateClock",
    "SegmentDriftClock",
    "SkewSampler",
    "SlewingClock",
    "StoppedClock",
    "StuckOnResetClock",
    "biased_uniform_sampler",
    "truncated_normal_sampler",
    "uniform_sampler",
]
