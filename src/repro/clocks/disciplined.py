"""Software-disciplined clocks: rate correction on top of a raw oscillator.

The paper's algorithms correct clock *values*; its Section 5 sketch (and
the thesis) apply the same machinery to clock *rates*.  The missing piece
to make rate knowledge useful is a clock that can be told "run a bit
slower": real kernels expose exactly that (``adjtimex`` frequency offsets),
and NTP's discipline loop drives it.

:class:`DisciplinedClock` wraps any raw :class:`~repro.clocks.base.Clock`
and applies a software rate multiplier: reading it returns::

    D(t) = D(t0) + (C(t) - C(t0)) * (1 + correction)

piecewise between correction changes.  Setting the clock sets the value (as
the synchronization algorithms require); :meth:`adjust_rate` retunes the
multiplier.  A correction of ``-skew/(1+skew)`` exactly cancels a raw skew;
in practice the estimator that feeds it knows the skew only approximately,
which is what the discipline experiments measure.
"""

from __future__ import annotations

from .base import Clock


class DisciplinedClock(Clock):
    """A rate-correctable view over a raw hardware clock.

    Args:
        raw: The underlying oscillator-driven clock.
        max_correction: Safety clamp on ``|correction|`` (kernels clamp
            too; NTP's limit is 500 ppm).  Adjustments beyond it are
            clipped, not rejected.
    """

    def __init__(self, raw: Clock, max_correction: float = 0.05) -> None:
        super().__init__()
        if max_correction <= 0:
            raise ValueError(
                f"max_correction must be positive, got {max_correction}"
            )
        self.raw = raw
        self.max_correction = float(max_correction)
        self._correction = 0.0
        self._anchor_raw: float | None = None
        self._anchor_value: float | None = None
        self._adjustments = 0

    @property
    def correction(self) -> float:
        """The current rate multiplier offset (``0`` = passthrough)."""
        return self._correction

    @property
    def adjustments(self) -> int:
        """How many times :meth:`adjust_rate` changed the correction."""
        return self._adjustments

    def _materialise(self, t: float) -> float:
        raw_now = self.raw.read(t)
        if self._anchor_raw is None or self._anchor_value is None:
            self._anchor_raw = raw_now
            self._anchor_value = raw_now
        return self._anchor_value + (raw_now - self._anchor_raw) * (
            1.0 + self._correction
        )

    def _read(self, t: float) -> float:
        return self._materialise(t)

    def _apply_set(self, t: float, value: float) -> None:
        # Re-anchor so the disciplined view reads `value` now; the raw
        # clock is never touched (the oscillator cannot be set).
        raw_now = self.raw.read(t)
        self._anchor_raw = raw_now
        self._anchor_value = value

    def adjust_rate(self, t: float, correction: float) -> float:
        """Set the rate correction, effective from real time ``t``.

        Args:
            t: Real time of the adjustment (reads must not go backwards).
            correction: Desired multiplier offset; clamped to
                ``±max_correction``.

        Returns:
            The correction actually applied (after clamping).
        """
        # Close the current segment at its present value, then retune.
        current = self._materialise(t)
        self._anchor_raw = self.raw.read(t)
        self._anchor_value = current
        clamped = max(-self.max_correction, min(self.max_correction, correction))
        if clamped != self._correction:
            self._adjustments += 1
        self._correction = clamped
        return clamped

    def effective_skew(self, raw_skew: float) -> float:
        """The net skew of the disciplined view given the raw skew.

        ``(1 + raw_skew)(1 + correction) - 1`` — used by tests and by the
        discipline loop's convergence analysis.
        """
        return (1.0 + raw_skew) * (1.0 + self._correction) - 1.0
