"""Interval timestamps and certain event ordering.

The introduction motivates time services partly by event ordering: "a
system where events both internal and external to the distributed system
are ordered."  Point timestamps from unsynchronized clocks order events
wrongly; interval timestamps — the pair ``<C, E>`` a Marzullo-Owicki
server already reports — order them *honestly*:

* if two events' intervals are disjoint, their real-time order is
  **certain** (assuming correct servers);
* if the intervals overlap, the order is **indeterminate**, and the
  application must fall back to causality or any tie-break it likes.

This is the idea that later grew into TrueTime's ``commit-wait``: to make
an order certain, wait until your interval's leading edge passes the other
interval's trailing edge.

:class:`IntervalTimestamp` is the value type; :class:`TimestampAuthority`
mints them from a live :class:`~repro.service.server.TimeServer`;
:func:`certain_order` sorts events with an explicit indeterminacy report;
and :func:`commit_wait` computes how long a process must wait before its
timestamp is guaranteed to order after everything already stamped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.intervals import TimeInterval
from ..service.server import TimeServer


class Order(enum.Enum):
    """Outcome of comparing two interval timestamps."""

    BEFORE = "before"
    AFTER = "after"
    INDETERMINATE = "indeterminate"


@dataclass(frozen=True, order=False)
class IntervalTimestamp:
    """A timestamp that is an interval, not a point.

    Attributes:
        interval: The ``[C - E, C + E]`` interval containing the true event
            time (while the issuing server is correct).
        issuer: Name of the server that minted it.
        sequence: Issuer-local sequence number; breaks ties among
            timestamps from the *same* issuer, whose order is always
            certain regardless of overlap.
    """

    interval: TimeInterval
    issuer: str = ""
    sequence: int = 0

    def compare(self, other: "IntervalTimestamp") -> Order:
        """Order this event against another.

        Same-issuer timestamps order by sequence (a single server knows
        its own event order).  Cross-issuer timestamps order certainly iff
        the intervals are disjoint.
        """
        if self.issuer and self.issuer == other.issuer:
            if self.sequence < other.sequence:
                return Order.BEFORE
            if self.sequence > other.sequence:
                return Order.AFTER
            return Order.INDETERMINATE
        if self.interval.hi < other.interval.lo:
            return Order.BEFORE
        if other.interval.hi < self.interval.lo:
            return Order.AFTER
        return Order.INDETERMINATE

    def definitely_before(self, other: "IntervalTimestamp") -> bool:
        """Whether this event certainly happened first."""
        return self.compare(other) is Order.BEFORE

    def possibly_concurrent(self, other: "IntervalTimestamp") -> bool:
        """Whether real-time order cannot be determined."""
        return self.compare(other) is Order.INDETERMINATE


class TimestampAuthority:
    """Mints interval timestamps from a live time server.

    Args:
        server: The server whose rule MM-1 report becomes the timestamp.

    Each mint reads the server's ``<C, E>`` at the current simulation
    instant and attaches an increasing sequence number.
    """

    def __init__(self, server: TimeServer) -> None:
        self.server = server
        self._sequence = 0

    def now(self) -> IntervalTimestamp:
        """Mint a timestamp for an event happening now."""
        value, error = self.server.report()
        self._sequence += 1
        return IntervalTimestamp(
            interval=TimeInterval.from_center_error(value, error),
            issuer=self.server.name,
            sequence=self._sequence,
        )


def certain_order(
    stamps: Sequence[IntervalTimestamp],
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """Sort events by trailing edge, reporting indeterminate pairs.

    Args:
        stamps: The events' timestamps.

    Returns:
        ``(order, indeterminate)`` where ``order`` is a permutation of
        indices sorted by interval trailing edge (a consistent linear
        extension of the certain partial order), and ``indeterminate``
        lists the index pairs whose relative order is not certain.
    """
    order = sorted(
        range(len(stamps)),
        key=lambda k: (stamps[k].interval.lo, stamps[k].interval.hi, k),
    )
    indeterminate = []
    for a in range(len(stamps)):
        for b in range(a + 1, len(stamps)):
            if stamps[a].possibly_concurrent(stamps[b]):
                indeterminate.append((a, b))
    return order, indeterminate


def commit_wait(
    stamp: IntervalTimestamp,
    reference: Optional[IntervalTimestamp] = None,
    max_peer_error: Optional[float] = None,
) -> float:
    """How much longer to hold an operation so its order becomes certain.

    Without a reference: a stamp minted at real time ``r`` has its leading
    edge at most ``r + 2E`` (the clock reads at most ``E`` fast), and a
    peer's later stamp at real time ``s`` has its trailing edge at least
    ``s - 2E_peer``.  Disjointness — certain order — therefore needs
    ``s - r > 2E + 2E_peer``, so the wait is ``width + 2·max_peer_error``
    (peers assumed no worse than us when ``max_peer_error`` is omitted).
    This is the commit-wait rule later made famous by TrueTime, expressed
    in the paper's vocabulary.

    With a reference, returns the wait for the reference's leading edge to
    fall behind our trailing edge (0 when already certain).
    """
    if reference is None:
        peer = max_peer_error if max_peer_error is not None else stamp.interval.error
        return stamp.interval.width + 2.0 * peer
    gap = reference.interval.hi - stamp.interval.lo
    return max(0.0, gap)
