"""Interval timestamps and certain event ordering over the time service."""

from .timestamps import (
    IntervalTimestamp,
    Order,
    TimestampAuthority,
    certain_order,
    commit_wait,
)

__all__ = [
    "IntervalTimestamp",
    "Order",
    "TimestampAuthority",
    "certain_order",
    "commit_wait",
]
