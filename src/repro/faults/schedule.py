"""A declarative, deterministic fault-schedule DSL.

A :class:`FaultSchedule` is a timeline of typed fault events — the chaos
experiments' single source of truth.  Schedules can be written by hand::

    schedule = (
        FaultSchedule()
        .add(LinkFlap(at=120.0, a="S1", b="S2", downtime=30.0))
        .add(ByzantineReplies(at=300.0, server="S3", duration=120.0,
                              offset=0.4, error_scale=0.1))
    )

or sampled from a seeded RNG for soak runs::

    schedule = FaultSchedule.random(
        seed=7, names=names, edges=edges, horizon=3600.0
    )

Events are frozen dataclasses; the schedule itself is just sorted data.
Interpretation lives in :class:`~repro.faults.injector.FaultInjector`, and
:meth:`FaultSchedule.signature` gives a stable fingerprint used by the
deterministic-replay tests (same seed ⇒ identical timeline).

Event menu (mirroring the failure modes of Section 1.1 plus the network
pathologies the paper assumes away):

=====================  =====================================================
:class:`LinkFlap`      link goes down, comes back after ``downtime``
:class:`DelaySpike`    one link's delays scaled/offset for a window
:class:`LossBurst`     extra message loss on one link for a window
:class:`PartitionFault` the network splits into groups, heals after a while
:class:`ReferenceBlackout` every link touching the named servers goes dark
:class:`TotalPartition`  every server isolated from every other (worst case)
:class:`MessageCorruption` replies garbled in flight (NaN/garbage fields)
:class:`MessageDuplication` messages delivered twice
:class:`MessageReorder` messages randomly delayed so later ones overtake
:class:`ServerCrash`   server leaves, rejoins later with a fresh error
:class:`CheckpointCorruption` server's stored checkpoint is garbled in place
:class:`TornCheckpoint` server's next checkpoint write persists torn
:class:`ClockStep`     clock silently jumps (server bookkeeping unaware)
:class:`ClockFreeze`   clock stops for a window ("stopping" failure)
:class:`ClockRace`     clock races beyond its claimed δ for a window
:class:`ByzantineReplies` server's replies lie: offset added, error
                       underreported — the adversary of the Byzantine
                       clock-sync literature
:class:`EdgeChurn`     an edge is added to / removed from the live graph
:class:`TopologyRewire` the live edge set is replaced wholesale
:class:`MobilityTrace` a server moves; the proximity graph rewires
:class:`MessageTamper` on-path adversary rewrites reply clock values
:class:`MessageReplay` on-path adversary re-delivers captured replies later
:class:`DelayAttack`   on-path adversary substitutes held-back stale data
                       for fresh replies, delivered implausibly fast
:class:`SpoofedReply`  off-link adversary races forged replies to a victim
=====================  =====================================================

The last three mutate the topology itself (Section 1.1's unstable
membership taken literally); they require the injector to be attached to
a :class:`~repro.dynamic.topology.DynamicTopology` and are skipped with a
trace note otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one typed fault at absolute real time ``at``."""

    at: float

    @property
    def kind(self) -> str:
        """Machine-readable event kind (the class name)."""
        return type(self).__name__

    def describe(self) -> str:
        """One-line human-readable rendering, stable across runs."""
        parts = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if f.name != "at"
        )
        return f"t={self.at:.3f} {self.kind}({parts})"


# --------------------------------------------------------------- link faults


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """Edge ``(a, b)`` goes down at ``at`` and back up after ``downtime``."""

    a: str = ""
    b: str = ""
    downtime: float = 10.0


@dataclass(frozen=True)
class DelaySpike(FaultEvent):
    """Edge ``(a, b)`` delays scaled by ``scale`` (+``extra`` s) for
    ``duration`` seconds — congestion, not disconnection."""

    a: str = ""
    b: str = ""
    scale: float = 4.0
    extra: float = 0.0
    duration: float = 60.0


@dataclass(frozen=True)
class LossBurst(FaultEvent):
    """Extra loss ``probability`` on edge ``(a, b)`` for ``duration`` s."""

    a: str = ""
    b: str = ""
    probability: float = 0.5
    duration: float = 60.0


@dataclass(frozen=True)
class PartitionFault(FaultEvent):
    """The network splits into ``groups`` for ``duration`` seconds."""

    groups: Tuple[Tuple[str, ...], ...] = ()
    duration: float = 120.0


@dataclass(frozen=True)
class ReferenceBlackout(FaultEvent):
    """Every link adjacent to the named ``servers`` goes dark for
    ``duration`` seconds.

    The holdover scenario: the listed servers (typically the reference
    masters) become unreachable while the rest of the topology stays
    connected, so downstream servers lose their sources without any
    partition of their own.  Link take-downs are reference-counted
    against overlapping :class:`LinkFlap` windows.
    """

    duration: float = 120.0
    servers: Tuple[str, ...] = ()


@dataclass(frozen=True)
class TotalPartition(FaultEvent):
    """Every server isolated from every other for ``duration`` seconds.

    The worst-case blackout: no server has any source, so the whole
    service must ride through on holdover.  Implemented as a partition
    into singleton groups (shares :class:`PartitionFault`'s heal
    refcount, so overlapping windows extend the outage).
    """

    duration: float = 120.0


# ------------------------------------------------------------ message faults


@dataclass(frozen=True)
class MessageCorruption(FaultEvent):
    """Each reply is garbled with ``probability`` for ``duration`` s.

    Corruption is gross by design (NaN fields, sign flips, huge offsets):
    it models bit rot and broken serializers, which reply validation must
    reject — subtle adversarial lying is :class:`ByzantineReplies`.
    """

    probability: float = 0.2
    duration: float = 120.0


@dataclass(frozen=True)
class MessageDuplication(FaultEvent):
    """Each message is delivered twice with ``probability`` for a window;
    the duplicate arrives ``extra_delay`` seconds after the original."""

    probability: float = 0.3
    duration: float = 120.0
    extra_delay: float = 0.05


@dataclass(frozen=True)
class MessageReorder(FaultEvent):
    """Messages are randomly held back up to ``max_extra`` seconds with
    ``probability`` for a window, letting later messages overtake."""

    probability: float = 0.3
    duration: float = 120.0
    max_extra: float = 0.2


# ------------------------------------------------------------- server faults


@dataclass(frozen=True)
class ServerCrash(FaultEvent):
    """``server`` crashes (leaves) at ``at`` and rejoins after ``downtime``
    with inherited error ``rejoin_error`` (operator-set clock)."""

    server: str = ""
    downtime: float = 120.0
    rejoin_error: float = 2.0


@dataclass(frozen=True)
class CheckpointCorruption(FaultEvent):
    """``server``'s stored checkpoint is garbled in place (bit rot).

    Only meaningful for services with a stable store
    (:class:`~repro.recovery.store.StableStore`); the injector skips it
    otherwise.  The next restart must detect the checksum mismatch and
    fall back to a cold start.
    """

    server: str = ""


@dataclass(frozen=True)
class TornCheckpoint(FaultEvent):
    """``server``'s *next* checkpoint write is torn (crash mid-write).

    The store persists only a prefix of the record; the next restart must
    detect it and fall back to a cold start.
    """

    server: str = ""


@dataclass(frozen=True)
class ClockStep(FaultEvent):
    """``server``'s clock silently jumps by ``offset`` seconds.

    The server's error bookkeeping is *not* told — exactly the hazard of a
    clock that changes value behind the algorithm's back.
    """

    server: str = ""
    offset: float = 0.5


@dataclass(frozen=True)
class ClockFreeze(FaultEvent):
    """``server``'s clock stops for ``duration`` seconds, then resumes
    from its frozen value (permanently behind)."""

    server: str = ""
    duration: float = 60.0


@dataclass(frozen=True)
class ClockRace(FaultEvent):
    """``server``'s clock races at ``1 + skew`` for ``duration`` seconds —
    a drift-bound violation (the paper's "racing ahead" failure)."""

    server: str = ""
    skew: float = 0.01
    duration: float = 60.0


@dataclass(frozen=True)
class ByzantineReplies(FaultEvent):
    """``server`` lies in every reply for ``duration`` seconds.

    Its reported clock value is shifted by ``offset`` and its reported
    error multiplied by ``error_scale`` (< 1 = underreporting, making the
    lie look precise and attractive to interval policies).
    """

    server: str = ""
    duration: float = 120.0
    offset: float = 0.5
    error_scale: float = 0.2


# ----------------------------------------------------------- topology faults


@dataclass(frozen=True)
class EdgeChurn(FaultEvent):
    """Edge ``(a, b)`` is added to (``action="add"``) or removed from
    (``action="remove"``) the live topology.

    Unlike :class:`LinkFlap` — which leaves the edge in place and marks
    its link down — edge churn changes the *graph itself*: neighbour
    sets, poll targets, and the connectivity assumption all shift.
    Interpretation requires the injector to be attached to a
    :class:`~repro.dynamic.topology.DynamicTopology`; it is skipped (with
    a trace note) otherwise.
    """

    a: str = ""
    b: str = ""
    action: str = "remove"


@dataclass(frozen=True)
class TopologyRewire(FaultEvent):
    """The live edge set is replaced wholesale by ``edges``.

    Models a routing reconfiguration: edges in ``edges`` but not in the
    graph are added, edges in the graph but not in ``edges`` are removed
    (subject to the dynamic layer's connectivity guard, which retains a
    minimal backbone of old edges rather than disconnect the service).
    """

    edges: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class MobilityTrace(FaultEvent):
    """``server`` moves to position ``(x, y)`` in the mobility plane.

    A waypoint pin for replaying recorded mobility traces: the dynamic
    layer re-places the server and immediately rewires the proximity
    graph around its new position.  Requires a mobility model attached to
    the injector's :class:`~repro.dynamic.topology.DynamicTopology`.
    """

    server: str = ""
    x: float = 0.0
    y: float = 0.0


# ---------------------------------------------------------- on-path faults


@dataclass(frozen=True)
class MessageTamper(FaultEvent):
    """An on-path adversary rewrites poll replies crossing edge ``(a, b)``.

    Each :class:`~repro.service.messages.TimeReply` crossing the edge
    (either direction; every edge when ``a``/``b`` are empty) has its
    reported clock value shifted by ``offset`` with ``probability``, for
    ``duration`` seconds.  The authentication tag — if any — is left
    as-is, so on an authenticated cluster the tamper is exactly what a
    MAC exists to catch; on a plain cluster the forged value sails
    through any validation it can stay plausible against.
    """

    a: str = ""
    b: str = ""
    offset: float = 0.3
    probability: float = 1.0
    duration: float = 120.0


@dataclass(frozen=True)
class MessageReplay(FaultEvent):
    """An on-path adversary records traffic on edge ``(a, b)`` and
    re-delivers verbatim copies ``hold`` seconds later.

    Each captured message — requests and replies alike, with
    ``probability``, for ``duration`` seconds — still reaches its
    destination normally; the attack is the *extra* delivery.  A
    replayed reply carries an earlier round's (staler, smaller-error)
    claim; a replayed request makes the server do work (and emit a
    signed reply) for an exchange the peer never initiated.  Defended
    by per-request nonces, strictly increasing round ids, and the
    per-peer anti-replay sequence window.
    """

    a: str = ""
    b: str = ""
    probability: float = 1.0
    hold: float = 12.0
    duration: float = 120.0


@dataclass(frozen=True)
class DelayAttack(FaultEvent):
    """The classic delay attack, on edge victim ``a`` ← server ``b``.

    The adversary swallows each genuine poll reply ``b → a`` and instead
    answers ``a``'s *next* poll of ``b`` with the held-back data: the
    captured reply's claim re-labelled with the fresh request id and
    nonce, delivered only ``fast_delay`` seconds after the request — far
    quicker than the link allows.  The served data is one full poll
    period old, but the victim's measured RTT (which rule MM-2 inflates
    into the adopted error) no longer covers that age — exactly the
    asymmetric-delay shift the paper's ξ bound assumes away.  On an
    unauthenticated cluster whose inherited error exceeds the staleness
    (a cold-start victim), the victim adopts a tiny claimed error around
    a clock a whole period wrong.  Defended by the MAC (the re-labelled
    header no longer verifies) and, independently, by the delay guard
    (the RTT is below the link's physical floor).
    """

    a: str = ""
    b: str = ""
    fast_delay: float = 0.0005
    duration: float = 120.0


@dataclass(frozen=True)
class SpoofedReply(FaultEvent):
    """An adversary impersonates ``server`` towards ``victim``.

    For ``duration`` seconds, each poll request ``victim → server`` is
    observed in flight and raced: a forged reply claiming ``server``'s
    identity — current true time shifted by ``offset``, a flattering
    ``claimed_error`` — arrives after only ``fast_delay`` seconds, while
    the genuine reply (arriving later) then lands on an already-consumed
    round slot.  Defended by the MAC (the forger holds no key) and the
    delay guard (the race is faster than the link floor).
    """

    server: str = ""
    victim: str = ""
    offset: float = 0.3
    claimed_error: float = 0.01
    fast_delay: float = 0.0005
    duration: float = 120.0


#: Events that target a single server's clock or honesty.
SERVER_FAULT_KINDS = (ClockStep, ClockFreeze, ClockRace, ByzantineReplies)

#: Events interpreted as a deterministic on-path (or spoofing) adversary
#: tap over the transport.
ADVERSARY_FAULT_KINDS = (MessageTamper, MessageReplay, DelayAttack, SpoofedReply)

#: Events that mutate the live topology graph (need a DynamicTopology).
TOPOLOGY_FAULT_KINDS = (EdgeChurn, TopologyRewire, MobilityTrace)


@dataclass(frozen=True)
class FaultWindow:
    """The interval during which one server-targeted fault is active.

    Attributes:
        server: The faulted server.
        start: Window start (the event's ``at``).
        end: Window end (``at`` for instantaneous faults like a step).
        taints_self: Whether the fault corrupts the server's *own* clock
            (steps/freezes/races do; Byzantine lying leaves the liar's own
            interval honest while poisoning everyone it answers).
    """

    server: str
    start: float
    end: float
    taints_self: bool


class FaultSchedule:
    """An ordered, immutable-after-build timeline of fault events."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self._events: List[FaultEvent] = sorted(events, key=lambda e: e.at)

    # ------------------------------------------------------------- building

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Insert an event (keeps the timeline sorted); returns self."""
        self._events.append(event)
        self._events.sort(key=lambda e: e.at)
        return self

    def extend(self, events: Sequence[FaultEvent]) -> "FaultSchedule":
        """Insert many events; returns self."""
        self._events.extend(events)
        self._events.sort(key=lambda e: e.at)
        return self

    # -------------------------------------------------------------- viewing

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The timeline, sorted by activation time."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def counts(self) -> Dict[str, int]:
        """Events per kind, for summaries."""
        result: Dict[str, int] = {}
        for event in self._events:
            result[event.kind] = result.get(event.kind, 0) + 1
        return dict(sorted(result.items()))

    def describe(self) -> str:
        """The whole timeline, one line per event."""
        return "\n".join(event.describe() for event in self._events)

    def signature(self) -> int:
        """A stable fingerprint of the exact timeline.

        Two schedules have equal signatures iff they contain identical
        events at identical times — the deterministic-replay tests assert
        this across runs with the same seed.
        """
        import zlib

        return zlib.crc32(self.describe().encode("utf-8"))

    def server_fault_windows(self) -> List[FaultWindow]:
        """Active windows of all server-targeted faults (for the monitor)."""
        windows: List[FaultWindow] = []
        for event in self._events:
            if isinstance(event, ClockStep):
                windows.append(
                    FaultWindow(event.server, event.at, event.at, True)
                )
            elif isinstance(event, (ClockFreeze, ClockRace)):
                windows.append(
                    FaultWindow(
                        event.server, event.at, event.at + event.duration, True
                    )
                )
            elif isinstance(event, ByzantineReplies):
                windows.append(
                    FaultWindow(
                        event.server, event.at, event.at + event.duration, False
                    )
                )
        return windows

    def crash_windows(self) -> List[FaultWindow]:
        """Downtime windows of every :class:`ServerCrash`.

        The monitor exempts a server from invariant checks while a crash
        window (plus its grace) is open — the departed flag already covers
        the downtime itself, but the window also covers the revival
        instant, so a restarted server re-enters the checks as non-faulty
        only once its exemption expires.  ``taints_self`` is False: a
        crash never corrupts the clock, it only stops the server.
        """
        return [
            FaultWindow(event.server, event.at, event.at + event.downtime, False)
            for event in self._events
            if isinstance(event, ServerCrash)
        ]

    def liar_windows(self) -> List[FaultWindow]:
        """Lying windows of every :class:`ByzantineReplies`.

        The liar's *own* clock stays honest (``taints_self`` is False);
        the window marks when its replies poison others, so experiments
        can split monitor violations into "during an active lie" versus
        "after the liars went quiet" — the latter are unforgivable.
        """
        return [
            FaultWindow(event.server, event.at, event.at + event.duration, False)
            for event in self._events
            if isinstance(event, ByzantineReplies)
        ]

    # ------------------------------------------------------------- sampling

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        names: Sequence[str],
        edges: Sequence[Tuple[str, str]],
        horizon: float,
        warmup: float = 60.0,
        link_fault_rate: float = 4.0,
        message_fault_rate: float = 2.0,
        server_fault_rate: float = 2.0,
        include_server_faults: bool = True,
        include_partitions: bool = True,
        rejoin_error: float = 2.0,
        max_clock_offset: float = 1.0,
    ) -> "FaultSchedule":
        """Sample a soak schedule from a seeded RNG.

        Args:
            seed: Root seed; the same seed always yields the identical
                timeline (``numpy`` PCG64, draws in a fixed order).
            names: Server names eligible for server-targeted faults.
            edges: Topology edges eligible for link faults.
            horizon: Schedule events in ``[warmup, horizon]``.
            warmup: Fault-free initial period so the service converges.
            link_fault_rate: Expected link-level events per hour.
            message_fault_rate: Expected message-level fault windows/hour.
            server_fault_rate: Expected server-targeted events per hour.
            include_server_faults: Sample crash/clock/Byzantine events.
            include_partitions: Allow partition events.
            rejoin_error: ε assigned when a crashed server rejoins; must
                dominate the offset its clock can accumulate while away.
            max_clock_offset: Largest sampled step/lie offset in seconds.

        Returns:
            A new schedule.  Per-server clock/Byzantine windows are kept
            non-overlapping so the injector's wrap/unwrap logic stays
            simple and the monitor's exemptions stay well-defined.
        """
        rng = np.random.Generator(np.random.PCG64(seed))
        span = max(0.0, horizon - warmup)
        hours = span / 3600.0
        events: List[FaultEvent] = []

        def when() -> float:
            return float(warmup + rng.uniform(0.0, span))

        def pick_edge() -> Tuple[str, str]:
            a, b = edges[int(rng.integers(len(edges)))]
            return str(a), str(b)

        # --- link-level -------------------------------------------------
        for _ in range(int(rng.poisson(link_fault_rate * hours))):
            a, b = pick_edge()
            choice = int(rng.integers(4)) if include_partitions else int(rng.integers(3))
            if choice == 0:
                events.append(
                    LinkFlap(
                        at=when(), a=a, b=b,
                        downtime=float(rng.uniform(5.0, 90.0)),
                    )
                )
            elif choice == 1:
                events.append(
                    DelaySpike(
                        at=when(), a=a, b=b,
                        scale=float(rng.uniform(2.0, 8.0)),
                        extra=float(rng.uniform(0.0, 0.05)),
                        duration=float(rng.uniform(30.0, 180.0)),
                    )
                )
            elif choice == 2:
                events.append(
                    LossBurst(
                        at=when(), a=a, b=b,
                        probability=float(rng.uniform(0.2, 0.8)),
                        duration=float(rng.uniform(30.0, 180.0)),
                    )
                )
            else:
                shuffled = [str(n) for n in names]
                rng.shuffle(shuffled)
                cut = max(1, int(rng.integers(1, max(2, len(shuffled)))))
                groups = (tuple(shuffled[:cut]), tuple(shuffled[cut:]))
                events.append(
                    PartitionFault(
                        at=when(),
                        groups=groups,
                        duration=float(rng.uniform(30.0, 150.0)),
                    )
                )

        # --- message-level ----------------------------------------------
        for _ in range(int(rng.poisson(message_fault_rate * hours))):
            choice = int(rng.integers(3))
            if choice == 0:
                events.append(
                    MessageCorruption(
                        at=when(),
                        probability=float(rng.uniform(0.05, 0.4)),
                        duration=float(rng.uniform(30.0, 180.0)),
                    )
                )
            elif choice == 1:
                events.append(
                    MessageDuplication(
                        at=when(),
                        probability=float(rng.uniform(0.1, 0.5)),
                        duration=float(rng.uniform(30.0, 180.0)),
                        extra_delay=float(rng.uniform(0.01, 0.1)),
                    )
                )
            else:
                events.append(
                    MessageReorder(
                        at=when(),
                        probability=float(rng.uniform(0.1, 0.5)),
                        duration=float(rng.uniform(30.0, 180.0)),
                        max_extra=float(rng.uniform(0.05, 0.3)),
                    )
                )

        # --- server-level -----------------------------------------------
        if include_server_faults and names:
            # Track per-server busy windows so clock faults never overlap.
            busy: Dict[str, List[Tuple[float, float]]] = {}

            def reserve(server: str, start: float, end: float) -> bool:
                for s, e in busy.get(server, []):
                    if start < e and s < end:
                        return False
                busy.setdefault(server, []).append((start, end))
                return True

            for _ in range(int(rng.poisson(server_fault_rate * hours))):
                server = str(names[int(rng.integers(len(names)))])
                choice = int(rng.integers(4))
                at = when()
                if choice == 0:
                    duration = float(rng.uniform(30.0, 240.0))
                    events.append(
                        ServerCrash(
                            at=at, server=server, downtime=duration,
                            rejoin_error=rejoin_error,
                        )
                    )
                elif choice == 1:
                    if reserve(server, at, at + 1.0):
                        offset = float(
                            rng.uniform(0.05, max_clock_offset)
                            * (1.0 if rng.uniform() < 0.5 else -1.0)
                        )
                        events.append(
                            ClockStep(at=at, server=server, offset=offset)
                        )
                elif choice == 2:
                    duration = float(rng.uniform(20.0, 120.0))
                    if reserve(server, at, at + duration):
                        events.append(
                            ClockFreeze(at=at, server=server, duration=duration)
                        )
                else:
                    duration = float(rng.uniform(20.0, 120.0))
                    if reserve(server, at, at + duration):
                        if rng.uniform() < 0.5:
                            events.append(
                                ClockRace(
                                    at=at, server=server,
                                    skew=float(rng.uniform(0.002, 0.05)),
                                    duration=duration,
                                )
                            )
                        else:
                            events.append(
                                ByzantineReplies(
                                    at=at, server=server, duration=duration,
                                    offset=float(
                                        rng.uniform(0.05, max_clock_offset)
                                    ),
                                    error_scale=float(rng.uniform(0.05, 0.5)),
                                )
                            )

        return cls(events)
