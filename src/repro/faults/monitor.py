"""A continuous correctness oracle for chaos runs.

:class:`InvariantMonitor` is a :class:`~repro.simulation.process.SimProcess`
that periodically asserts, with oracle access to true time, the properties
the paper proves for *correct* servers:

* **Correctness** — every non-faulty server's interval
  ``[C_i - E_i, C_i + E_i]`` contains the true time (Section 2's definition
  of a correct time server);
* **Pairwise consistency** — the intervals of any two non-faulty servers
  intersect (they must: both contain true time);
* **No starvation** — a hardened server's quarantine never leaves it with
  fewer active peers than its configured floor.

"Non-faulty" needs care.  A fault that corrupts one server's clock (a
step, freeze, or race) makes that server legitimately incorrect — *and*
any honest server that later resets from a reply the corrupted or lying
server sent.  The monitor therefore tracks a per-server **taint**: a
server becomes dirty when a self-corrupting fault window opens, and a
dirty (or lied-to) server's resets propagate the taint through the trace's
``reset`` rows.  Only a reset sourced entirely from clean servers — outside
the server's own fault windows — clears it.  Crashed servers are exempt
while departed but keep their taint across a rejoin (the paper's rejoin
takes the operator's word for the new error bound; chaos does not).

Violations are counted, kept as :class:`Violation` rows, and recorded to
the trace (kind ``"invariant_violation"``) so a soak's verdict is part of
its artefact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.intervals import TimeInterval
from ..service.hardening import HardenedTimeServer
from ..service.server import TimeServer
from ..simulation.engine import SimulationEngine
from ..simulation.process import SimProcess
from ..simulation.trace import TraceRecorder
from ..telemetry.registry import NULL_REGISTRY
from .schedule import FaultSchedule, FaultWindow


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach.

    Attributes:
        time: Real time of the check that caught it.
        check: ``"correctness"``, ``"consistency"``, ``"starvation"`` or
            ``"sync-plane"``.
        servers: The offending server(s).
        detail: Human-readable specifics (offsets, bounds, peer counts).
    """

    time: float
    check: str
    servers: Tuple[str, ...]
    detail: str


@dataclass
class MonitorStats:
    """Aggregate outcome of a monitored run."""

    checks: int = 0
    correctness_violations: int = 0
    consistency_violations: int = 0
    starvation_violations: int = 0
    sync_plane_violations: int = 0
    exemptions: int = 0  # server-checks skipped as faulty/dirty/departed

    @property
    def total_violations(self) -> int:
        return (
            self.correctness_violations
            + self.consistency_violations
            + self.starvation_violations
            + self.sync_plane_violations
        )


class InvariantMonitor(SimProcess):
    """Periodic oracle checks with fault-aware taint tracking.

    Args:
        engine: The simulation engine.
        servers: Servers to watch (all of them; exemptions are computed).
        trace: The service trace — read for ``reset`` rows (taint
            propagation) and written with violations.
        schedule: The fault schedule being injected, so the monitor knows
            which servers are *supposed* to be wrong and when.  None means
            every server is held to the invariants at all times.
        period: Seconds between checks.
        grace: Slack added after a fault window or dirty period when
            deciding whether a reply that fed a reset was poisoned —
            covers lies still in flight when the window closed.
        sync_window: The sync-plane progress assertion: every polling
            server must handle at least one peer poll reply within any
            window of this many seconds (set it to a few τ), else a
            ``"sync-plane"`` violation is raised — the signature of
            client traffic starving rule MM-2/IM-2 rounds.  None (the
            default) disables the check.
        registry: A telemetry registry; every invariant check then exports
            as ``repro_invariant_checks_total{check, outcome}`` with
            outcome ``checked``, ``violated`` or ``exempted`` — the
            violation metrics the nightly soak artifacts archive.  None
            records nothing.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        servers: Dict[str, TimeServer],
        trace: TraceRecorder,
        schedule: Optional[FaultSchedule] = None,
        *,
        period: float = 5.0,
        grace: float = 2.0,
        sync_window: Optional[float] = None,
        name: str = "monitor",
        registry=None,
    ) -> None:
        super().__init__(engine, name)
        self._check_counter = (
            registry if registry is not None else NULL_REGISTRY
        ).counter(
            "repro_invariant_checks_total",
            "Invariant checks by kind and outcome (checked/violated/exempted)",
            ("check", "outcome"),
        )
        self._check_children: Dict[Tuple[str, str], object] = {}
        self.servers = dict(servers)
        self.trace = trace
        self.period = period
        self.grace = grace
        self.stats = MonitorStats()
        self.violations: List[Violation] = []
        windows = schedule.server_fault_windows() if schedule is not None else []
        self._windows: List[FaultWindow] = windows
        self._crash_windows: List[FaultWindow] = (
            schedule.crash_windows() if schedule is not None else []
        )
        # Taint state: closed dirty intervals plus the open one, if any.
        self._dirty_spans: Dict[str, List[Tuple[float, float]]] = {}
        self._dirty_since: Dict[str, float] = {}
        # Window-open events still to be merged into the taint timeline.
        self._pending_opens: List[Tuple[float, int, str]] = [
            (w.start, i, w.server)
            for i, w in enumerate(windows)
            if w.taints_self
        ]
        heapq.heapify(self._pending_opens)
        self._trace_index = 0
        if sync_window is not None and sync_window <= 0:
            raise ValueError(f"sync_window must be positive, got {sync_window}")
        self.sync_window = sync_window
        # Per-server (replies_handled watermark, time it last advanced).
        self._sync_progress: Dict[str, Tuple[int, float]] = {}

    # ------------------------------------------------------------ lifecycle

    def on_start(self) -> None:
        self.every(self.period, self.check_now, first_at=self.now + self.period)

    def _count(self, check: str, outcome: str) -> None:
        """Export one (check, outcome) observation (no-op without registry)."""
        key = (check, outcome)
        child = self._check_children.get(key)
        if child is None:
            child = self._check_counter.labels(check=check, outcome=outcome)
            self._check_children[key] = child
        child.inc()

    # -------------------------------------------------------- taint tracking

    def _mark_dirty(self, server: str, at: float) -> None:
        if server not in self._dirty_since:
            self._dirty_since[server] = at

    def _mark_clean(self, server: str, at: float) -> None:
        start = self._dirty_since.pop(server, None)
        if start is not None:
            self._dirty_spans.setdefault(server, []).append((start, at))

    def is_dirty(self, server: str) -> bool:
        """Whether ``server`` is currently tainted."""
        return server in self._dirty_since

    def _was_dirty_within(self, server: str, start: float, end: float) -> bool:
        since = self._dirty_since.get(server)
        if since is not None and since <= end:
            return True
        return any(
            s <= end and e >= start
            for s, e in self._dirty_spans.get(server, [])
        )

    def _in_fault_window(self, server: str, t: float, *, padded: bool) -> bool:
        pad = self.grace if padded else 0.0
        return any(
            w.server == server and w.start <= t <= w.end + pad
            for w in self._windows
        )

    def _in_crash_window(self, server: str, t: float) -> bool:
        """Whether a scheduled crash keeps ``server`` exempt at ``t``.

        The departed flag covers the downtime itself; the window (plus
        grace) also covers the revival instant, so a restarted server
        re-enters the checks as non-faulty only once this expires.
        """
        return any(
            w.server == server and w.start <= t <= w.end + self.grace
            for w in self._crash_windows
        )

    def _poisoned_source(self, source: str, t: float) -> bool:
        """Whether a reply from ``source`` feeding a reset at ``t`` could
        carry a fault — lying window (padded for flight time) or taint."""
        if self._in_fault_window(source, t, padded=True):
            return True
        return self._was_dirty_within(source, t - self.grace, t)

    @staticmethod
    def reset_sources(from_server: str) -> List[str]:
        """Parse a trace ``reset`` row's source field into server names.

        Handles MM's single name (``"S2"``), IM's edge pair
        (``"S2∩self"``) and recovery resets (``"recovery:S3"``).
        """
        text = from_server.removeprefix("recovery:")
        return [part for part in text.split("∩") if part]

    def _apply_reset(self, server: str, from_server: str, t: float) -> None:
        if server not in self.servers:
            return
        poisoned = False
        for source in self.reset_sources(from_server):
            if source == "self":
                if self.is_dirty(server):
                    poisoned = True
            elif self._poisoned_source(source, t):
                poisoned = True
        # A reset inside the server's own fault window is untrustworthy
        # no matter the source (a frozen clock silently absorbs the set).
        if self._in_fault_window(server, t, padded=False):
            poisoned = True
        if poisoned:
            self._mark_dirty(server, t)
        else:
            # Clean reset: the inherited error covers the round trip, so
            # the new interval contains true time again.
            self._mark_clean(server, t)

    def _advance_taint(self, until: float) -> None:
        """Merge window-opens and trace resets, in time order, up to now."""
        records = self.trace._records
        while True:
            next_open = self._pending_opens[0] if self._pending_opens else None
            row = None
            while self._trace_index < len(records):
                candidate = records[self._trace_index]
                if candidate.kind == "reset":
                    row = candidate
                    break
                self._trace_index += 1
            if next_open is not None and (row is None or next_open[0] <= row.time):
                if next_open[0] > until:
                    break
                heapq.heappop(self._pending_opens)
                self._mark_dirty(next_open[2], next_open[0])
                continue
            if row is None or row.time > until:
                break
            self._trace_index += 1
            self._apply_reset(row.source, row.data.get("from_server", ""), row.time)

    # ---------------------------------------------------------------- checks

    def check_now(self) -> None:
        """Run all invariant checks at the current time (also periodic)."""
        t = self.now
        self._advance_taint(t)
        self.stats.checks += 1
        clean: Dict[str, TimeInterval] = {}
        for name in sorted(self.servers):
            server = self.servers[name]
            if (
                server.departed
                or self.is_dirty(name)
                or self._in_crash_window(name, t)
            ):
                self.stats.exemptions += 1
                self._count("correctness", "exempted")
                continue
            value, error = server.report()
            clean[name] = TimeInterval.from_center_error(value, error)
            self._count("correctness", "checked")
            if not (value - error <= t <= value + error):
                self._violation(
                    "correctness",
                    (name,),
                    f"interval [{value - error:.6f}, {value + error:.6f}] "
                    f"misses true time {t:.6f}",
                )
        names = sorted(clean)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                self._count("consistency", "checked")
                if not clean[a].intersects(clean[b]):
                    self._violation(
                        "consistency",
                        (a, b),
                        f"{a}={clean[a]} and {b}={clean[b]} are disjoint",
                    )
        for name in sorted(self.servers):
            server = self.servers[name]
            if isinstance(server, HardenedTimeServer):
                if server.departed:
                    self._count("starvation", "exempted")
                else:
                    self._count("starvation", "checked")
                    self._check_starvation(name, server)
        if self.sync_window is not None:
            for name in sorted(self.servers):
                self._check_sync_progress(name, self.servers[name], t)

    def _check_sync_progress(self, name: str, server: TimeServer, t: float) -> None:
        """Assert the sync plane is making progress despite client load.

        A polling server whose ``replies_handled`` counter has not moved
        for a full ``sync_window`` is being starved: its poll requests or
        their replies are dying in overloaded run queues, and its error
        bound ``E`` is growing without bound.  Departed/crashed servers
        are exempt while away; their watermark resets so the window
        restarts from revival.
        """
        if server.policy is None:
            return  # answer-only servers never poll
        handled = server.stats.replies_handled
        if (
            server.departed
            or self._in_crash_window(name, t)
            or self._in_fault_window(name, t, padded=True)
        ):
            self._count("sync-plane", "exempted")
            self._sync_progress.pop(name, None)
            return
        self._count("sync-plane", "checked")
        previous = self._sync_progress.get(name)
        if previous is None or handled > previous[0]:
            self._sync_progress[name] = (handled, t)
            return
        stalled_for = t - previous[1]
        if stalled_for > self.sync_window:
            self._violation(
                "sync-plane",
                (name,),
                f"no poll reply handled for {stalled_for:.1f}s "
                f"(window {self.sync_window:.1f}s, "
                f"watermark {handled})",
            )
            # Restart the window so one stall is one violation per period
            # it persists, not a violation-per-check forever after.
            self._sync_progress[name] = (handled, t)

    def _check_starvation(self, name: str, server: HardenedTimeServer) -> None:
        quarantine = server.hardening.quarantine
        if quarantine is None:
            return
        neighbours = server.network.neighbours(name)
        floor = min(quarantine.min_peers, len(neighbours))
        # Recompute what the next round would poll without mutating the
        # server's health records or stats: non-quarantined peers, plus the
        # starvation guard's re-admissions up to the floor.
        active = [
            peer
            for peer in neighbours
            if not (
                peer in server.health
                and server.health[peer].is_quarantined(self.now)
            )
        ]
        effective = max(len(active), floor) if len(neighbours) >= floor else 0
        if effective < floor:
            self._violation(
                "starvation",
                (name,),
                f"only {len(active)} active peers of {len(neighbours)} "
                f"(floor {floor})",
            )

    def _violation(self, check: str, servers: Tuple[str, ...], detail: str) -> None:
        violation = Violation(self.now, check, servers, detail)
        self.violations.append(violation)
        self._count(check, "violated")
        if check == "correctness":
            self.stats.correctness_violations += 1
        elif check == "consistency":
            self.stats.consistency_violations += 1
        elif check == "sync-plane":
            self.stats.sync_plane_violations += 1
        else:
            self.stats.starvation_violations += 1
        self.trace.record(
            self.now,
            "invariant_violation",
            self.name,
            check=check,
            servers=",".join(servers),
            detail=detail,
        )
