"""The fault injector: replays a :class:`FaultSchedule` against a service.

:class:`FaultInjector` is a :class:`~repro.simulation.process.SimProcess`
that arms every event of a schedule on the engine at start and applies it
when it fires:

* link faults flip :class:`~repro.network.link.Link` state (``up``,
  ``fault_loss``, ``delay_scale``/``delay_extra``) and are reference-
  counted so overlapping windows compose;
* message faults install :class:`~repro.network.transport.Network` taps
  that corrupt, duplicate, or hold back messages in flight;
* server faults crash/rejoin :class:`~repro.service.server.TimeServer`
  processes, step their clocks behind the algorithm's back, or wrap them
  in the Section 1.1 failure wrappers for the fault window;
* Byzantine faults install a tap that rewrites the liar's outgoing
  replies (offset added, error underreported);
* adversary faults emulate a deterministic on-path attacker: tampering
  with replies in flight, replaying recorded replies, substituting
  held-back stale data for fresh replies (the delay attack), and
  racing spoofed replies to a victim.  Every poisoned delivery is
  remembered in :attr:`FaultInjector.taint_keys` (see
  :func:`taint_key`) so an experiment can count exactly which poisoned
  messages a server *accepted*.

Every application is recorded into the trace (kind ``"fault"``) so a run's
fault timeline is part of its replayable artefact.  All randomness (which
message is corrupted, how far one is delayed) flows through a dedicated
named RNG stream, keeping runs bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..clocks.failures import RacingClock, StoppedClock, _FailureWrapper
from ..network.transport import Network
from ..service.messages import RequestKind, TimeReply, TimeRequest
from ..service.server import TimeServer
from ..simulation.engine import SimulationEngine
from ..simulation.process import SimProcess
from ..simulation.trace import TraceRecorder
from .schedule import (
    ByzantineReplies,
    CheckpointCorruption,
    ClockFreeze,
    ClockRace,
    ClockStep,
    DelayAttack,
    DelaySpike,
    EdgeChurn,
    FaultEvent,
    FaultSchedule,
    LinkFlap,
    LossBurst,
    MessageCorruption,
    MessageDuplication,
    MessageReorder,
    MessageReplay,
    MessageTamper,
    MobilityTrace,
    PartitionFault,
    ReferenceBlackout,
    ServerCrash,
    SpoofedReply,
    TopologyRewire,
    TornCheckpoint,
    TotalPartition,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..dynamic.topology import DynamicTopology


@dataclass
class InjectorStats:
    """What the injector actually did."""

    events_applied: int = 0
    messages_corrupted: int = 0
    messages_duplicated: int = 0
    messages_reordered: int = 0
    lies_told: int = 0
    messages_tampered: int = 0  # on-path rewrites (MessageTamper)
    messages_replayed: int = 0  # extra verbatim deliveries (MessageReplay)
    replies_delayed: int = 0  # genuine replies swallowed/held (DelayAttack)
    replies_spoofed: int = 0  # forged replies raced to a victim (SpoofedReply)


def taint_key(reply: TimeReply) -> tuple:
    """The identity under which a forged/replayed reply is remembered.

    The adversary handlers register every poisoned delivery here and the
    gauntlet's oracle checks accepted replies against the set — counting
    exactly the poisoned messages a server *accepted*, not merely saw.
    """
    return (
        reply.server,
        reply.destination,
        reply.request_id,
        reply.nonce,
        reply.clock_value,
        reply.error,
    )


class FaultInjector(SimProcess):
    """Replays a fault schedule against a live simulated service.

    Args:
        engine: The simulation engine.
        network: The transport whose links/taps are manipulated.
        servers: Server registry (schedule events name servers by name;
            unknown names are ignored with a trace note).
        schedule: The timeline to replay.
        rng: Random stream for per-message fault decisions; pass the
            service registry's ``stream("faults/injector")`` so runs stay
            reproducible.  None makes per-message probabilities behave as
            certainties (useful in unit tests).
        trace: Optional trace recorder (fault applications are recorded).
        store: The service's stable store, if it has one — target of the
            checkpoint-corruption/torn-write events (skipped otherwise).
        dynamic: The live :class:`~repro.dynamic.topology.DynamicTopology`
            layer, if the run has one — target of the topology events
            (``EdgeChurn``/``TopologyRewire``/``MobilityTrace``); those
            events are skipped with a trace note otherwise.
        name: Process name (shows up in trace rows).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: Network,
        servers: Dict[str, TimeServer],
        schedule: FaultSchedule,
        *,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
        store=None,
        dynamic: Optional["DynamicTopology"] = None,
        name: str = "chaos",
    ) -> None:
        super().__init__(engine, name)
        self.network = network
        self.servers = dict(servers)
        self.schedule = schedule
        self.trace = trace
        self.store = store
        self.dynamic = dynamic
        self.stats = InjectorStats()
        self._rng = rng
        self._link_down_counts: Dict[Tuple[str, str], int] = {}
        self._loss_bursts: Dict[Tuple[str, str], List[float]] = {}
        self._partitions_active = 0
        self._wrapped: Dict[str, _FailureWrapper] = {}
        #: Identities (see :func:`taint_key`) of every poisoned reply the
        #: adversary handlers delivered — the gauntlet's acceptance oracle.
        self.taint_keys: set = set()
        self._delay_cache: Dict[Tuple[str, str], TimeReply] = {}

    # ------------------------------------------------------------ lifecycle

    def on_start(self) -> None:
        for event in self.schedule:
            at = max(event.at, self.now)
            self.call_at(at, lambda e=event: self._fire(e))

    def _fire(self, event: FaultEvent) -> None:
        self.stats.events_applied += 1
        self._trace_fault(event)
        handler = getattr(self, f"_apply_{type(event).__name__}")
        handler(event)

    def _trace_fault(self, event: FaultEvent, note: str = "") -> None:
        if self.trace is not None:
            data = {"event": event.describe()}
            if note:
                data["note"] = note
            self.trace.record(self.now, "fault", self.name, **data)

    def _chance(self, probability: float) -> bool:
        if self._rng is None:
            return True
        return float(self._rng.uniform()) < probability

    # ---------------------------------------------------------- link faults

    def _apply_LinkFlap(self, event: LinkFlap) -> None:
        try:
            link = self.network.link(event.a, event.b)
        except KeyError:
            return
        key = self.network._key(event.a, event.b)
        self._link_down_counts[key] = self._link_down_counts.get(key, 0) + 1
        link.take_down()
        self.call_after(event.downtime, lambda: self._link_up(key))

    def _link_up(self, key: Tuple[str, str]) -> None:
        # Reference-counted so overlapping flaps don't resurrect a link
        # another window still holds down.
        self._link_down_counts[key] -= 1
        if self._link_down_counts[key] <= 0:
            self.network._links[key].bring_up()

    def _apply_DelaySpike(self, event: DelaySpike) -> None:
        try:
            link = self.network.link(event.a, event.b)
        except KeyError:
            return
        link.delay_scale *= event.scale
        link.delay_extra += event.extra
        self.call_after(event.duration, lambda: self._delay_restore(link, event))

    def _delay_restore(self, link, event: DelaySpike) -> None:
        link.delay_scale /= event.scale
        link.delay_extra -= event.extra

    def _apply_LossBurst(self, event: LossBurst) -> None:
        try:
            link = self.network.link(event.a, event.b)
        except KeyError:
            return
        key = self.network._key(event.a, event.b)
        bursts = self._loss_bursts.setdefault(key, [])
        bursts.append(event.probability)
        self._recompute_loss(key)
        self.call_after(event.duration, lambda: self._loss_end(key, event.probability))

    def _loss_end(self, key: Tuple[str, str], probability: float) -> None:
        self._loss_bursts[key].remove(probability)
        self._recompute_loss(key)

    def _recompute_loss(self, key: Tuple[str, str]) -> None:
        survive = 1.0
        for p in self._loss_bursts.get(key, []):
            survive *= 1.0 - p
        self.network._links[key].fault_loss = 1.0 - survive

    def _apply_PartitionFault(self, event: PartitionFault) -> None:
        self.network.partition([list(group) for group in event.groups])
        self._partitions_active += 1
        self.call_after(event.duration, self._partition_heal)

    def _partition_heal(self) -> None:
        # heal() clears every partition flag, so only the last active
        # window may heal (overlapping partitions extend the outage).
        self._partitions_active -= 1
        if self._partitions_active <= 0:
            self.network.heal()

    def _apply_ReferenceBlackout(self, event: ReferenceBlackout) -> None:
        targets = set(event.servers)
        keys = [
            key
            for key in self.network._links
            if key[0] in targets or key[1] in targets
        ]
        if not keys:
            self._trace_fault(event, note="skipped: no adjacent links")
            return
        for key in keys:
            self._link_down_counts[key] = self._link_down_counts.get(key, 0) + 1
            self.network._links[key].take_down()
        self.call_after(
            event.duration, lambda: [self._link_up(key) for key in keys]
        )

    def _apply_TotalPartition(self, event: TotalPartition) -> None:
        self.network.partition([[name] for name in sorted(self.servers)])
        self._partitions_active += 1
        self.call_after(event.duration, self._partition_heal)

    # ------------------------------------------------------- message faults

    def _windowed_tap(self, tap, duration: float) -> None:
        self.network.add_tap(tap)
        self.call_after(duration, lambda: self.network.remove_tap(tap))

    def _apply_MessageCorruption(self, event: MessageCorruption) -> None:
        def tap(source, destination, message, delay):
            if not isinstance(message, TimeReply):
                return None
            if not self._chance(event.probability):
                return None
            self.stats.messages_corrupted += 1
            mode = 0 if self._rng is None else int(self._rng.integers(3))
            if mode == 0:
                garbled = replace(message, clock_value=float("nan"))
            elif mode == 1:
                garbled = replace(message, error=-1.0)
            else:
                sign = 1.0 if (self._rng is None or self._rng.uniform() < 0.5) else -1.0
                garbled = replace(
                    message, clock_value=message.clock_value + sign * 1e6
                )
            return [(garbled, delay)]

        self._windowed_tap(tap, event.duration)

    def _apply_MessageDuplication(self, event: MessageDuplication) -> None:
        def tap(source, destination, message, delay):
            if not self._chance(event.probability):
                return None
            self.stats.messages_duplicated += 1
            return [(message, delay), (message, delay + event.extra_delay)]

        self._windowed_tap(tap, event.duration)

    def _apply_MessageReorder(self, event: MessageReorder) -> None:
        def tap(source, destination, message, delay):
            if not self._chance(event.probability):
                return None
            self.stats.messages_reordered += 1
            extra = (
                event.max_extra
                if self._rng is None
                else float(self._rng.uniform(0.0, event.max_extra))
            )
            return [(message, delay + extra)]

        self._windowed_tap(tap, event.duration)

    # -------------------------------------------------------- server faults

    def _apply_ServerCrash(self, event: ServerCrash) -> None:
        server = self.servers.get(event.server)
        if server is None:
            return
        # Servers with the recovery subsystem take the crash/restart
        # path: the restart rebuilds the interval from the stable store
        # (warm) and only uses rejoin_error as the cold-start fallback.
        crash = getattr(server, "crash", None)
        if callable(crash):
            crash()
        else:
            server.leave()
        self.call_after(
            event.downtime, lambda: self._server_rejoin(server, event.rejoin_error)
        )

    def _server_rejoin(self, server: TimeServer, rejoin_error: float) -> None:
        if not server.departed:
            return
        restart = getattr(server, "restart", None)
        if callable(restart):
            restart(cold_error=rejoin_error)
        else:
            server.rejoin(rejoin_error)

    def _apply_CheckpointCorruption(self, event: CheckpointCorruption) -> None:
        if self.store is None:
            self._trace_fault(event, note="skipped: no stable store")
            return
        if not self.store.corrupt(event.server):
            self._trace_fault(event, note="skipped: no checkpoint slot")

    def _apply_TornCheckpoint(self, event: TornCheckpoint) -> None:
        if self.store is None:
            self._trace_fault(event, note="skipped: no stable store")
            return
        self.store.tear(event.server)

    def _apply_ClockStep(self, event: ClockStep) -> None:
        server = self.servers.get(event.server)
        if server is None:
            return
        clock = server.clock
        clock.set(self.now, clock.read(self.now) + event.offset)

    def _apply_ClockFreeze(self, event: ClockFreeze) -> None:
        server = self.servers.get(event.server)
        if server is None or event.server in self._wrapped:
            self._trace_fault(event, note="skipped: clock already wrapped")
            return
        wrapper = StoppedClock(server.clock, fail_at=self.now)
        self._install_wrapper(server, wrapper, event.duration)

    def _apply_ClockRace(self, event: ClockRace) -> None:
        server = self.servers.get(event.server)
        if server is None or event.server in self._wrapped:
            self._trace_fault(event, note="skipped: clock already wrapped")
            return
        wrapper = RacingClock(server.clock, fail_at=self.now, racing_skew=event.skew)
        self._install_wrapper(server, wrapper, event.duration)

    def _install_wrapper(
        self, server: TimeServer, wrapper: _FailureWrapper, duration: float
    ) -> None:
        self._wrapped[server.name] = wrapper
        server.clock = wrapper
        self.call_after(duration, lambda: self._unwrap(server, wrapper))

    def _unwrap(self, server: TimeServer, wrapper: _FailureWrapper) -> None:
        self._wrapped.pop(server.name, None)
        if server.clock is wrapper:
            server.clock = wrapper.detach(self.now)

    def _apply_ByzantineReplies(self, event: ByzantineReplies) -> None:
        def tap(source, destination, message, delay):
            if source != event.server or not isinstance(message, TimeReply):
                return None
            self.stats.lies_told += 1
            lie = replace(
                message,
                clock_value=message.clock_value + event.offset,
                error=message.error * event.error_scale,
            )
            return [(lie, delay)]

        self._windowed_tap(tap, event.duration)

    # ----------------------------------------------------- adversary faults

    def _send_direct(
        self, source: str, destination: str, message, delay: float
    ) -> None:
        """Deliver a message bypassing link physics, loss, and taps.

        This is how an on-path adversary injects traffic: the forged
        message materialises at the victim's doorstep after ``delay``
        seconds regardless of what the real link would have allowed.
        """
        target = self.network._processes.get(destination)
        if target is None:
            return
        sender = self.network._processes.get(source)
        self.engine.schedule_after(
            delay,
            lambda: self.network._deliver(target, message, sender),
            label=f"adversary:{source}->{destination}",
        )

    @staticmethod
    def _edge_filter(a: str, b: str):
        """Matcher for a (bidirectional) edge; empty names match all."""
        edge = frozenset((a, b)) if a and b else None

        def matches(source: str, destination: str) -> bool:
            return edge is None or frozenset((source, destination)) == edge

        return matches

    def _apply_MessageTamper(self, event: MessageTamper) -> None:
        on_edge = self._edge_filter(event.a, event.b)

        def tap(source, destination, message, delay):
            if not isinstance(message, TimeReply):
                return None
            if not on_edge(source, destination):
                return None
            if not self._chance(event.probability):
                return None
            self.stats.messages_tampered += 1
            # The auth tag (if any) is carried over unchanged: the MAC
            # no longer matches the rewritten payload, which is the point.
            forged = replace(
                message, clock_value=message.clock_value + event.offset
            )
            self.taint_keys.add(taint_key(forged))
            return [(forged, delay)]

        self._windowed_tap(tap, event.duration)

    def _apply_MessageReplay(self, event: MessageReplay) -> None:
        on_edge = self._edge_filter(event.a, event.b)

        def tap(source, destination, message, delay):
            if not isinstance(message, (TimeReply, TimeRequest)):
                return None
            if not on_edge(source, destination):
                return None
            if not self._chance(event.probability):
                return None

            def redeliver(msg=message, src=source, dst=destination):
                self.stats.messages_replayed += 1
                # Tainted only now: the genuine copy accepted `hold`
                # seconds ago was legitimate; this delivery is the attack.
                if isinstance(msg, TimeReply):
                    self.taint_keys.add(taint_key(msg))
                self._send_direct(src, dst, msg, 0.0)

            self.call_after(delay + event.hold, redeliver)
            return None  # the original delivery is untouched

        self._windowed_tap(tap, event.duration)

    def _apply_DelayAttack(self, event: DelayAttack) -> None:
        victim, upstream = event.a, event.b

        def tap(source, destination, message, delay):
            # Reply leg upstream -> victim: capture and swallow.
            if (
                source == upstream
                and destination == victim
                and isinstance(message, TimeReply)
                and message.kind is RequestKind.POLL
            ):
                self._delay_cache[(upstream, victim)] = message
                self.stats.replies_delayed += 1
                return []  # the victim never sees the genuine reply
            # Request leg victim -> upstream: answer from the cache,
            # re-labelled fresh and implausibly fast.  The request still
            # travels on (its genuine reply will be swallowed above).
            if (
                source == victim
                and destination == upstream
                and isinstance(message, TimeRequest)
                and message.kind is RequestKind.POLL
            ):
                cached = self._delay_cache.get((upstream, victim))
                if cached is not None:
                    forged = replace(
                        cached,
                        request_id=message.request_id,
                        nonce=message.nonce,
                    )
                    # A same-round retry gets the byte-identical held-back
                    # reply — that is the genuine message delivered late,
                    # not a forgery, so it earns no taint.
                    if forged != cached:
                        self.taint_keys.add(taint_key(forged))
                    self._send_direct(upstream, victim, forged, event.fast_delay)
            return None

        self._windowed_tap(tap, event.duration)

    def _apply_SpoofedReply(self, event: SpoofedReply) -> None:
        def tap(source, destination, message, delay):
            if (
                source != event.victim
                or destination != event.server
                or not isinstance(message, TimeRequest)
                or message.kind is not RequestKind.POLL
            ):
                return None
            impersonated = self.servers.get(event.server)
            forged = TimeReply(
                request_id=message.request_id,
                server=event.server,
                destination=event.victim,
                clock_value=self.now + event.offset,
                error=event.claimed_error,
                kind=RequestKind.POLL,
                delta=impersonated.delta if impersonated is not None else 0.0,
                nonce=message.nonce,
            )
            self.stats.replies_spoofed += 1
            self.taint_keys.add(taint_key(forged))
            self._send_direct(event.server, event.victim, forged, event.fast_delay)
            return None  # the genuine exchange proceeds — and lands late

        self._windowed_tap(tap, event.duration)

    # ------------------------------------------------------ topology faults

    def _apply_EdgeChurn(self, event: EdgeChurn) -> None:
        if self.dynamic is None:
            self._trace_fault(event, note="skipped: no dynamic topology")
            return
        if event.action == "add":
            self.dynamic.add_edge(event.a, event.b)
        elif event.action == "remove":
            if not self.dynamic.remove_edge(event.a, event.b):
                self._trace_fault(event, note="skipped: guard refused removal")
        else:
            self._trace_fault(
                event, note=f"skipped: unknown action {event.action!r}"
            )

    def _apply_TopologyRewire(self, event: TopologyRewire) -> None:
        if self.dynamic is None:
            self._trace_fault(event, note="skipped: no dynamic topology")
            return
        self.dynamic.rewire(
            tuple((str(a), str(b)) for a, b in event.edges)
        )

    def _apply_MobilityTrace(self, event: MobilityTrace) -> None:
        if self.dynamic is None or self.dynamic.mobility is None:
            self._trace_fault(event, note="skipped: no mobility model")
            return
        if event.server not in self.dynamic.mobility:
            self._trace_fault(event, note="skipped: unknown server")
            return
        self.dynamic.move(event.server, (event.x, event.y))
