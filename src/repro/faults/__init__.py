"""Chaos engineering for the simulated time service.

Three pieces, composable but independent:

* :mod:`~repro.faults.schedule` — a declarative, deterministic fault
  timeline (build programmatically or sample one from a seed);
* :mod:`~repro.faults.injector` — a process that replays a schedule
  against the live network, links, clocks and servers;
* :mod:`~repro.faults.monitor` — a continuous oracle asserting the
  paper's correctness invariants for every non-faulty server.

:func:`attach_chaos` wires all three onto a built service in one call::

    service = build_service(graph, specs, policy=MMPolicy(), ...)
    schedule = FaultSchedule.random(seed=7, names=[...], edges=[...],
                                    horizon=1800.0)
    injector, monitor = attach_chaos(service, schedule)
    service.run_until(1800.0)
    assert monitor.stats.total_violations == 0
"""

from __future__ import annotations

from typing import Optional, Tuple

from .injector import FaultInjector, InjectorStats, taint_key
from .monitor import InvariantMonitor, MonitorStats, Violation
from .schedule import (
    ADVERSARY_FAULT_KINDS,
    SERVER_FAULT_KINDS,
    TOPOLOGY_FAULT_KINDS,
    ByzantineReplies,
    CheckpointCorruption,
    ClockFreeze,
    ClockRace,
    ClockStep,
    DelayAttack,
    DelaySpike,
    EdgeChurn,
    FaultEvent,
    FaultSchedule,
    FaultWindow,
    LinkFlap,
    LossBurst,
    MessageCorruption,
    MessageDuplication,
    MessageReorder,
    MessageReplay,
    MessageTamper,
    MobilityTrace,
    PartitionFault,
    ReferenceBlackout,
    ServerCrash,
    SpoofedReply,
    TopologyRewire,
    TornCheckpoint,
    TotalPartition,
)

__all__ = [
    "ADVERSARY_FAULT_KINDS",
    "SERVER_FAULT_KINDS",
    "TOPOLOGY_FAULT_KINDS",
    "ByzantineReplies",
    "CheckpointCorruption",
    "ClockFreeze",
    "ClockRace",
    "ClockStep",
    "DelayAttack",
    "DelaySpike",
    "EdgeChurn",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultWindow",
    "InjectorStats",
    "InvariantMonitor",
    "LinkFlap",
    "LossBurst",
    "MessageCorruption",
    "MessageDuplication",
    "MessageReorder",
    "MessageReplay",
    "MessageTamper",
    "MobilityTrace",
    "MonitorStats",
    "PartitionFault",
    "ReferenceBlackout",
    "ServerCrash",
    "SpoofedReply",
    "TopologyRewire",
    "TornCheckpoint",
    "TotalPartition",
    "Violation",
    "attach_chaos",
    "taint_key",
]


def attach_chaos(
    service,
    schedule: FaultSchedule,
    *,
    monitor_period: float = 5.0,
    monitor_grace: float = 2.0,
    monitor: bool = True,
    start: bool = True,
    registry=None,
    dynamic=None,
) -> Tuple[FaultInjector, Optional[InvariantMonitor]]:
    """Attach an injector (and optionally a monitor) to a built service.

    Args:
        service: A :class:`~repro.service.builder.SimulatedService`.
        schedule: The fault timeline to replay.
        monitor_period: Seconds between invariant checks.
        monitor_grace: In-flight grace for taint attribution (see
            :class:`~repro.faults.monitor.InvariantMonitor`).
        monitor: Attach the invariant monitor at all.
        start: Start both processes immediately.
        registry: Telemetry registry for the monitor's
            ``repro_invariant_checks_total`` counters.  None falls back
            to the service's own telemetry registry when one is enabled.
        dynamic: A :class:`~repro.dynamic.topology.DynamicTopology` layer
            for the schedule's topology events (``EdgeChurn`` etc.);
            those events are skipped when None.

    Returns:
        ``(injector, monitor)`` — monitor is None when disabled.
    """
    if registry is None:
        service_telemetry = getattr(service, "telemetry", None)
        if service_telemetry is not None and service_telemetry.registry.enabled:
            registry = service_telemetry.registry
    injector = FaultInjector(
        service.engine,
        service.network,
        service.servers,
        schedule,
        rng=service.rng.stream("faults/injector"),
        trace=service.trace,
        store=getattr(service, "stable_store", None),
        dynamic=dynamic,
    )
    watcher: Optional[InvariantMonitor] = None
    if monitor:
        watcher = InvariantMonitor(
            service.engine,
            service.servers,
            service.trace,
            schedule,
            period=monitor_period,
            grace=monitor_grace,
            registry=registry,
        )
    if start:
        injector.start()
        if watcher is not None:
            watcher.start()
    return injector, watcher
